"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure of the paper via its experiment module
and reports the figure's headline numbers through ``benchmark.extra_info`` so
they appear alongside the timing results.  Benchmarks of whole experiments are
run once per session (``rounds=1``) — the quantity of interest is the
regenerated table, not micro-timing stability.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.base import ExperimentResult


def run_figure_benchmark(
    benchmark,
    runner: Callable[[], ExperimentResult],
    rounds: int = 1,
) -> ExperimentResult:
    """Benchmark one experiment runner and attach its summary to the report."""
    result = benchmark.pedantic(runner, rounds=rounds, iterations=1, warmup_rounds=0)
    benchmark.extra_info["experiment"] = result.experiment_id
    for key, value in result.summary.items():
        benchmark.extra_info[key] = round(float(value), 4)
    print()
    print(result.report())
    return result
