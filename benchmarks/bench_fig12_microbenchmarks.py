"""Benchmarks regenerating the four Figure 12 microbenchmark sweeps."""

from conftest import run_figure_benchmark

from repro.experiments import fig12


def test_bench_fig12a_mlp_size(benchmark):
    result = run_figure_benchmark(benchmark, fig12.run_mlp_size)
    assert result.summary["model_wise_growth"] > result.summary["elasticrec_growth"]


def test_bench_fig12b_locality(benchmark):
    result = run_figure_benchmark(benchmark, fig12.run_locality)
    assert result.rows[-1]["reduction"] > result.rows[0]["reduction"]


def test_bench_fig12c_num_tables(benchmark):
    result = run_figure_benchmark(benchmark, fig12.run_num_tables)
    assert all(row["reduction"] > 1.0 for row in result.rows)


def test_bench_fig12d_num_shards(benchmark):
    result = run_figure_benchmark(benchmark, fig12.run_num_shards)
    memories = {row["num_shards"]: row["elasticrec_gb"] for row in result.rows}
    assert memories[4] < memories[1]
