"""Benchmark regenerating Figure 18 (CPU-GPU server count to reach 200 QPS)."""

from conftest import run_figure_benchmark

from repro.experiments import fig18


def test_bench_fig18_gpu_servers(benchmark):
    result = run_figure_benchmark(benchmark, fig18.run)
    assert {row["model"] for row in result.rows} == {"RM1", "RM2", "RM3"}
