"""Benchmark for the partitioning-strategy ablation (DESIGN.md design-choice study)."""

from conftest import run_figure_benchmark

from repro.experiments import ablation


def test_bench_partitioning_ablation(benchmark):
    result = run_figure_benchmark(benchmark, ablation.run)
    by_strategy = {row["strategy"]: row["memory_gb"] for row in result.rows}
    assert by_strategy["dp"] <= min(by_strategy.values()) * 1.02
    assert by_strategy["model-wise"] == max(by_strategy.values())
