"""Benchmark regenerating Figure 13 (CPU-only memory, model-wise vs ElasticRec)."""

from conftest import run_figure_benchmark

from repro.experiments import fig13


def test_bench_fig13_cpu_memory(benchmark):
    result = run_figure_benchmark(benchmark, fig13.run)
    reductions = {row["model"]: row["reduction"] for row in result.rows}
    assert all(value > 1.5 for value in reductions.values())
    assert reductions["RM3"] == max(reductions.values())
