"""Benchmark regenerating Figure 5 (per-layer QPS on both systems)."""

from conftest import run_figure_benchmark

from repro.experiments import fig05


def test_bench_fig5_layer_qps(benchmark):
    result = run_figure_benchmark(benchmark, fig05.run, rounds=3)
    assert len(result.rows) == 6
    assert all(row["qps_mismatch"] > 1.3 for row in result.rows)
