"""Benchmark recomputing the paper's abstract-level averages."""

from conftest import run_figure_benchmark

from repro.experiments import headline


def test_bench_headline_averages(benchmark):
    result = run_figure_benchmark(benchmark, headline.run)
    assert result.summary["average_memory_reduction"] > 2.0
    assert result.summary["average_utility_gain"] > 3.0
