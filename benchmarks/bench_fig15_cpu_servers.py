"""Benchmark regenerating Figure 15 (CPU server count to reach 100 QPS)."""

from conftest import run_figure_benchmark

from repro.experiments import fig15


def test_bench_fig15_cpu_servers(benchmark):
    result = run_figure_benchmark(benchmark, fig15.run)
    by_model = {row["model"]: row for row in result.rows}
    assert by_model["RM1"]["reduction"] > 1.2
    assert by_model["RM3"]["reduction"] > 1.2
