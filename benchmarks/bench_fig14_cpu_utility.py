"""Benchmark regenerating Figure 14 (CPU-only memory utility and replica counts)."""

from conftest import run_figure_benchmark

from repro.experiments import fig14


def test_bench_fig14_cpu_utility(benchmark):
    result = run_figure_benchmark(benchmark, fig14.run)
    assert result.summary["geomean_utility_gain"] > 3.0
