"""Benchmark the multi-tenant engine and the parallel sweep runner.

Two checks:

* scale — a three-tenant run over a shared node pool must complete in
  seconds while serving tens of thousands of queries across tenants;
* speedup — a 12-cell sweep run through the process pool must produce the
  exact serial results (digest equality) while recording the parallel
  speedup over serial execution in ``extra_info`` (near-linear on
  multi-core hosts; bounded by the core count either way).
"""

from __future__ import annotations

import time

from repro.core.planner import ElasticRecPlanner
from repro.experiments.sweeps import SweepConfig, run_sweep
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import rm1
from repro.serving.engine import MultiTenantEngine, TenantSpec
from repro.serving.scenarios import build_scenario

SWEEP_WORKERS = 4


def _shared_plan():
    cluster = cpu_only_cluster(num_nodes=8)
    workload = rm1().scaled_tables(4).with_name("RM1-mt-bench")
    return ElasticRecPlanner(cluster).plan(workload, 18.0)


def test_bench_multitenant_three_tenants(benchmark):
    """Three tenants with distinct scenarios/policies on one shared pool."""
    plan = _shared_plan()
    duration_s = 900.0

    def run():
        tenants = [
            TenantSpec(
                "feed", plan, build_scenario("diurnal", 12, 60, duration_s), seed=0
            ),
            TenantSpec(
                "ads",
                plan,
                build_scenario("flash-crowd", 10, 50, duration_s, seed=1),
                routing="power-of-two",
                seed=1,
            ),
            TenantSpec(
                "rank",
                plan,
                build_scenario("constant", 15, 15, duration_s),
                routing="least-outstanding",
                seed=2,
                sla_s=0.3,
            ),
        ]
        return MultiTenantEngine(tenants, cluster_spec=plan.cluster).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result.total_queries > 20_000
    benchmark.extra_info["total_queries"] = result.total_queries
    benchmark.extra_info["peak_pending_placements"] = (
        result.cluster_series.peak_pending_placements
    )
    for name, tenant in result.tenants.items():
        benchmark.extra_info[f"{name}_sla_violation_fraction"] = round(
            tenant.sla_violation_fraction(), 4
        )


def test_bench_sweep_parallel_speedup(benchmark):
    """Parallel sweep == serial sweep, with the speedup recorded."""
    config = SweepConfig(
        workload="RM1",
        num_tables=2,
        num_nodes=4,
        base_qps=10.0,
        peak_qps=30.0,
        duration_s=240.0,
        seed=0,
    )
    grid = dict(
        scenarios=["constant", "diurnal", "flash-crowd"],
        routings=["least-work", "power-of-two"],
        replica_budgets=[4, 32],
    )

    start = time.perf_counter()
    serial = run_sweep(config, workers=1, **grid)
    serial_s = time.perf_counter() - start

    parallel = benchmark.pedantic(
        lambda: run_sweep(config, workers=SWEEP_WORKERS, **grid),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    parallel_s = benchmark.stats.stats.mean

    assert len(serial.rows) == 12
    assert parallel.digest() == serial.digest()
    benchmark.extra_info["cells"] = len(serial.rows)
    benchmark.extra_info["workers"] = SWEEP_WORKERS
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["speedup"] = round(serial_s / parallel_s, 2)
