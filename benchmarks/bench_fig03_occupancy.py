"""Benchmark regenerating Figure 3 (dense vs sparse FLOP/memory/latency shares)."""

from conftest import run_figure_benchmark

from repro.experiments import fig03


def test_bench_fig3_layer_occupancy(benchmark):
    result = run_figure_benchmark(benchmark, fig03.run, rounds=3)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row["sparse_memory_pct"] > 99.0
        assert row["dense_flops_pct"] > 75.0
