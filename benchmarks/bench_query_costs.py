"""Benchmark the heterogeneous query-cost path of the serving engine.

Three checks:

* sampling — drawing 100k per-query cost multipliers from the skewed model
  (profile-pool sampling over a 20M-row Zipf table) must be a sub-second,
  vectorised operation;
* engine overhead — a 100k-query skewed run must stay within ~1.2x of the
  homogeneous engine's wall-clock: the cost model adds one pre-sampled
  multiplier lookup per query, not per-query distribution draws;
* fidelity — the homogeneous compatibility mode must keep reproducing the
  seed simulator's golden summary while the skewed mode serves the exact
  same arrival process (same query count, different tail).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.planner import ElasticRecPlanner
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import rm1
from repro.serving.engine import ServingEngine
from repro.serving.traffic import paper_dynamic_pattern
from repro.serving.workload import make_cost_model

# summary() of the pre-engine (seed) simulator for the reduced Figure 19
# ElasticRec run below with seed 0 (same golden values as
# bench_simulator_engine.py).
SEED_FIG19_TOTAL_QUERIES = 43898.0

#: Acceptance bound: skewed run wall-clock over homogeneous run wall-clock.
MAX_SLOWDOWN = 1.2


def _reduced_plan():
    cluster = cpu_only_cluster(num_nodes=8)
    workload = rm1().scaled_tables(4).with_name("RM1-reduced")
    return ElasticRecPlanner(cluster).plan(workload, 18.0)


def test_bench_cost_sampling_100k(benchmark):
    """Vectorised sampling of 100k multipliers from the 20M-row skewed model."""
    model = make_cost_model("skewed", rm1())

    def run():
        return model.sample(100_000, np.random.default_rng(0))

    multipliers = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert multipliers.shape == (100_000,)
    assert float(multipliers.mean()) == pytest.approx(1.0, abs=0.1)
    benchmark.extra_info["multiplier_cv"] = round(float(np.std(multipliers)), 4)
    assert benchmark.stats.stats.mean < 1.0, "sampling 100k multipliers must be sub-second"


def test_bench_skewed_within_1p2x_of_homogeneous(benchmark):
    """A 100k-query skewed run stays within ~1.2x of the homogeneous engine."""
    pattern = paper_dynamic_pattern(base_qps=60.0, peak_qps=220.0, duration_s=900.0)
    assert pattern.expected_queries() > 100_000
    timings: dict[str, float] = {}
    results: dict[str, object] = {}

    def run_both():
        for cost_model in ("homogeneous", "skewed"):
            start = time.perf_counter()
            engine = ServingEngine(_reduced_plan(), seed=0, cost_model=cost_model)
            results[cost_model] = engine.run(pattern)
            timings[cost_model] = time.perf_counter() - start
        return timings

    benchmark.pedantic(run_both, rounds=1, iterations=1, warmup_rounds=1)
    slowdown = timings["skewed"] / timings["homogeneous"]
    benchmark.extra_info["homogeneous_s"] = round(timings["homogeneous"], 3)
    benchmark.extra_info["skewed_s"] = round(timings["skewed"], 3)
    benchmark.extra_info["slowdown"] = round(slowdown, 3)
    for cost_model, result in results.items():
        assert result.tracker.num_samples > 100_000, cost_model
    # Same arrival process: the cost model must not perturb the query count.
    assert (
        results["skewed"].tracker.num_samples == results["homogeneous"].tracker.num_samples
    )
    assert slowdown < MAX_SLOWDOWN, (
        f"skewed run took {slowdown:.2f}x the homogeneous run "
        f"(bound {MAX_SLOWDOWN}x)"
    )


def test_bench_homogeneous_keeps_golden_query_count(benchmark):
    """The compatibility mode still reproduces the seed simulator's run."""
    pattern = paper_dynamic_pattern(base_qps=18.0, peak_qps=90.0, duration_s=900.0)

    def run():
        engine = ServingEngine(
            _reduced_plan(), seed=0, cost_model="homogeneous", max_batch=1
        )
        return engine.run(pattern)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result.tracker.num_samples == SEED_FIG19_TOTAL_QUERIES
    benchmark.extra_info["queries"] = result.tracker.num_samples
