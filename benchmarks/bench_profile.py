"""Profile the serving engine's hot path and lock its vectorized shape.

Runs a mid-size dynamic-traffic simulation under ``cProfile`` and reports the
top cumulative hot spots through ``benchmark.extra_info``, so the recorded
benchmark artifacts show *where* the time went, not just how much there was.

Beyond reporting, the profile is used as a structural regression test of the
hot path itself:

* the engine must route through the vectorized ``select_index`` path (one
  call per query per deployment) — if a change silently knocks the engine
  back onto the scalar per-server loop, the assertion fails before any
  wall-clock regression shows up in CI timing noise;
* ``serve_query`` must be called exactly once per served query, guarding the
  chunked arrival drain against double-serving or skipping;
* the *cached* run must stay on the same vectorized shape: pricing happens
  inline against the pool's array-backed fills, so neither the scalar
  ``ReplicaCache.serve`` loop nor the ``cache_adjusted_multiplier`` helper
  may appear in the profile at all.
"""

from __future__ import annotations

import cProfile
import pstats

from repro.core.planner import ElasticRecPlanner
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import rm1
from repro.serving.engine import ServingEngine
from repro.serving.traffic import paper_dynamic_pattern


def _reduced_plan():
    cluster = cpu_only_cluster(num_nodes=8)
    workload = rm1().scaled_tables(4).with_name("RM1-profile")
    return ElasticRecPlanner(cluster).plan(workload, 18.0)


def _stats_by_name(stats: pstats.Stats) -> dict[str, tuple[int, float]]:
    """Map ``filename:function`` to summed (primitive calls, cumulative secs).

    cProfile keys entries by (filename, lineno, funcname); same-named
    functions at different lines (``select_index`` on every policy class,
    the policies' ``__init__``\\ s) are *summed*, not overwritten, so call
    totals stay meaningful.
    """
    table: dict[str, tuple[int, float]] = {}
    for (filename, _, function), (pcalls, _, _, cumulative, _) in stats.stats.items():
        key = f"{filename.rsplit('/', 1)[-1]}:{function}"
        calls, seconds = table.get(key, (0, 0.0))
        table[key] = (calls + pcalls, seconds + cumulative)
    return table


def test_bench_profile_hot_path(benchmark):
    """Profile a mid-size run; assert the vectorized hot path carried it."""
    pattern = paper_dynamic_pattern(base_qps=30.0, peak_qps=110.0, duration_s=600.0)
    profiler = cProfile.Profile()

    def run():
        engine = ServingEngine(_reduced_plan(), seed=0)
        profiler.enable()
        result = engine.run(pattern)
        profiler.disable()
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    queries = result.tracker.num_samples
    assert queries > 10_000

    stats = pstats.Stats(profiler)
    table = _stats_by_name(stats)
    deployments = len(result.replica_counts)

    serve_calls = table["engine.py:serve_query"][0]
    assert serve_calls == queries, "serve_query must run exactly once per query"

    select_calls = table.get("routing.py:select_index", (0, 0.0))[0]
    assert select_calls == queries * deployments, (
        "the vectorized select_index path must carry every routing decision "
        f"(saw {select_calls}, expected {queries * deployments})"
    )
    assert "routing.py:_ready_pool" not in table, (
        "the scalar _ready_pool loop leaked into a vectorized run"
    )

    top = sorted(table.items(), key=lambda item: item[1][1], reverse=True)
    benchmark.extra_info["queries"] = queries
    benchmark.extra_info["deployments"] = deployments
    for rank, (name, (calls, cumulative)) in enumerate(top[:8]):
        benchmark.extra_info[f"hot_{rank}"] = f"{name} calls={calls} cum={cumulative:.3f}s"


def test_bench_profile_cached_hot_path(benchmark):
    """Profile a cached run; assert pricing stayed inline and array-backed.

    The per-replica embedding caches must not drag the engine off the
    vectorized shape: fills live in ``ReplicaPool.fill_rows`` and pricing is
    inlined in ``serve_query``, so the scalar ``ReplicaCache`` machinery and
    the ``cache_adjusted_multiplier`` helper must be absent from the profile.
    """
    pattern = paper_dynamic_pattern(base_qps=30.0, peak_qps=110.0, duration_s=600.0)
    profiler = cProfile.Profile()

    def run():
        engine = ServingEngine(
            _reduced_plan(), seed=0, cost_model="skewed", cache_mb=64.0
        )
        profiler.enable()
        result = engine.run(pattern)
        profiler.disable()
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    queries = result.tracker.num_samples
    assert queries > 10_000
    assert result.cache_hit_rate, "the cached profile run recorded no hit-rate series"

    stats = pstats.Stats(profiler)
    table = _stats_by_name(stats)
    deployments = len(result.replica_counts)

    serve_calls = table["engine.py:serve_query"][0]
    assert serve_calls == queries, "serve_query must run exactly once per query"

    select_calls = table.get("routing.py:select_index", (0, 0.0))[0]
    assert select_calls == queries * deployments, (
        "the vectorized select_index path must carry every routing decision "
        f"(saw {select_calls}, expected {queries * deployments})"
    )
    assert "routing.py:_ready_pool" not in table, (
        "the scalar _ready_pool loop leaked into a vectorized cached run"
    )
    for leaked in (
        "replica_server.py:serve",
        "replica_server.py:hit_fractions",
        "perf_model.py:cache_adjusted_multiplier",
        "perf_model.py:factor",
    ):
        assert leaked not in table, (
            f"{leaked} leaked into the cached hot path; pricing must stay "
            "inline against the pool's array-backed fills"
        )

    top = sorted(table.items(), key=lambda item: item[1][1], reverse=True)
    benchmark.extra_info["queries"] = queries
    benchmark.extra_info["deployments"] = deployments
    for rank, (name, (calls, cumulative)) in enumerate(top[:8]):
        benchmark.extra_info[f"hot_{rank}"] = f"{name} calls={calls} cum={cumulative:.3f}s"
