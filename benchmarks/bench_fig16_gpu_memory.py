"""Benchmark regenerating Figure 16 (CPU-GPU memory, model-wise vs ElasticRec)."""

from conftest import run_figure_benchmark

from repro.experiments import fig16


def test_bench_fig16_gpu_memory(benchmark):
    result = run_figure_benchmark(benchmark, fig16.run)
    assert all(row["reduction"] > 1.2 for row in result.rows)
