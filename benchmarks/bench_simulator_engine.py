"""Benchmark the discrete-event serving engine.

Two checks:

* throughput — the engine must sustain a Figure-19-style dynamic-traffic run
  with more than 100k queries (the scale the seed's per-query loop choked
  on), reported through pytest-benchmark timing;
* fidelity — a least-work engine run must reproduce the *seed* simulator's
  ``summary()`` for the same seed within float tolerance (the golden values
  below were captured from the pre-engine simulator at the commit that
  introduced the engine).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.planner import ElasticRecPlanner
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import rm1
from repro.serving.engine import ServingEngine
from repro.serving.traffic import paper_dynamic_pattern

# summary() of the pre-engine (seed) simulator for the reduced Figure 19
# ElasticRec run below with seed 0.
SEED_FIG19_SUMMARY = {
    "peak_memory_gb": 46.345177292,
    "mean_latency_ms": 135.4715781346074,
    "p95_latency_ms": 167.1631524292041,
    "sla_violation_fraction": 0.025399790423253906,
    "total_queries": 43898.0,
}


def _reduced_plan():
    cluster = cpu_only_cluster(num_nodes=8)
    workload = rm1().scaled_tables(4).with_name("RM1-reduced")
    return ElasticRecPlanner(cluster).plan(workload, 18.0)


def test_bench_engine_100k_query_run(benchmark):
    """A Figure-19-shaped run upscaled past 100k queries."""
    pattern = paper_dynamic_pattern(base_qps=60.0, peak_qps=220.0, duration_s=900.0)
    assert pattern.expected_queries() > 100_000

    def run():
        engine = ServingEngine(_reduced_plan(), seed=0)
        return engine.run(pattern)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result.tracker.num_samples > 100_000
    benchmark.extra_info["queries"] = result.tracker.num_samples
    benchmark.extra_info["queries_per_wall_second"] = round(
        result.tracker.num_samples / benchmark.stats.stats.mean
    )


def test_bench_engine_matches_seed_simulator(benchmark):
    """Least-work engine == seed simulator summary, same seed."""
    pattern = paper_dynamic_pattern(base_qps=18.0, peak_qps=90.0, duration_s=900.0)

    def run():
        engine = ServingEngine(_reduced_plan(), routing="least-work", seed=0)
        return engine.run(pattern)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    summary = result.summary()
    assert set(summary) == set(SEED_FIG19_SUMMARY)
    for key, expected in SEED_FIG19_SUMMARY.items():
        assert summary[key] == pytest.approx(expected, rel=1e-9), key
        benchmark.extra_info[key] = round(float(summary[key]), 4)


def test_bench_routing_policies_same_arrivals(benchmark):
    """Relative cost of the routing policies on one identical run."""
    pattern = paper_dynamic_pattern(base_qps=18.0, peak_qps=90.0, duration_s=900.0)
    timings = {}

    def run_all():
        import time

        for routing in ("least-work", "round-robin", "power-of-two"):
            start = time.perf_counter()
            engine = ServingEngine(_reduced_plan(), routing=routing, seed=0)
            result = engine.run(pattern)
            timings[routing] = time.perf_counter() - start
            assert result.tracker.num_samples == SEED_FIG19_SUMMARY["total_queries"]
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1, warmup_rounds=0)
    for routing, seconds in timings.items():
        benchmark.extra_info[f"{routing}_s"] = round(seconds, 3)
    slowest = max(timings.values())
    fastest = min(timings.values())
    assert np.isfinite(slowest) and fastest > 0
