"""Benchmark regenerating Figure 17 (CPU-GPU memory utility and replica counts)."""

from conftest import run_figure_benchmark

from repro.experiments import fig17


def test_bench_fig17_gpu_utility(benchmark):
    result = run_figure_benchmark(benchmark, fig17.run)
    assert result.summary["geomean_utility_gain"] > 3.0
