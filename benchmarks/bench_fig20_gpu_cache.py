"""Benchmark regenerating Figure 20 (ElasticRec vs model-wise + GPU cache)."""

from conftest import run_figure_benchmark

from repro.experiments import fig20


def test_bench_fig20_gpu_cache(benchmark):
    result = run_figure_benchmark(benchmark, fig20.run)
    assert result.summary["geomean_elasticrec_vs_cache"] > 1.0
    for row in result.rows:
        assert row["model_wise_cache_gb"] < row["model_wise_gb"]
