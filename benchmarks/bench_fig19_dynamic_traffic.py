"""Benchmark regenerating Figure 19 (behaviour under fluctuating traffic).

The default run uses the reduced-scale configuration (seconds of wall clock);
set the environment variable ``ELASTICREC_FIG19_FULL=1`` to run the full
RM1 / 30-simulated-minute configuration (tens of seconds).
"""

import os

from conftest import run_figure_benchmark

from repro.experiments import fig19


def test_bench_fig19_dynamic_traffic(benchmark):
    full = os.environ.get("ELASTICREC_FIG19_FULL", "0") == "1"
    result = run_figure_benchmark(benchmark, lambda: fig19.run(full=full))
    summary = result.summary
    assert summary["peak_memory_ratio"] > 1.2
    assert (
        summary["elasticrec_sla_violation_fraction"]
        < summary["model_wise_sla_violation_fraction"]
    )
