"""Micro-benchmarks of the core algorithms themselves.

These complement the per-figure benchmarks by timing the paper's own
algorithmic building blocks at paper scale: the Algorithm-2 dynamic program
over a 20M-row table (the paper reports ~18 s for its implementation), the
bucketization of a full query batch and the analytic memory-utility
computation.
"""

from __future__ import annotations

import numpy as np

from repro.core.bucketization import Bucketizer
from repro.core.planner import ElasticRecPlanner
from repro.data.distributions import ZipfDistribution
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import rm1


def test_bench_dp_partitioning_paper_scale(benchmark):
    """Algorithm 2 on a 20M-row table at the default boundary granularity."""
    planner = ElasticRecPlanner(cpu_only_cluster())
    config = rm1()
    result = benchmark(planner.partition, config)
    assert result.boundaries[-1] == config.embedding.rows_per_table
    assert 1 <= result.num_shards <= 16


def test_bench_bucketization_full_query(benchmark):
    """Routing one RM1 query's lookups (32 items x 128 gathers) onto 4 shards."""
    rows = 20_000_000
    distribution = ZipfDistribution.from_locality(rows, 0.9)
    rng = np.random.default_rng(0)
    indices = distribution.sample(32 * 128, rng)
    offsets = np.arange(32, dtype=np.int64) * 128
    bucketizer = Bucketizer([0, 200_000, 2_000_000, 8_000_000, rows])
    routed = benchmark(bucketizer.bucketize, indices, offsets)
    assert sum(r.num_lookups for r in routed) == indices.size


def test_bench_expected_unique_paper_scale(benchmark):
    """Analytic memory-utility evaluation over a 20M-row access distribution."""
    distribution = ZipfDistribution.from_locality(20_000_000, 0.9)
    draws = 1000 * 32 * 128
    touched = benchmark(distribution.expected_unique, draws, 0, 2_000_000)
    assert 0 < touched <= 2_000_000
