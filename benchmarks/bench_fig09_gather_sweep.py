"""Benchmark regenerating Figure 9 (gather QPS sweep and QPS(x) regression)."""

from conftest import run_figure_benchmark

from repro.experiments import fig09


def test_bench_fig9_gather_sweep(benchmark):
    result = run_figure_benchmark(benchmark, fig09.run, rounds=3)
    at_100 = {
        row["embedding_dim"]: row["qps"]
        for row in result.rows
        if row["num_vectors_gathered"] == 100
    }
    assert at_100[32] > at_100[128] > at_100[512]
