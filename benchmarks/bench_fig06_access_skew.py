"""Benchmark regenerating Figure 6 (sorted embedding access-frequency curves)."""

from conftest import run_figure_benchmark

from repro.experiments import fig06


def test_bench_fig6_access_frequency(benchmark):
    result = run_figure_benchmark(benchmark, fig06.run, rounds=3)
    assert result.summary["movielens_top10pct_coverage"] > 90.0
