"""Figure 12: microbenchmark sweeps of memory consumption (Table I).

Four sweeps built on the RM1-derived microbenchmark, all at a 100 queries/s
target on the CPU-only system:

* **(a)** MLP size (Light / Medium / Heavy) — model-wise memory grows quickly
  because extra dense compute forces whole-model replication, ElasticRec only
  adds cheap dense shards.
* **(b)** embedding-table locality (P = 10 / 50 / 90%) — ElasticRec exploits
  higher locality, the baseline cannot.
* **(c)** number of embedding tables (1 / 4 / 10 / 16).
* **(d)** number of shards per table forced to 1 / 2 / 4 / 8 / 16 for
  ElasticRec, showing the diminishing returns the DP partitioner balances.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    CPU_ONLY_TARGET_QPS,
    cluster_for_system,
    plan_elasticrec,
    plan_model_wise,
)
from repro.model.configs import (
    LOCALITY_PRESETS,
    MICROBENCHMARK_MLP_PRESETS,
    MICROBENCHMARK_SHARD_COUNTS,
    MICROBENCHMARK_TABLE_COUNTS,
    microbenchmark,
)

__all__ = ["run", "run_mlp_size", "run_locality", "run_num_tables", "run_num_shards"]


def _memory_pair(config, cluster, target_qps) -> tuple[float, float]:
    elastic = plan_elasticrec(config, cluster, target_qps)
    baseline = plan_model_wise(config, cluster, target_qps)
    return elastic.total_memory_gb, baseline.total_memory_gb


def run_mlp_size(target_qps: float = CPU_ONLY_TARGET_QPS) -> ExperimentResult:
    """Figure 12(a): memory consumption vs dense MLP size."""
    cluster = cluster_for_system("cpu")
    rows = []
    for size in MICROBENCHMARK_MLP_PRESETS:
        config = microbenchmark(mlp_size=size)
        elastic_gb, baseline_gb = _memory_pair(config, cluster, target_qps)
        rows.append(
            {
                "mlp_size": size,
                "model_wise_gb": baseline_gb,
                "elasticrec_gb": elastic_gb,
                "reduction": baseline_gb / elastic_gb,
            }
        )
    growth = {
        "model_wise_growth": rows[-1]["model_wise_gb"] / rows[0]["model_wise_gb"],
        "elasticrec_growth": rows[-1]["elasticrec_gb"] / rows[0]["elasticrec_gb"],
    }
    return ExperimentResult(
        experiment_id="fig12a",
        title="Memory consumption vs MLP size (Light/Medium/Heavy)",
        rows=rows,
        summary=growth,
        notes=(
            "Model-wise memory rises quickly as the MLP gets heavier (whole-model "
            "replication); ElasticRec's increase is modest because only dense shards "
            "are added."
        ),
    )


def run_locality(target_qps: float = CPU_ONLY_TARGET_QPS) -> ExperimentResult:
    """Figure 12(b): memory consumption vs embedding-table locality."""
    cluster = cluster_for_system("cpu")
    rows = []
    for name in LOCALITY_PRESETS:
        config = microbenchmark(locality=name)
        elastic_gb, baseline_gb = _memory_pair(config, cluster, target_qps)
        rows.append(
            {
                "locality": name,
                "locality_P": LOCALITY_PRESETS[name],
                "model_wise_gb": baseline_gb,
                "elasticrec_gb": elastic_gb,
                "reduction": baseline_gb / elastic_gb,
            }
        )
    summary = {
        "reduction_at_high_locality": rows[-1]["reduction"],
        "model_wise_spread": max(r["model_wise_gb"] for r in rows)
        / min(r["model_wise_gb"] for r in rows),
    }
    return ExperimentResult(
        experiment_id="fig12b",
        title="Memory consumption vs embedding access locality (P = 10/50/90%)",
        rows=rows,
        summary=summary,
        notes=(
            "ElasticRec's savings grow with locality (the paper reports 2.2x at High); "
            "the baseline's memory is essentially flat because it cannot exploit skew."
        ),
    )


def run_num_tables(target_qps: float = CPU_ONLY_TARGET_QPS) -> ExperimentResult:
    """Figure 12(c): memory consumption vs the number of embedding tables."""
    cluster = cluster_for_system("cpu")
    rows = []
    for num_tables in MICROBENCHMARK_TABLE_COUNTS:
        config = microbenchmark(num_tables=num_tables)
        elastic_gb, baseline_gb = _memory_pair(config, cluster, target_qps)
        rows.append(
            {
                "num_tables": num_tables,
                "model_wise_gb": baseline_gb,
                "elasticrec_gb": elastic_gb,
                "reduction": baseline_gb / elastic_gb,
            }
        )
    summary = {"reduction_at_16_tables": rows[-1]["reduction"]}
    return ExperimentResult(
        experiment_id="fig12c",
        title="Memory consumption vs number of embedding tables",
        rows=rows,
        summary=summary,
        notes="The gap between model-wise and ElasticRec widens as tables are added.",
    )


def run_num_shards(target_qps: float = CPU_ONLY_TARGET_QPS) -> ExperimentResult:
    """Figure 12(d): ElasticRec memory vs a manually forced shard count."""
    cluster = cluster_for_system("cpu")
    config = microbenchmark()
    rows = []
    for num_shards in MICROBENCHMARK_SHARD_COUNTS:
        plan = plan_elasticrec(config, cluster, target_qps, num_shards=num_shards)
        rows.append(
            {
                "num_shards": num_shards,
                "elasticrec_gb": plan.total_memory_gb,
                "total_replicas": plan.total_replicas,
            }
        )
    auto_plan = plan_elasticrec(config, cluster, target_qps)
    chosen = auto_plan.sharding.num_embedding_shards // config.embedding.num_tables
    best_forced = min(rows, key=lambda r: r["elasticrec_gb"])
    summary = {
        "dp_chosen_shards": float(chosen),
        "dp_chosen_gb": auto_plan.total_memory_gb,
        "best_forced_shards": float(best_forced["num_shards"]),
        "best_forced_gb": best_forced["elasticrec_gb"],
    }
    return ExperimentResult(
        experiment_id="fig12d",
        title="Memory consumption vs number of shards per table (forced)",
        rows=rows,
        summary=summary,
        notes=(
            "Memory drops as shards are added, then plateaus or rises once per-container "
            "minimum allocations dominate; the DP-chosen shard count sits at that knee."
        ),
    )


def run(target_qps: float = CPU_ONLY_TARGET_QPS) -> ExperimentResult:
    """All four Figure 12 panels concatenated."""
    parts = [
        run_mlp_size(target_qps),
        run_locality(target_qps),
        run_num_tables(target_qps),
        run_num_shards(target_qps),
    ]
    rows = []
    summary: dict[str, float] = {}
    for part in parts:
        for row in part.rows:
            rows.append({"panel": part.experiment_id, **row})
        summary.update({f"{part.experiment_id}_{k}": v for k, v in part.summary.items()})
    return ExperimentResult(
        experiment_id="fig12",
        title="Microbenchmark memory-consumption sweeps (Table I)",
        rows=rows,
        summary=summary,
        notes="Panels a-d correspond to the four sub-figures of Figure 12.",
    )
