"""Skew sensitivity: serve-time effect of the Figure 6 access distributions.

Figure 6 of the paper shows the power-law skew of embedding accesses; the
planner's QPS regression is fit over the per-query cost heterogeneity that
skew induces (Figure 9).  This experiment closes the loop at serve time: one
fixed deployment plan serves identical traffic under per-query cost models
sampled from access distributions of increasing locality ``P``, and the tail
latency diverges across the skew settings — heterogeneity the homogeneous
(constant-service-time) engine is structurally blind to.

Every run shares the same seed, plan and arrival process; only the sampled
per-query gather costs differ.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.planner import ElasticRecPlanner
from repro.data.distributions import ZipfDistribution
from repro.experiments.base import ExperimentResult
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import LOCALITY_PRESETS, microbenchmark
from repro.serving.engine import ServingEngine
from repro.serving.traffic import TrafficPattern
from repro.serving.workload import HomogeneousCostModel, SkewedCostModel

__all__ = ["run"]

#: Queries per second of the constant load (near the plan's provisioned rate,
#: so service-time variance turns into queueing-tail variance).
_QPS = 27.0
_DURATION_S = 300.0
_SEED = 3
#: Pooling factor of the sparse-heavy workload: enough gathers per query that
#: the embedding shards — the layer the skew acts on — carry the tail.
_POOLING = 256


def run() -> ExperimentResult:
    """Serve one plan under increasing access skew; report the latency spread."""
    cluster = cpu_only_cluster(num_nodes=4)
    base = microbenchmark(num_tables=2)
    workload = replace(
        base,
        embedding=replace(base.embedding, pooling=_POOLING),
        name="micro-sparse-heavy",
    )
    # One coarse shard per table keeps the embedding path load-bearing.
    plan = ElasticRecPlanner(cluster).plan(workload, target_qps=30.0, num_shards=1)
    pattern = TrafficPattern.constant(_QPS, duration_s=_DURATION_S)
    embedding = workload.embedding

    cost_models = {"homogeneous": HomogeneousCostModel()}
    localities = {"homogeneous": None}
    for label, locality in LOCALITY_PRESETS.items():
        key = f"skewed-{label}"
        cost_models[key] = SkewedCostModel(
            distribution=ZipfDistribution.from_locality(
                embedding.rows_per_table, locality
            ),
            pooling=embedding.pooling,
        )
        localities[key] = locality

    rows = []
    p95_by_label: dict[str, float] = {}
    for label, cost_model in cost_models.items():
        engine = ServingEngine(
            plan, autoscale=False, seed=_SEED, cost_model=cost_model
        )
        result = engine.run(pattern)
        multipliers = cost_model.sample(8192, np.random.default_rng(_SEED))
        locality = localities[label]
        p95_by_label[label] = result.overall_p95_latency_ms
        rows.append(
            {
                "cost_model": label,
                "locality_pct": 100.0 * locality if locality is not None else 0.0,
                "multiplier_cv": float(np.std(multipliers) / np.mean(multipliers)),
                "mean_latency_ms": result.mean_latency_ms,
                "p95_latency_ms": result.overall_p95_latency_ms,
                "sla_violation_pct": 100.0 * result.sla_violation_fraction(),
                "queries": float(result.tracker.num_samples),
            }
        )

    skewed_p95s = [v for k, v in p95_by_label.items() if k != "homogeneous"]
    summary = {f"{label}_p95_ms": value for label, value in p95_by_label.items()}
    summary["p95_spread_ms"] = max(skewed_p95s) - min(skewed_p95s)
    return ExperimentResult(
        experiment_id="skew",
        title="Serve-time sensitivity to embedding access skew (Figure 6 distributions)",
        rows=rows,
        summary=summary,
        notes=(
            "One plan, identical arrivals; only the per-query gather-cost model "
            "varies.  multiplier_cv is the coefficient of variation of the "
            "sampled cost multipliers (0 for the homogeneous compatibility mode)."
        ),
    )
