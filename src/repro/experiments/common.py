"""Shared helpers for the experiment modules.

Planning a paper-scale workload takes a noticeable fraction of a second, and
several experiments (memory, utility, servers, headline aggregates) need the
same plans, so the planning helpers are memoised on their (hashable) workload
and cluster specifications.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.baseline import ModelWisePlanner
from repro.core.gpu_cache import CachedModelWisePlanner
from repro.core.plan import DeploymentPlan
from repro.core.planner import ElasticRecPlanner
from repro.hardware.specs import ClusterSpec, cpu_gpu_cluster, cpu_only_cluster
from repro.model.configs import DLRMConfig, rm1, rm2, rm3

__all__ = [
    "CPU_ONLY_TARGET_QPS",
    "CPU_GPU_TARGET_QPS",
    "paper_workloads",
    "cluster_for_system",
    "plan_elasticrec",
    "plan_model_wise",
    "plan_cached_model_wise",
]

#: Target throughput of the CPU-only experiments (Figures 13-15).
CPU_ONLY_TARGET_QPS = 100.0

#: Target throughput of the CPU-GPU experiments (Figures 16-18, 20).
CPU_GPU_TARGET_QPS = 200.0


def paper_workloads() -> list[DLRMConfig]:
    """RM1, RM2 and RM3 (Table II)."""
    return [rm1(), rm2(), rm3()]


def cluster_for_system(system: str) -> ClusterSpec:
    """The paper cluster preset for ``"cpu"`` or ``"cpu-gpu"``."""
    if system == "cpu":
        return cpu_only_cluster()
    if system == "cpu-gpu":
        return cpu_gpu_cluster()
    raise ValueError(f"unknown system {system!r}; use 'cpu' or 'cpu-gpu'")


@lru_cache(maxsize=None)
def plan_elasticrec(
    config: DLRMConfig,
    cluster: ClusterSpec,
    target_qps: float,
    num_shards: int | None = None,
) -> DeploymentPlan:
    """Plan an ElasticRec deployment (memoised)."""
    return ElasticRecPlanner(cluster).plan(config, target_qps, num_shards=num_shards)


@lru_cache(maxsize=None)
def plan_model_wise(
    config: DLRMConfig, cluster: ClusterSpec, target_qps: float
) -> DeploymentPlan:
    """Plan the model-wise baseline deployment (memoised)."""
    return ModelWisePlanner(cluster).plan(config, target_qps)


@lru_cache(maxsize=None)
def plan_cached_model_wise(
    config: DLRMConfig, cluster: ClusterSpec, target_qps: float
) -> DeploymentPlan:
    """Plan the model-wise + GPU embedding cache baseline deployment (memoised)."""
    return CachedModelWisePlanner(cluster).plan(config, target_qps)
