"""Command-line entry point: ``python -m repro.experiments [ids...]``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import EXPERIMENTS, run_all


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments (all by default) and print their reports."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the ElasticRec paper's evaluation figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all). Known: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list known experiment ids and exit"
    )
    args = parser.parse_args(argv)
    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0
    ids = args.experiments or None
    results = run_all(ids)
    for result in results.values():
        print(result.report())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
