"""Figure 13: CPU-only memory consumption of model-wise vs ElasticRec.

RM1/RM2/RM3 at a 100 queries/s target; the paper reports 2.2x, 2.6x and 8.1x
memory reductions and shard counts of 4, 3 and 3 per table.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    CPU_ONLY_TARGET_QPS,
    cluster_for_system,
    paper_workloads,
    plan_elasticrec,
    plan_model_wise,
)

__all__ = ["run"]

PAPER_REDUCTIONS = {"RM1": 2.2, "RM2": 2.6, "RM3": 8.1}


def run(target_qps: float = CPU_ONLY_TARGET_QPS) -> ExperimentResult:
    """Regenerate Figure 13."""
    cluster = cluster_for_system("cpu")
    rows = []
    for config in paper_workloads():
        elastic = plan_elasticrec(config, cluster, target_qps)
        baseline = plan_model_wise(config, cluster, target_qps)
        shards_per_table = elastic.sharding.num_embedding_shards // config.embedding.num_tables
        rows.append(
            {
                "model": config.name,
                "model_wise_gb": baseline.total_memory_gb,
                "elasticrec_gb": elastic.total_memory_gb,
                "reduction": baseline.total_memory_gb / elastic.total_memory_gb,
                "paper_reduction": PAPER_REDUCTIONS[config.name],
                "shards_per_table": shards_per_table,
                "model_wise_replicas": baseline.total_replicas,
            }
        )
    reductions = [r["reduction"] for r in rows]
    summary = {
        "geomean_reduction": float(np.exp(np.mean(np.log(reductions)))),
        "paper_average_reduction": 3.3,
    }
    return ExperimentResult(
        experiment_id="fig13",
        title="CPU-only memory consumption at 100 QPS (model-wise vs ElasticRec)",
        rows=rows,
        summary=summary,
        notes=(
            "The paper reports reductions of 2.2x/2.6x/8.1x for RM1/RM2/RM3 with the "
            "largest gain on RM3, whose compute-heavy MLPs force the baseline to "
            "replicate many whole-model copies."
        ),
    )
