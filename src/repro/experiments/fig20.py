"""Figure 20: ElasticRec vs a model-wise baseline with a GPU embedding cache.

On the CPU-GPU system (200 queries/s target) the monolithic baseline is
augmented with a GPU-HBM embedding cache capturing 90% of gathers, which cuts
the embedding layer's latency by 47% and total memory by roughly 41% — yet
the coarse-grained allocation remains, leaving ElasticRec about 1.7x more
memory-efficient than even the cached baseline.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    CPU_GPU_TARGET_QPS,
    cluster_for_system,
    paper_workloads,
    plan_cached_model_wise,
    plan_elasticrec,
    plan_model_wise,
)

__all__ = ["run"]


def run(target_qps: float = CPU_GPU_TARGET_QPS) -> ExperimentResult:
    """Regenerate Figure 20."""
    cluster = cluster_for_system("cpu-gpu")
    rows = []
    for config in paper_workloads():
        baseline = plan_model_wise(config, cluster, target_qps)
        cached = plan_cached_model_wise(config, cluster, target_qps)
        elastic = plan_elasticrec(config, cluster, target_qps)
        rows.append(
            {
                "model": config.name,
                "model_wise_gb": baseline.total_memory_gb,
                "model_wise_cache_gb": cached.total_memory_gb,
                "elasticrec_gb": elastic.total_memory_gb,
                "cache_saving_vs_mw": 1.0 - cached.total_memory_gb / baseline.total_memory_gb,
                "elasticrec_vs_cache": cached.total_memory_gb / elastic.total_memory_gb,
            }
        )
    summary = {
        "geomean_cache_saving_vs_mw": float(
            np.exp(np.mean(np.log([1.0 - r["cache_saving_vs_mw"] for r in rows])))
        ),
        "geomean_elasticrec_vs_cache": float(
            np.exp(np.mean(np.log([r["elasticrec_vs_cache"] for r in rows])))
        ),
        "paper_cache_saving_vs_mw": 0.41,
        "paper_elasticrec_vs_cache": 1.7,
    }
    return ExperimentResult(
        experiment_id="fig20",
        title="CPU-GPU memory: model-wise vs model-wise + GPU cache vs ElasticRec",
        rows=rows,
        summary=summary,
        notes=(
            "The GPU-side cache improves the monolithic baseline's throughput and trims "
            "its memory, but whole-table duplication remains; ElasticRec still allocates "
            "the least memory."
        ),
    )
