"""Figure 19: behaviour under dynamically fluctuating input query traffic.

RM1 is served on the CPU-only cluster while the input traffic rises in five
increments (minutes 5 to 20) and falls again at minute 24; Kubernetes HPA
scales replicas in and out.  The paper's observations, reproduced here:

* ElasticRec tracks the target QPS quickly after every traffic change while
  the model-wise baseline lags (its replicas take far longer to initialise
  because each must load the whole model);
* the baseline's allocated memory is much higher (3.1x at peak in the paper);
* the baseline exhibits more frequent tail-latency spikes that violate the
  400 ms SLA.

The default parameters are scaled down (fewer tables, fewer nodes, shorter
run, lower peak) so the experiment finishes in seconds; pass ``full=True``
for the full RM1 / 30-minute configuration.  In both modes the peak query
rate is chosen relative to this reproduction's calibrated per-replica
throughput so that, as in the paper, the traffic peak sits near the fleet's
model-wise capacity; the paper's absolute 250 QPS peak reflects its faster
physical testbed.
"""

from __future__ import annotations

import numpy as np

from repro.core.baseline import ModelWisePlanner
from repro.core.planner import ElasticRecPlanner
from repro.experiments.base import ExperimentResult
from repro.experiments.common import cluster_for_system
from repro.model.configs import rm1
from repro.serving.simulator import ServingSimulator, SimulationResult
from repro.serving.traffic import paper_dynamic_pattern
from repro.hardware.specs import ClusterSpec
from repro.model.configs import DLRMConfig

__all__ = ["run"]


def _simulate(
    plan, pattern, seed: int, sample_interval_s: float, routing: str = "least-work"
) -> SimulationResult:
    simulator = ServingSimulator(
        plan, seed=seed, sample_interval_s=sample_interval_s, routing=routing
    )
    return simulator.run(pattern)


def _series_rows(result: SimulationResult, stride: int) -> list[dict[str, float]]:
    rows = []
    for index in range(0, result.sample_times.size, stride):
        rows.append(
            {
                "strategy": result.strategy,
                "time_min": float(result.sample_times[index]) / 60.0,
                "target_qps": float(result.target_qps[index]),
                "achieved_qps": float(result.achieved_qps[index]),
                "memory_gb": float(result.memory_gb[index]),
                "p95_latency_ms": float(result.p95_latency_ms[index]),
            }
        )
    return rows


def run(
    full: bool = False,
    seed: int = 0,
    workload: DLRMConfig | None = None,
    cluster: ClusterSpec | None = None,
    routing: str = "least-work",
) -> ExperimentResult:
    """Regenerate Figure 19 (reduced scale by default, ``full=True`` for paper scale).

    ``routing`` selects the replica-routing policy both systems use (see
    :data:`repro.serving.routing.ROUTING_POLICIES`); the paper's setup
    corresponds to the default ``least-work``.
    """
    if cluster is None:
        cluster = cluster_for_system("cpu")
        if not full:
            cluster = cluster.with_nodes(8)
    if workload is None:
        workload = rm1() if full else rm1().scaled_tables(4).with_name("RM1-reduced")
    if full:
        base_qps, peak_qps, duration_s = 25.0, 125.0, 1800.0
    else:
        base_qps, peak_qps, duration_s = 18.0, 90.0, 900.0
    pattern = paper_dynamic_pattern(base_qps=base_qps, peak_qps=peak_qps, duration_s=duration_s)

    elastic_plan = ElasticRecPlanner(cluster).plan(workload, base_qps)
    baseline_plan = ModelWisePlanner(cluster).plan(workload, base_qps)
    elastic = _simulate(elastic_plan, pattern, seed, sample_interval_s=15.0, routing=routing)
    baseline = _simulate(baseline_plan, pattern, seed, sample_interval_s=15.0, routing=routing)

    stride = 4  # one row per simulated minute
    rows = _series_rows(elastic, stride) + _series_rows(baseline, stride)
    summary = {
        "elasticrec_peak_memory_gb": elastic.peak_memory_gb,
        "model_wise_peak_memory_gb": baseline.peak_memory_gb,
        "peak_memory_ratio": baseline.peak_memory_gb / elastic.peak_memory_gb,
        "paper_peak_memory_ratio": 3.1,
        "elasticrec_sla_violation_fraction": elastic.sla_violation_fraction(),
        "model_wise_sla_violation_fraction": baseline.sla_violation_fraction(),
        "elasticrec_mean_latency_ms": elastic.mean_latency_ms,
        "model_wise_mean_latency_ms": baseline.mean_latency_ms,
        "achieved_qps_tracking_gap_elasticrec": float(
            np.mean(np.maximum(elastic.target_qps - elastic.achieved_qps, 0.0))
        ),
        "achieved_qps_tracking_gap_model_wise": float(
            np.mean(np.maximum(baseline.target_qps - baseline.achieved_qps, 0.0))
        ),
    }
    return ExperimentResult(
        experiment_id="fig19",
        title="QPS, memory and tail latency under fluctuating input traffic",
        rows=rows,
        summary=summary,
        notes=(
            "Rows are one-minute samples of both systems' time series.  The baseline "
            "allocates far more memory at peak, lags the target QPS after traffic "
            "changes (slow whole-model replica start-up) and violates the 400 ms SLA "
            "more often."
        ),
    )
