"""Ablation: how much does the utility-based DP partitioner matter?

ElasticRec's gains come from two mechanisms: (1) decomposing the monolithic
model into independently scaled microservices, and (2) choosing *where* to
cut each embedding table with the utility-based DP (Algorithm 2).  This
ablation isolates the second mechanism by deploying the same microservice
architecture with progressively simpler partitioning strategies:

* ``model-wise`` — the monolithic baseline (no decomposition at all);
* ``none`` — microservices, but each table stays one shard;
* ``uniform`` — equal-row shards, oblivious to hotness;
* ``threshold`` — a fixed hot/cold split at the hottest 10% of rows;
* ``dp`` — the paper's Algorithm 2.

The paper does not report this table explicitly, but it is the natural
design-choice ablation called out in DESIGN.md, and its expected shape follows
from Section IV-B: hotness-aware plans should dominate hotness-oblivious ones.
"""

from __future__ import annotations

from typing import Callable

from repro.core.alternative_partitioners import (
    no_partitioning,
    threshold_partitioning,
    uniform_partitioning,
)
from repro.core.cost_model import DeploymentCostModel
from repro.core.partitioning import PartitioningResult
from repro.core.planner import ElasticRecPlanner
from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    CPU_ONLY_TARGET_QPS,
    cluster_for_system,
    plan_model_wise,
)
from repro.model.configs import DLRMConfig, rm1

__all__ = ["run"]


def _strategy_table() -> dict[str, Callable[[DeploymentCostModel], PartitioningResult]]:
    return {
        "none": no_partitioning,
        "uniform": lambda cm: uniform_partitioning(cm, num_shards=4),
        "threshold": lambda cm: threshold_partitioning(cm, hot_fraction=0.1),
    }


def run(
    workload: DLRMConfig | None = None,
    target_qps: float = CPU_ONLY_TARGET_QPS,
) -> ExperimentResult:
    """Compare deployed memory across partitioning strategies (CPU-only, RM1)."""
    workload = workload or rm1()
    cluster = cluster_for_system("cpu")
    planner = ElasticRecPlanner(cluster)
    cost_model = planner.cost_model_for_table(workload)

    rows = []
    baseline = plan_model_wise(workload, cluster, target_qps)
    rows.append(
        {
            "strategy": "model-wise",
            "shards_per_table": 0,
            "memory_gb": baseline.total_memory_gb,
            "total_replicas": baseline.total_replicas,
        }
    )
    for name, strategy in _strategy_table().items():
        partitioning = strategy(cost_model)
        plan = planner.plan(workload, target_qps, partitioning=partitioning)
        rows.append(
            {
                "strategy": name,
                "shards_per_table": partitioning.num_shards,
                "memory_gb": plan.total_memory_gb,
                "total_replicas": plan.total_replicas,
            }
        )
    dp_plan = planner.plan(workload, target_qps)
    rows.append(
        {
            "strategy": "dp",
            "shards_per_table": dp_plan.sharding.shards_per_table()[0],
            "memory_gb": dp_plan.total_memory_gb,
            "total_replicas": dp_plan.total_replicas,
        }
    )

    by_strategy = {r["strategy"]: r["memory_gb"] for r in rows}
    summary = {
        "dp_vs_model_wise": by_strategy["model-wise"] / by_strategy["dp"],
        "dp_vs_no_partitioning": by_strategy["none"] / by_strategy["dp"],
        "dp_vs_uniform": by_strategy["uniform"] / by_strategy["dp"],
        "dp_vs_threshold": by_strategy["threshold"] / by_strategy["dp"],
    }
    return ExperimentResult(
        experiment_id="ablation",
        title="Partitioning-strategy ablation (deployed memory, CPU-only, 100 QPS)",
        rows=rows,
        summary=summary,
        notes=(
            "The microservice split alone already helps (strategy 'none'); "
            "hotness-aware partitioning recovers the rest, and the DP plan should "
            "be at least as good as every simpler strategy."
        ),
    )
