"""Figure 14: CPU-only memory utility and per-shard replica counts.

For the first embedding table of each workload the paper reports the memory
utility (fraction of a shard's embeddings actually accessed while serving the
first 1,000 queries) and the number of replicas instantiated per shard, for
both the model-wise baseline (one shard covering the whole table) and
ElasticRec (hotter shards show higher utility and receive more replicas).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.utility import average_memory_utility, memory_utility
from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    CPU_ONLY_TARGET_QPS,
    cluster_for_system,
    paper_workloads,
    plan_elasticrec,
    plan_model_wise,
)

__all__ = ["run"]


def run(
    target_qps: float = CPU_ONLY_TARGET_QPS,
    num_queries: int = 1000,
    system: str = "cpu",
) -> ExperimentResult:
    """Regenerate Figure 14 (or Figure 17 when ``system='cpu-gpu'``)."""
    cluster = cluster_for_system(system)
    rows = []
    utility_gains = []
    for config in paper_workloads():
        elastic = plan_elasticrec(config, cluster, target_qps)
        baseline = plan_model_wise(config, cluster, target_qps)
        baseline_utilities = memory_utility(baseline, num_queries=num_queries)
        for utility in baseline_utilities:
            rows.append(
                {
                    "model": config.name,
                    "strategy": "model-wise",
                    "shard": "S1",
                    "memory_utility_pct": utility.utility_pct,
                    "replicas": baseline.monolithic_deployments[0].replicas,
                }
            )
        for utility in memory_utility(elastic, num_queries=num_queries):
            rows.append(
                {
                    "model": config.name,
                    "strategy": "elasticrec",
                    "shard": f"S{utility.shard_index + 1}",
                    "memory_utility_pct": utility.utility_pct,
                    "replicas": utility.replicas,
                }
            )
        baseline_avg = average_memory_utility(baseline, num_queries=num_queries)
        elastic_avg = average_memory_utility(elastic, num_queries=num_queries)
        utility_gains.append(elastic_avg / baseline_avg)
    summary = {
        "geomean_utility_gain": float(np.exp(np.mean(np.log(utility_gains)))),
        "paper_utility_gain": 8.1 if system == "cpu" else 8.0,
    }
    return ExperimentResult(
        experiment_id="fig14" if system == "cpu" else "fig17",
        title=f"{'CPU-only' if system == 'cpu' else 'CPU-GPU'} memory utility and replica counts",
        rows=rows,
        summary=summary,
        notes=(
            "Model-wise utility is a few percent (the paper reports ~6% on average); "
            "ElasticRec's hotter shards show much higher utility and receive replicas "
            "in proportion to their hotness."
        ),
    )
