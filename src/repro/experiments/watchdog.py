"""Self-healing SLO control plane: riding out a brownout plus a crash storm.

Two kinds of incident hit the same serving fleet.  First, a brownout — every
replica slows down for three minutes — while a Poisson crash storm with
``policy=drop`` kills replicas mid-flight, destroying the queries they were
serving.  The unguarded arm just eats the damage: dropped queries are gone
and the brownout tail runs unchecked.  The watchdog arm serves the *same*
arrivals (same seed, same ``[seed, 2]`` cost stream, same ``[seed, 3]`` fault
stream) under a ``--slo`` policy: tier-1 rules catch the availability dip,
the ladder arms per-query deadlines with budgeted retries, crash-dropped
queries are re-dispatched instead of abandoned, and cache-hot-only fallback
sheds gather work until tier-2 reports the latency distribution reconciled.

The second scenario is the tier-2 showcase: a straggler window inflates the
p99 while leaving the mean (and the generous tier-1 thresholds) untouched.
Rule checks alone never fire, but the windowed Mann-Whitney/KS tests compare
the live latency distribution against the warm baseline and flag the shift.

Locked invariants (all deterministic under the golden digest):

* the watchdog arm's availability strictly exceeds the unguarded arm's;
* the watchdog arm's overall p99 stays within the policy's ``p99`` beta of
  the SLA (and below the unguarded arm's p99);
* the straggler row reports ``tier2_flags > 0`` with ``tier1_breaches == 0``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.planner import ElasticRecPlanner
from repro.data.distributions import ZipfDistribution
from repro.experiments.base import ExperimentResult
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import LOCALITY_PRESETS, microbenchmark
from repro.serving.engine import ServingEngine
from repro.serving.traffic import TrafficPattern
from repro.serving.workload import SkewedCostModel

__all__ = ["run"]

#: Same sparse-heavy operating point as the ``replan`` experiment, run well
#: under the provisioned rate so the incident — not steady-state queueing —
#: is what the control plane has to absorb.
_QPS = 15.0
_DURATION_S = 600.0
_SEED = 3
_POOLING = 256
#: Brownout (every replica 2x slower for three minutes) with a Poisson crash
#: storm concentrated inside the window; ``policy=drop`` destroys in-flight
#: queries, which is exactly what deadline-armed retries exist to rescue.
_FAULTS = "degrade@120+180:factor=2.0;crashes@130+200:rate=2.5,policy=drop"
#: Availability-first policy: no voluntary shedding, per-attempt timeout at
#: 6x the SLA (above the natural brownout tail, so only genuinely destroyed
#: queries re-dispatch) and a 20x-SLA deadline leaving retries room to land.
_SLO = (
    "p95@1.5:p99=8,availability=0.995,reject=0.02,patience=1,"
    "shed=0.0,deadline=20,timeout=6,retries=3,storm=0.5,recover=2"
)
#: Tier-2 showcase: a straggler window shifts the p99 but not the mean.
_T2_FAULTS = "straggler@180+180:factor=6.0"
#: Tier-1 rules are slackened to the point of never firing (huge betas, a
#: floor of 0, a ceiling of 1); only the distribution tests can see the shift.
_T2_SLO = "p95@50:p99=50,availability=0,reject=1,alpha=0.05,shed=0.0"
#: The p99 budget the watchdog arm is held to (the ``p99`` key of ``_SLO``).
_P99_BETA = 8.0

_ARMS = (
    ("unguarded", _FAULTS, "none"),
    ("watchdog", _FAULTS, _SLO),
    ("tier2-only", _T2_FAULTS, _T2_SLO),
)


def run() -> ExperimentResult:
    """Serve the same incidents with and without the SLO control plane."""
    cluster = cpu_only_cluster(num_nodes=4)
    base = microbenchmark(num_tables=2)
    workload = replace(
        base,
        embedding=replace(base.embedding, pooling=_POOLING),
        name="micro-sparse-heavy",
    )
    plan = ElasticRecPlanner(cluster).plan(workload, target_qps=30.0, num_shards=1)
    pattern = TrafficPattern.constant(_QPS, duration_s=_DURATION_S)
    embedding = workload.embedding
    cost_model = SkewedCostModel(
        distribution=ZipfDistribution.from_locality(
            embedding.rows_per_table, LOCALITY_PRESETS["high"]
        ),
        pooling=embedding.pooling,
    )

    rows = []
    by_arm = {}
    for arm, faults, slo in _ARMS:
        result = ServingEngine(
            plan,
            autoscale=False,
            seed=_SEED,
            cost_model=cost_model,
            faults=faults,
            slo=slo,
        ).run(pattern)
        by_arm[arm] = result
        rows.append(
            {
                "arm": arm,
                "availability": result.availability_fraction,
                "p99_ms": result.tracker.percentile(99.0) * 1000.0,
                "p95_ms": result.overall_p95_latency_ms,
                "timeouts": float(result.timeout_queries),
                "degraded": float(result.degraded_queries),
                "retried": float(result.retried_queries),
                "tier1_breaches": float(result.slo_tier1_breaches),
                "tier2_flags": float(result.slo_tier2_flags),
                "escalations": float(result.slo_escalations),
                "recoveries": float(result.slo_recoveries),
                "queries": float(result.tracker.num_samples),
            }
        )

    unguarded = by_arm["unguarded"]
    watchdog = by_arm["watchdog"]
    tier2_only = by_arm["tier2-only"]
    watchdog_p99_over_sla = (
        watchdog.tracker.percentile(99.0) / watchdog.sla_s if watchdog.sla_s else 0.0
    )
    return ExperimentResult(
        experiment_id="watchdog",
        title="Self-healing SLO control plane under brownout + crash storm",
        rows=rows,
        summary={
            "unguarded_availability": unguarded.availability_fraction,
            "watchdog_availability": watchdog.availability_fraction,
            "availability_gain": (
                watchdog.availability_fraction - unguarded.availability_fraction
            ),
            "watchdog_p99_over_sla": watchdog_p99_over_sla,
            "p99_beta": _P99_BETA,
            "tier2_only_tier1_breaches": float(tier2_only.slo_tier1_breaches),
            "tier2_only_tier2_flags": float(tier2_only.slo_tier2_flags),
        },
        notes=(
            "All arms share the plan, seed, arrival process, cost stream and "
            "fault stream; only the --slo policy differs.  The watchdog arm "
            "must hold strictly higher availability than the unguarded arm "
            "(crash-dropped queries are re-dispatched under deadline-armed "
            "retries) while its overall p99 stays within the policy's p99 "
            "beta of the SLA.  The tier2-only arm slackens every tier-1 rule "
            "past firing range and still flags the straggler window through "
            "the windowed Mann-Whitney/KS tests alone."
        ),
    )
