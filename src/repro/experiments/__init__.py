"""Experiment reproductions: one module per figure of the paper's evaluation.

Every module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.base.ExperimentResult` whose rows regenerate the
corresponding figure's series.  Default parameters match the paper (Table II
workloads, 100 QPS on the CPU-only cluster, 200 QPS on the CPU-GPU cluster);
smaller settings can be passed for quick runs and are used by the test suite.

Run everything from the command line with ``python -m repro.experiments``.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import EXPERIMENTS, run_all, run_experiment

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "run_all"]
