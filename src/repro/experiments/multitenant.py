"""Multi-tenant cluster simulation: co-located models on one shared node pool.

The paper shards *one* recommendation model into independently scaled
microservices; a production cluster co-locates many models with different
SLAs on shared nodes.  This experiment drives three tenants — each an
ElasticRec-planned RM1 derivative with its own traffic scenario, routing
policy, SLA target and autoscaler — through one event heap over a shared,
capacity-constrained node pool, and reports per-tenant SLA compliance plus
cluster-wide memory, utilization and pending-placement pressure.

The scenarios are chosen to interact: a diurnal tenant peaks mid-run exactly
when a flash-crowd tenant spikes, so their autoscalers compete for the same
nodes while the steady tenant (with the tightest SLA) feels the contention.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import cluster_for_system, plan_elasticrec
from repro.model.configs import rm1
from repro.serving.engine import MultiTenantEngine, TenantSpec
from repro.serving.scenarios import build_scenario

__all__ = ["run"]


def run(
    seed: int = 0,
    duration_s: float = 600.0,
    num_nodes: int = 6,
) -> ExperimentResult:
    """Serve three co-located tenants on one shared pool and report SLA impact."""
    pool = cluster_for_system("cpu").with_nodes(num_nodes)
    workload = rm1().scaled_tables(4).with_name("RM1-mt")
    plan = plan_elasticrec(workload, pool, 18.0)

    tenants = [
        TenantSpec(
            name="diurnal-feed",
            plan=plan,
            pattern=build_scenario("diurnal", 12.0, 60.0, duration_s, seed=seed),
            routing="least-work",
            seed=seed,
        ),
        TenantSpec(
            name="flash-ads",
            plan=plan,
            pattern=build_scenario("flash-crowd", 10.0, 50.0, duration_s, seed=seed + 1),
            routing="power-of-two",
            seed=seed + 1,
        ),
        TenantSpec(
            name="steady-rank",
            plan=plan,
            pattern=build_scenario("constant", 15.0, 15.0, duration_s, seed=seed + 2),
            routing="least-outstanding",
            seed=seed + 2,
            sla_s=0.3,
        ),
    ]
    engine = MultiTenantEngine(tenants, cluster_spec=pool)
    result = engine.run()

    rows = []
    for row in result.sla_report():
        tenant = result.tenant(str(row["tenant"]))
        rows.append(
            {
                **row,
                "mean_latency_ms": tenant.mean_latency_ms,
                "peak_memory_gb": tenant.peak_memory_gb,
            }
        )

    series = result.cluster_series
    summary = {
        "tenants": float(len(tenants)),
        "total_queries": float(result.total_queries),
        "cluster_peak_memory_gb": series.peak_memory_gb,
        "cluster_mean_memory_utilization": series.mean_memory_utilization,
        "cluster_peak_pending_placements": float(series.peak_pending_placements),
        "cluster_peak_nodes_in_use": series.summary()["peak_nodes_in_use"],
    }
    for name, tenant_result in result.tenants.items():
        summary[f"{name}_sla_violation_fraction"] = tenant_result.sla_violation_fraction()

    return ExperimentResult(
        experiment_id="multitenant",
        title="Co-located tenants competing for one shared node pool",
        rows=rows,
        summary=summary,
        notes=(
            "Three tenants share one capacity-constrained pool: a diurnal feed, a "
            "flash-crowd ads model and a steady ranker with a tighter 300 ms SLA.  "
            "Each keeps its own routing policy, autoscaler and seed; replicas that "
            "do not fit queue as pending placements.  The worst tenant was "
            f"{result.worst_tenant()!r}."
        ),
    )
