"""Figure 17: CPU-GPU memory utility and per-shard replica counts.

The CPU-GPU counterpart of Figure 14 (200 queries/s target); the paper
reports an average 8x memory-utility improvement.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import CPU_GPU_TARGET_QPS
from repro.experiments.fig14 import run as _run_utility

__all__ = ["run"]


def run(target_qps: float = CPU_GPU_TARGET_QPS, num_queries: int = 1000) -> ExperimentResult:
    """Regenerate Figure 17."""
    return _run_utility(target_qps=target_qps, num_queries=num_queries, system="cpu-gpu")
