"""Embedding cache tier: tail latency and replica cost vs per-replica cache size.

The per-replica embedding cache keeps the hottest rows of each shard resident
next to the compute, so the skewed gather tail (Figure 6 distributions) is
served at ``hot_cost_fraction`` of its uncached cost once the cache warms up.
This experiment serves the same sparse-heavy plan as the ``skew`` experiment
under constant traffic and sweeps the cache capacity at two locality settings:
p95 latency falls monotonically with cache size, and the mean number of busy
replicas — the cost the autoscaler would act on — falls with it.

Every run shares the seed, plan and arrival process; capacity 0 is the exact
uncached engine (bit-for-bit, see ``tests/serving/test_cache.py``).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.planner import ElasticRecPlanner
from repro.data.distributions import ZipfDistribution
from repro.experiments.base import ExperimentResult
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import LOCALITY_PRESETS, microbenchmark
from repro.serving.engine import ServingEngine
from repro.serving.traffic import TrafficPattern
from repro.serving.workload import SkewedCostModel

__all__ = ["run"]

#: Same operating point as the ``skew`` experiment: near the provisioned rate,
#: so gather-cost savings turn into queueing-tail savings.
_QPS = 27.0
_DURATION_S = 300.0
_SEED = 3
_POOLING = 256
#: Per-replica cache capacities (MB).  0 is the uncached baseline; the top end
#: covers enough of the hot prefix that the hit rate has visibly saturated.
_CACHE_MB = (0.0, 0.25, 4.0, 64.0)
#: Skew settings under which the cache is exercised (Figure 6 localities).
_LOCALITIES = ("medium", "high")


def _steady_hit_rate(series: dict[str, np.ndarray]) -> float:
    """Mean hit rate over the second half of the run, across cached lanes."""
    tails = [values[values.size // 2 :] for values in series.values() if values.size]
    if not tails:
        return 0.0
    return float(np.mean(np.concatenate(tails)))


def run() -> ExperimentResult:
    """Sweep per-replica cache capacity at fixed skew; report tail and cost."""
    cluster = cpu_only_cluster(num_nodes=4)
    base = microbenchmark(num_tables=2)
    workload = replace(
        base,
        embedding=replace(base.embedding, pooling=_POOLING),
        name="micro-sparse-heavy",
    )
    plan = ElasticRecPlanner(cluster).plan(workload, target_qps=30.0, num_shards=1)
    pattern = TrafficPattern.constant(_QPS, duration_s=_DURATION_S)
    embedding = workload.embedding

    rows = []
    p95_by_cell: dict[str, float] = {}
    for label in _LOCALITIES:
        cost_model = SkewedCostModel(
            distribution=ZipfDistribution.from_locality(
                embedding.rows_per_table, LOCALITY_PRESETS[label]
            ),
            pooling=embedding.pooling,
        )
        for cache_mb in _CACHE_MB:
            engine = ServingEngine(
                plan,
                autoscale=False,
                seed=_SEED,
                cost_model=cost_model,
                cache_mb=cache_mb,
            )
            result = engine.run(pattern)
            # Mean busy replicas across all deployments: the replica-cost an
            # autoscaler would reclaim as the cache absorbs gather work.
            replica_cost = float(
                sum(
                    np.mean(result.replica_counts[name] * result.utilization[name])
                    for name in result.replica_counts
                )
            )
            p95_by_cell[f"{label}_{cache_mb:g}mb"] = result.overall_p95_latency_ms
            rows.append(
                {
                    "locality": label,
                    "cache_mb": cache_mb,
                    "steady_hit_rate": _steady_hit_rate(result.cache_hit_rate),
                    "mean_latency_ms": result.mean_latency_ms,
                    "p95_latency_ms": result.overall_p95_latency_ms,
                    "replica_cost": replica_cost,
                    "queries": float(result.tracker.num_samples),
                }
            )

    summary = {f"{cell}_p95_ms": value for cell, value in p95_by_cell.items()}
    for label in _LOCALITIES:
        summary[f"{label}_p95_saved_ms"] = (
            p95_by_cell[f"{label}_{_CACHE_MB[0]:g}mb"]
            - p95_by_cell[f"{label}_{_CACHE_MB[-1]:g}mb"]
        )
    return ExperimentResult(
        experiment_id="cache",
        title="Per-replica embedding cache: p95 and replica cost vs capacity",
        rows=rows,
        summary=summary,
        notes=(
            "One plan, identical arrivals; only the per-replica cache capacity "
            "varies.  steady_hit_rate is the mean cache hit rate over the "
            "second half of the run; replica_cost is the mean number of busy "
            "replicas across all deployments.  cache_mb=0 is the exact "
            "uncached engine."
        ),
    )
