"""Parallel sweep runner over the scenario × routing × replica-budget grid.

A *sweep* fans one serving configuration across a grid of cells — every
combination of traffic scenario, routing policy and per-deployment replica
budget — and simulates each cell with the multi-tenant engine (one or more
co-located tenants per cell).  Cells are embarrassingly parallel, so the
runner can spread them over a pool of worker processes; results are merged in
grid order, so a parallel sweep is byte-identical to a serial one.

Determinism contract:

* every cell derives its seed from ``(config.seed, cell index)`` through
  :func:`repro.parallel.subseed` (:class:`numpy.random.SeedSequence`
  fan-out), so seeds do not depend on worker count or scheduling order;
  the process pool likewise comes from the shared
  :func:`repro.parallel.pool_context` (fork preferred, spawn fallback);
* workers rebuild plans from the (deterministic) planner rather than
  receiving pickled state, so a cell computes the same result in any process;
* :meth:`SweepResult.digest` hashes the merged rows, making "serial == parallel"
  a one-line assertion.

Use :func:`run_sweep` from Python or ``python -m repro sweep`` from the
command line.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import asdict, dataclass, field
from typing import Sequence

from repro.analysis.report import format_table
from repro.core.plan import DeploymentPlan
from repro.experiments.common import cluster_for_system, plan_elasticrec
from repro.model.configs import DLRMConfig, workload_presets
from repro.parallel import pool_context, subseed
from repro.serving.engine import MultiTenantEngine, TenantSpec
from repro.serving.faults import validate_fault_spec
from repro.serving.replanner import validate_replan_spec
from repro.serving.routing import resolve_routing_names
from repro.serving.watchdog import validate_slo_spec
from repro.serving.scenarios import build_scenario, resolve_scenario_names
from repro.serving.workload import resolve_cost_model_name, validate_drift_spec

__all__ = [
    "SweepConfig",
    "SweepCell",
    "SweepResult",
    "build_grid",
    "run_cell",
    "run_sweep",
]


@dataclass(frozen=True)
class SweepConfig:
    """The fixed (non-grid) parameters shared by every cell of a sweep."""

    workload: str = "RM1"
    system: str = "cpu"
    num_nodes: int | None = 8
    num_tables: int | None = 4
    tenants: int = 1
    base_qps: float = 18.0
    peak_qps: float = 90.0
    duration_s: float = 600.0
    sample_interval_s: float = 15.0
    seed: int = 0
    autoscale: bool = True
    cost_model: str = "homogeneous"
    max_batch: int = 1
    #: Fault scenario name or fault script applied to every cell's tenants
    #: ("none" keeps the sweep bit-exact with a fault-unaware one).
    faults: str = "none"
    #: Per-replica embedding cache capacity in MB for every cell's tenants
    #: (0 disables the cache; non-zero needs the skewed cost model).
    cache_mb: float = 0.0
    #: Access-skew drift schedule applied to every cell's tenants ("none"
    #: keeps the sweep bit-exact with a drift-unaware one; non-none needs the
    #: skewed cost model).
    drift: str = "none"
    #: Online re-planning trigger applied to every cell's tenants ("none"
    #: disables the drift detector).
    replan: str = "none"
    #: Self-healing SLO watchdog applied to every cell's tenants ("none"
    #: keeps the sweep bit-exact with a watchdog-unaware one).
    slo: str = "none"

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError("tenants must be at least 1")
        if self.duration_s <= 0 or self.sample_interval_s <= 0:
            raise ValueError("duration_s and sample_interval_s must be positive")
        if self.base_qps < 0 or self.peak_qps < self.base_qps:
            raise ValueError("need 0 <= base_qps <= peak_qps")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.cache_mb < 0:
            raise ValueError("cache_mb must be non-negative")
        resolve_cost_model_name(self.cost_model)
        validate_fault_spec(self.faults)
        validate_drift_spec(self.drift)
        validate_replan_spec(self.replan)
        validate_slo_spec(self.slo)


@dataclass(frozen=True)
class SweepCell:
    """One grid point: scenario × routing × replica budget, plus its seed."""

    index: int
    scenario: str
    routing: str
    replica_budget: int
    seed: int


def build_grid(
    scenarios: Sequence[str],
    routings: Sequence[str],
    replica_budgets: Sequence[int],
    base_seed: int = 0,
) -> list[SweepCell]:
    """Materialise the full grid in deterministic (product) order."""
    if not replica_budgets:
        raise ValueError("at least one replica budget is required")
    cells = []
    for index, (scenario, routing, budget) in enumerate(
        itertools.product(scenarios, routings, replica_budgets)
    ):
        if budget <= 0:
            raise ValueError("replica budgets must be positive")
        cells.append(
            SweepCell(
                index=index,
                scenario=scenario,
                routing=routing,
                replica_budget=int(budget),
                seed=subseed(base_seed, index),
            )
        )
    return cells


def _resolve_workload(config: SweepConfig) -> DLRMConfig:
    presets = workload_presets()
    try:
        workload = presets[config.workload.upper()]
    except KeyError:
        known = ", ".join(sorted(presets))
        raise ValueError(f"unknown workload {config.workload!r}; choose from {known}") from None
    if config.num_tables is not None:
        workload = workload.scaled_tables(config.num_tables).with_name(
            f"{workload.name}-{config.num_tables}t"
        )
    return workload


def _build_plan(config: SweepConfig) -> DeploymentPlan:
    workload = _resolve_workload(config)
    cluster = cluster_for_system(config.system)
    if config.num_nodes is not None:
        cluster = cluster.with_nodes(config.num_nodes)
    # Memoised: a serial sweep plans once and reuses the plan for every cell.
    return plan_elasticrec(workload, cluster, config.base_qps)


def run_cell(config: SweepConfig, cell: SweepCell) -> dict[str, float | int | str]:
    """Simulate one grid cell and return its merged row.

    The row contains only deterministic scalars (grid coordinates plus
    tenant-aggregated and cluster-wide metrics), so rows compare byte-for-byte
    across serial and parallel execution.
    """
    plan = _build_plan(config)
    tenants = []
    for tenant_index in range(config.tenants):
        pattern = build_scenario(
            cell.scenario,
            config.base_qps,
            config.peak_qps,
            config.duration_s,
            seed=cell.seed + tenant_index,
        )
        tenants.append(
            TenantSpec(
                name=f"tenant-{tenant_index}",
                plan=plan,
                pattern=pattern,
                routing=cell.routing,
                seed=cell.seed + tenant_index,
                autoscale=config.autoscale,
                sample_interval_s=config.sample_interval_s,
                max_replicas=cell.replica_budget,
                cost_model=config.cost_model,
                max_batch=config.max_batch,
                faults=config.faults,
                cache_mb=config.cache_mb,
                drift=config.drift,
                replan=config.replan,
                slo=config.slo,
            )
        )
    result = MultiTenantEngine(tenants, cluster_spec=plan.cluster).run()

    per_tenant = list(result.tenants.values())
    queries = float(sum(r.tracker.num_samples for r in per_tenant))
    weighted_mean = (
        sum(r.mean_latency_ms * r.tracker.num_samples for r in per_tenant) / queries
        if queries
        else 0.0
    )
    violations = float(sum(r.sla_violation_count() for r in per_tenant))
    failed = float(
        sum(r.rejected_queries + r.dropped_queries for r in per_tenant)
    )
    series = result.cluster_series
    return {
        "scenario": cell.scenario,
        "routing": cell.routing,
        "replica_budget": cell.replica_budget,
        "seed": cell.seed,
        "total_queries": queries,
        "mean_latency_ms": weighted_mean,
        "worst_p95_ms": max(r.overall_p95_latency_ms for r in per_tenant),
        "sla_violation_fraction": violations / queries if queries else 0.0,
        "availability": 1.0 - failed / queries if queries else 1.0,
        "requeued": float(sum(r.requeued_queries for r in per_tenant)),
        "peak_memory_gb": series.peak_memory_gb,
        "mean_utilization": series.mean_memory_utilization,
        "peak_pending": series.peak_pending_placements,
    }


def _run_cell_args(args: tuple[SweepConfig, SweepCell]) -> dict[str, float | int | str]:
    return run_cell(*args)


@dataclass
class SweepResult:
    """Merged rows of one sweep, in grid order."""

    config: SweepConfig
    cells: list[SweepCell]
    rows: list[dict[str, float | int | str]] = field(default_factory=list)

    def to_table(self) -> str:
        """Render the merged grid as an aligned plain-text table."""
        display = [
            {k: v for k, v in row.items() if k != "seed"} for row in self.rows
        ]
        title = (
            f"sweep of {self.config.workload} ({len(self.rows)} cells, "
            f"{self.config.tenants} tenant(s)/cell, seed {self.config.seed})"
        )
        return format_table(display, title=title)

    def digest(self) -> str:
        """Deterministic fingerprint of the merged results (serial == parallel)."""
        canonical = repr([sorted(row.items()) for row in self.rows])
        canonical += repr(sorted(asdict(self.config).items()))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def best_cell(self, metric: str = "worst_p95_ms") -> dict[str, float | int | str]:
        """The row minimising ``metric`` (ties break toward the earliest cell)."""
        if not self.rows:
            raise ValueError("the sweep produced no rows")
        return min(self.rows, key=lambda row: row[metric])

    def summary(self) -> dict[str, float | str]:
        """Headline aggregates of the whole sweep."""
        best = self.best_cell()
        return {
            "cells": float(len(self.rows)),
            "total_queries": float(sum(row["total_queries"] for row in self.rows)),
            "best_scenario": best["scenario"],
            "best_routing": best["routing"],
            "best_replica_budget": float(best["replica_budget"]),
            "best_worst_p95_ms": float(best["worst_p95_ms"]),
            "digest": self.digest()[:16],
        }


def run_sweep(
    config: SweepConfig,
    scenarios: str | Sequence[str] = "all",
    routings: str | Sequence[str] = "all",
    replica_budgets: Sequence[int] = (4, 16, 64),
    workers: int = 1,
) -> SweepResult:
    """Run every cell of the grid, optionally across worker processes.

    ``workers <= 1`` runs serially in-process; larger values fan the cells
    over a process pool.  Results are merged in grid order either way, so the
    worker count never changes the outcome (see :meth:`SweepResult.digest`).
    """
    scenario_list = resolve_scenario_names(scenarios)
    routing_list = resolve_routing_names(routings)
    _resolve_workload(config)  # fail fast on an unknown workload name
    cells = build_grid(scenario_list, routing_list, replica_budgets, base_seed=config.seed)
    if workers <= 1 or len(cells) == 1:
        rows = [run_cell(config, cell) for cell in cells]
    else:
        with pool_context().Pool(processes=min(workers, len(cells))) as pool:
            rows = pool.map(_run_cell_args, [(config, cell) for cell in cells], chunksize=1)
    return SweepResult(config=config, cells=cells, rows=rows)
