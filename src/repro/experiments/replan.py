"""Online re-planning under access-skew drift: static plan vs live re-shard.

The planner's DP partitioning is only as good as the access distribution it
was fed.  Here the skew drifts mid-run — the workload's hot prefix flattens
from ``high`` locality toward near-uniform over three minutes — so the static
plan's per-shard throughput estimates go stale and its queues blow up.  The
re-plan arm runs the same simulation with the threshold-tier drift detector
enabled: after the p95 breaches the SLA-relative threshold for ``patience``
consecutive samples, the engine re-partitions against the *measured* mixture
distribution, models the shard-copy migration as synthetic replica work, and
cuts over with a cold-cache warm-up.

Both arms share the plan, seed, arrival process and the ``[seed, 2]`` cost
stream (drift draws only from the isolated ``[seed, 4]`` stream), so the gap
in steady-state p95 — the mean of the per-interval p95 series over the final
third of the run, well after the drift completes — is attributable to the
re-plan alone.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.planner import ElasticRecPlanner
from repro.data.distributions import ZipfDistribution
from repro.experiments.base import ExperimentResult
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import LOCALITY_PRESETS, microbenchmark
from repro.serving.engine import ServingEngine
from repro.serving.traffic import TrafficPattern
from repro.serving.workload import SkewedCostModel

__all__ = ["run"]

#: Same sparse-heavy operating point as the ``cache`` experiment, run near
#: the provisioned rate so the drifted gather costs turn into queueing delay.
_QPS = 27.0
_DURATION_S = 600.0
_SEED = 3
_POOLING = 256
#: The hot prefix flattens from ``high`` locality toward this endpoint over
#: three minutes, starting one minute in.
_DRIFT = "linear@60+180:to=0.1"
#: Fire after two consecutive samples above 1.3x the SLA; one re-plan only.
_REPLAN = "sla@1.3:patience=2,cooldown=120,max=1"
_ARMS = (("static", "none"), ("replan", _REPLAN))


def _steady_p95_ms(result) -> float:
    """Mean per-interval p95 over the final third of the run (post-drift)."""
    series = result.p95_latency_ms
    tail = series[2 * series.size // 3 :]
    return float(np.mean(tail)) if tail.size else 0.0


def run() -> ExperimentResult:
    """Serve the same drifting workload with and without online re-planning."""
    cluster = cpu_only_cluster(num_nodes=4)
    base = microbenchmark(num_tables=2)
    workload = replace(
        base,
        embedding=replace(base.embedding, pooling=_POOLING),
        name="micro-sparse-heavy",
    )
    plan = ElasticRecPlanner(cluster).plan(workload, target_qps=30.0, num_shards=1)
    pattern = TrafficPattern.constant(_QPS, duration_s=_DURATION_S)
    embedding = workload.embedding
    cost_model = SkewedCostModel(
        distribution=ZipfDistribution.from_locality(
            embedding.rows_per_table, LOCALITY_PRESETS["high"]
        ),
        pooling=embedding.pooling,
    )

    rows = []
    steady: dict[str, float] = {}
    for arm, replan in _ARMS:
        result = ServingEngine(
            plan,
            autoscale=False,
            seed=_SEED,
            cost_model=cost_model,
            drift=_DRIFT,
            replan=replan,
        ).run(pattern)
        steady[arm] = _steady_p95_ms(result)
        rows.append(
            {
                "arm": arm,
                "replans_applied": float(result.replans_applied),
                "steady_p95_ms": steady[arm],
                "overall_p95_ms": result.overall_p95_latency_ms,
                "mean_latency_ms": result.mean_latency_ms,
                "sla_violations_pct": 100.0 * result.sla_violation_fraction(),
                "queries": float(result.tracker.num_samples),
            }
        )

    return ExperimentResult(
        experiment_id="replan",
        title="Online re-planning under access-skew drift: static vs re-shard",
        rows=rows,
        summary={
            "static_steady_p95_ms": steady["static"],
            "replan_steady_p95_ms": steady["replan"],
            "steady_p95_speedup": (
                steady["static"] / steady["replan"] if steady["replan"] > 0 else 0.0
            ),
        },
        notes=(
            "Both arms share the plan, seed, arrival process and cost stream; "
            "only the re-plan trigger differs.  steady_p95_ms is the mean "
            "per-interval p95 over the final third of the run, after the "
            "drift has completed.  The re-plan arm re-partitions against the "
            "measured mixture distribution and must hold a strictly lower "
            "steady-state p95 than the stale static plan."
        ),
    )
