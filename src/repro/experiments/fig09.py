"""Figure 9: QPS of embedding gather operations vs the number of vectors gathered.

A 20M-entry table is profiled over a sweep of per-item gather counts for
embedding dimensions 32, 128 and 512; larger dimensions move more bytes per
gather and therefore sustain lower QPS.  The same profile feeds the
``QPS(x)`` regression model used by Algorithm 1.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.qps_model import QPSRegressionModel
from repro.experiments.base import ExperimentResult
from repro.experiments.common import cluster_for_system
from repro.hardware.perf_model import PerfModel
from repro.hardware.profiler import GatherProfiler

__all__ = ["run"]

DEFAULT_GATHERS: tuple[int, ...] = (1, 10, 20, 40, 60, 80, 100)
DEFAULT_DIMS: tuple[int, ...] = (32, 128, 512)


def run(
    gather_counts: Sequence[int] = DEFAULT_GATHERS,
    embedding_dims: Sequence[int] = DEFAULT_DIMS,
    batch_size: int = 32,
) -> ExperimentResult:
    """Regenerate the Figure 9 sweep and report the fitted regression quality."""
    perf = PerfModel(cluster_for_system("cpu"))
    profiler = GatherProfiler(perf, batch_size=batch_size)
    rows = []
    summary: dict[str, float] = {}
    for dim in embedding_dims:
        points = profiler.profile(dim, gather_counts)
        regression = QPSRegressionModel.fit(points)
        max_error = float(max(abs(e) for e in regression.residuals(points)))
        summary[f"dim{dim}_regression_max_rel_error"] = max_error
        for point in points:
            rows.append(
                {
                    "embedding_dim": dim,
                    "num_vectors_gathered": point.num_gathers,
                    "qps": point.qps,
                    "predicted_qps": regression.predict_qps(point.num_gathers),
                }
            )
    return ExperimentResult(
        experiment_id="fig9",
        title="Embedding gather QPS vs number of vectors gathered (dims 32/128/512)",
        rows=rows,
        summary=summary,
        notes=(
            "QPS falls as the gather count grows and larger embedding dimensions are "
            "uniformly slower; the fitted regression (Algorithm 1's QPS(x)) tracks the "
            "profile closely."
        ),
    )
