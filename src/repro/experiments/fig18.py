"""Figure 18: CPU-GPU server nodes required to reach the 200 QPS target.

The CPU-GPU counterpart of Figure 15; the paper reports 1.4x, 1.6x and 1.2x
fewer servers for RM1/RM2/RM3 with about 60 ms of added average latency from
cross-shard RPCs.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import CPU_GPU_TARGET_QPS
from repro.experiments.fig15 import run as _run_servers

__all__ = ["run"]

PAPER_SERVER_REDUCTIONS = {"RM1": 1.4, "RM2": 1.6, "RM3": 1.2}


def run(target_qps: float = CPU_GPU_TARGET_QPS) -> ExperimentResult:
    """Regenerate Figure 18."""
    result = _run_servers(target_qps=target_qps, system="cpu-gpu")
    for row in result.rows:
        row["paper_reduction"] = PAPER_SERVER_REDUCTIONS[row["model"]]
    return result
