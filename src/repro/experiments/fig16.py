"""Figure 16: CPU-GPU memory consumption of model-wise vs ElasticRec.

RM1/RM2/RM3 at a 200 queries/s target on the GKE-style CPU-GPU cluster; the
paper reports 2.7x, 3.6x and 2.6x reductions, noting that RM3's gain is
smaller than on the CPU-only system because the GPU executes its heavy MLPs
efficiently.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    CPU_GPU_TARGET_QPS,
    cluster_for_system,
    paper_workloads,
    plan_elasticrec,
    plan_model_wise,
)

__all__ = ["run"]

PAPER_REDUCTIONS = {"RM1": 2.7, "RM2": 3.6, "RM3": 2.6}


def run(target_qps: float = CPU_GPU_TARGET_QPS) -> ExperimentResult:
    """Regenerate Figure 16."""
    cluster = cluster_for_system("cpu-gpu")
    rows = []
    for config in paper_workloads():
        elastic = plan_elasticrec(config, cluster, target_qps)
        baseline = plan_model_wise(config, cluster, target_qps)
        rows.append(
            {
                "model": config.name,
                "model_wise_gb": baseline.total_memory_gb,
                "elasticrec_gb": elastic.total_memory_gb,
                "reduction": baseline.total_memory_gb / elastic.total_memory_gb,
                "paper_reduction": PAPER_REDUCTIONS[config.name],
                "shards_per_table": elastic.sharding.num_embedding_shards
                // config.embedding.num_tables,
            }
        )
    reductions = [r["reduction"] for r in rows]
    cpu_only_rm3_note = (
        "RM3's reduction is smaller than its CPU-only counterpart because the GPU "
        "executes the compute-heavy MLPs efficiently, so the baseline needs fewer "
        "whole-model replicas."
    )
    summary = {"geomean_reduction": float(np.exp(np.mean(np.log(reductions))))}
    return ExperimentResult(
        experiment_id="fig16",
        title="CPU-GPU memory consumption at 200 QPS (model-wise vs ElasticRec)",
        rows=rows,
        summary=summary,
        notes=cpu_only_rm3_note,
    )
