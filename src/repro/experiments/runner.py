"""Experiment registry and command-line runner."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    ablation,
    cache_tier,
    fig03,
    fig05,
    fig06,
    fig09,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    headline,
    multitenant,
    replan,
    resilience,
    skew_sensitivity,
    watchdog,
)
from repro.experiments.base import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

#: Every reproducible artefact of the paper's evaluation, keyed by experiment id.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig3": fig03.run,
    "fig5": fig05.run,
    "fig6": fig06.run,
    "fig9": fig09.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "fig19": fig19.run,
    "fig20": fig20.run,
    "headline": headline.run,
    "ablation": ablation.run,
    "cache": cache_tier.run,
    "multitenant": multitenant.run,
    "replan": replan.run,
    "resilience": resilience.run,
    "skew": skew_sensitivity.run,
    "watchdog": watchdog.run,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig13"``)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known ids: {known}") from None
    return runner()


def run_all(experiment_ids: list[str] | None = None) -> dict[str, ExperimentResult]:
    """Run several experiments (all of them by default) and return their results."""
    ids = experiment_ids if experiment_ids is not None else list(EXPERIMENTS)
    return {experiment_id: run_experiment(experiment_id) for experiment_id in ids}
