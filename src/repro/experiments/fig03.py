"""Figure 3: dense-vs-sparse shares of FLOPs, memory and end-to-end latency.

Figure 3(a) plots, for RM1/RM2/RM3, the fraction of per-query FLOPs and of
model memory attributable to the dense DNN layers versus the sparse embedding
layers (architecture-independent, computed analytically).  Figure 3(b) plots
the fraction of end-to-end inference latency each layer type accounts for on
the CPU-only and CPU-GPU systems.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import cluster_for_system, paper_workloads
from repro.hardware.perf_model import PerfModel
from repro.model.analytics import ModelAnalytics

__all__ = ["run"]


def run() -> ExperimentResult:
    """Regenerate both panels of Figure 3."""
    rows = []
    perf_models = {
        system: PerfModel(cluster_for_system(system)) for system in ("cpu", "cpu-gpu")
    }
    for config in paper_workloads():
        analytics = ModelAnalytics(config)
        flops = analytics.flops_breakdown()
        memory = analytics.memory_breakdown()
        row = {
            "model": config.name,
            "dense_flops_pct": flops.as_percentages()[0],
            "sparse_flops_pct": flops.as_percentages()[1],
            "dense_memory_pct": memory.as_percentages()[0],
            "sparse_memory_pct": memory.as_percentages()[1],
        }
        for system, perf in perf_models.items():
            breakdown = perf.latency_breakdown(config)
            suffix = "cpu" if system == "cpu" else "gpu"
            row[f"dense_latency_pct_{suffix}"] = 100.0 * breakdown.dense_fraction
            row[f"sparse_latency_pct_{suffix}"] = 100.0 * breakdown.sparse_fraction
        rows.append(row)
    summary = {
        "min_dense_flops_pct": min(r["dense_flops_pct"] for r in rows),
        "max_dense_memory_pct": max(r["dense_memory_pct"] for r in rows),
    }
    return ExperimentResult(
        experiment_id="fig3",
        title="Dense vs sparse occupancy of FLOPs, memory and latency",
        rows=rows,
        summary=summary,
        notes=(
            "Paper reference points: sparse FLOPs are a few percent of the total, "
            "dense parameters are well under 1% of memory, and dense layers dominate "
            "CPU-only latency while their share shrinks on the CPU-GPU system."
        ),
    )
