"""Shared result container for experiment reproductions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.report import format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Rows regenerating one paper figure, plus headline summary values."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]]
    summary: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def to_table(self, columns: list[str] | None = None) -> str:
        """Render the rows as an aligned plain-text table."""
        return format_table(self.rows, columns=columns, title=f"{self.experiment_id}: {self.title}")

    def column(self, name: str) -> list[Any]:
        """Extract one column across all rows."""
        if not self.rows:
            return []
        if name not in self.rows[0]:
            raise KeyError(f"no column named {name!r} in experiment {self.experiment_id}")
        return [row.get(name) for row in self.rows]

    def report(self) -> str:
        """Table plus summary and notes, ready for printing."""
        parts = [self.to_table()]
        if self.summary:
            summary_text = ", ".join(f"{k}={v:.3g}" for k, v in self.summary.items())
            parts.append(f"summary: {summary_text}")
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)
