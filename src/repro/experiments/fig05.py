"""Figure 5: per-layer QPS of the dense and sparse layers, measured separately.

The QPS mismatch between the two layer types — for both the CPU-only and the
CPU-GPU system — is the motivation for fine-grained resource allocation
(Section III-A).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import cluster_for_system, paper_workloads
from repro.hardware.perf_model import PerfModel
from repro.hardware.profiler import LayerProfiler

__all__ = ["run"]


def run() -> ExperimentResult:
    """Regenerate both panels of Figure 5."""
    rows = []
    for system in ("cpu", "cpu-gpu"):
        profiler = LayerProfiler(PerfModel(cluster_for_system(system)))
        for config in paper_workloads():
            qps = profiler.layer_qps(config)
            rows.append(
                {
                    "system": system,
                    "model": config.name,
                    "dense_qps": qps["dense"],
                    "sparse_qps": qps["sparse"],
                    "qps_mismatch": max(qps.values()) / min(qps.values()),
                }
            )
    summary = {
        "max_mismatch": max(r["qps_mismatch"] for r in rows),
        "min_mismatch": min(r["qps_mismatch"] for r in rows),
    }
    return ExperimentResult(
        experiment_id="fig5",
        title="Dense vs sparse layer throughput (QPS) measured separately",
        rows=rows,
        summary=summary,
        notes=(
            "The paper's point is the significant QPS mismatch between layer types on "
            "both systems; on CPU-GPU the dense layer (now on the GPU) is far faster "
            "than the CPU-resident sparse layer."
        ),
    )
