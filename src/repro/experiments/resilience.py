"""Resilience under replica crashes: tail latency and availability vs. crash rate.

The paper's serving evaluation (and the seed reproduction of it) assumes a
perfectly healthy fleet, which makes every tail-latency and autoscaling
number an upper bound on what a production cluster would see.  This
experiment quantifies the gap: one ElasticRec-planned deployment serves the
same constant traffic under increasing Poisson crash rates (crashed
replicas' in-flight queries are dropped, the cluster re-creates and cold
starts replacements), once per routing policy.

Expected shape: at crash rate zero every policy reproduces the healthy
baseline (availability exactly 1.0); as the crash rate grows, availability
falls below 1.0 and p95 climbs strictly above the no-fault baseline.  The
``recovery-aware`` policy — which shifts traffic back onto freshly
re-created replicas gradually instead of stampeding them — is the routing
axis under test against plain least-work and power-of-two.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import cluster_for_system, plan_elasticrec
from repro.model.configs import rm1
from repro.serving.engine import ServingEngine
from repro.serving.scenarios import build_scenario

__all__ = ["run", "ROUTINGS", "CRASH_RATES_PER_MIN"]

#: Routing policies compared under failures.
ROUTINGS = ("least-work", "power-of-two", "recovery-aware")

#: Poisson crash rates of the sweep (crashes per simulated minute).
CRASH_RATES_PER_MIN = (0.0, 1.0, 3.0)


def run(
    seed: int = 0,
    duration_s: float = 480.0,
    num_nodes: int = 4,
    base_qps: float = 15.0,
) -> ExperimentResult:
    """Sweep crash rate x routing policy and report p95 + availability."""
    pool = cluster_for_system("cpu").with_nodes(num_nodes)
    workload = rm1().scaled_tables(2).with_name("RM1-resilience")
    plan = plan_elasticrec(workload, pool, 18.0)
    pattern = build_scenario("constant", base_qps, base_qps, duration_s, seed=seed)

    rows = []
    baselines: dict[str, float] = {}
    for routing in ROUTINGS:
        for rate in CRASH_RATES_PER_MIN:
            faults = None if rate == 0.0 else f"crashes@0:rate={rate},policy=drop"
            result = ServingEngine(plan, routing=routing, seed=seed, faults=faults).run(
                pattern
            )
            reliability = result.reliability_summary()
            if rate == 0.0:
                baselines[routing] = result.overall_p95_latency_ms
            rows.append(
                {
                    "routing": routing,
                    "crash_rate_per_min": rate,
                    "p95_latency_ms": result.overall_p95_latency_ms,
                    "availability": reliability["availability"],
                    "completed": reliability["completed_queries"],
                    "rejected": reliability["rejected_queries"],
                    "dropped": reliability["dropped_queries"],
                    "requeued": reliability["requeued_queries"],
                    "faults_injected": reliability["faults_injected"],
                }
            )

    faulty = [row for row in rows if row["crash_rate_per_min"] > 0]
    worst_availability = min(float(row["availability"]) for row in faulty)
    p95_inflation = max(
        float(row["p95_latency_ms"]) / baselines[str(row["routing"])] for row in faulty
    )
    best = min(
        (row for row in rows if row["crash_rate_per_min"] == CRASH_RATES_PER_MIN[-1]),
        key=lambda row: float(row["p95_latency_ms"]),
    )
    summary = {
        "routings": float(len(ROUTINGS)),
        "crash_rates": float(len(CRASH_RATES_PER_MIN)),
        "baseline_p95_ms": baselines["least-work"],
        "worst_availability": worst_availability,
        "max_p95_inflation": p95_inflation,
        "faults_injected": float(sum(float(row["faults_injected"]) for row in rows)),
    }

    return ExperimentResult(
        experiment_id="resilience",
        title="Tail latency and availability under replica crashes",
        rows=rows,
        summary=summary,
        notes=(
            "One plan, identical constant traffic, Poisson replica crashes with "
            "dropped in-flight queries; crashed replicas are re-created by the "
            "cluster and sit through their cold start.  At the highest crash "
            f"rate the best policy was {best['routing']!r} "
            f"(p95 {float(best['p95_latency_ms']):.0f} ms, "
            f"availability {float(best['availability']):.4f})."
        ),
    )
