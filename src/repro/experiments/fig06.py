"""Figure 6: sorted access-frequency distribution of embedding vectors.

The paper plots the per-vector access frequency (log scale) of the Amazon
Books, Criteo and MovieLens datasets sorted by hotness, showing the power-law
skew ElasticRec exploits.  Synthetic traces with matched skew stand in for
the real datasets (see DESIGN.md).
"""

from __future__ import annotations

from repro.data.datasets import dataset_presets
from repro.experiments.base import ExperimentResult

__all__ = ["run"]


def run(num_curve_points: int = 12) -> ExperimentResult:
    """Regenerate the three access-frequency curves (down-sampled)."""
    rows = []
    for name, dataset in dataset_presets().items():
        ranks, freqs = dataset.access_frequency_curve(num_points=num_curve_points)
        distribution = dataset.distribution()
        for rank, freq in zip(ranks, freqs):
            rows.append(
                {
                    "dataset": name,
                    "sorted_vector_id": int(rank),
                    "access_frequency_pct": float(freq),
                }
            )
        rows.append(
            {
                "dataset": name,
                "sorted_vector_id": -1,
                "access_frequency_pct": 100.0 * distribution.locality(),
            }
        )
    datasets = dataset_presets()
    summary = {
        f"{name}_top10pct_coverage": 100.0 * dataset.distribution().locality()
        for name, dataset in datasets.items()
    }
    return ExperimentResult(
        experiment_id="fig6",
        title="Sorted embedding access frequency (synthetic stand-ins)",
        rows=rows,
        summary=summary,
        notes=(
            "Rows with sorted_vector_id == -1 report the locality metric P (coverage of "
            "the hottest 10% of vectors); the paper states P = 94% for MovieLens."
        ),
    )
