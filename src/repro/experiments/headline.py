"""Headline aggregate numbers of the paper's abstract.

The abstract claims that, averaged over the evaluated workloads and systems,
ElasticRec delivers a 3.3x reduction in memory allocation size, an 8.1x
increase in memory utility and a 1.6x reduction in deployment cost.  This
module recomputes those aggregates from the individual figure reproductions.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cost import deployment_cost
from repro.analysis.utility import average_memory_utility
from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    CPU_GPU_TARGET_QPS,
    CPU_ONLY_TARGET_QPS,
    cluster_for_system,
    paper_workloads,
    plan_elasticrec,
    plan_model_wise,
)

__all__ = ["run"]


def _geomean(values: list[float]) -> float:
    return float(np.exp(np.mean(np.log(values))))


def run() -> ExperimentResult:
    """Recompute the abstract's average memory, utility and cost improvements."""
    memory_reductions = []
    utility_gains = []
    cost_reductions = []
    rows = []
    for system, target in (("cpu", CPU_ONLY_TARGET_QPS), ("cpu-gpu", CPU_GPU_TARGET_QPS)):
        cluster = cluster_for_system(system)
        for config in paper_workloads():
            elastic = plan_elasticrec(config, cluster, target)
            baseline = plan_model_wise(config, cluster, target)
            memory_reduction = baseline.total_memory_gb / elastic.total_memory_gb
            utility_gain = average_memory_utility(elastic) / average_memory_utility(baseline)
            cost_reduction = (
                deployment_cost(baseline).relative_cost / deployment_cost(elastic).relative_cost
            )
            memory_reductions.append(memory_reduction)
            utility_gains.append(utility_gain)
            cost_reductions.append(cost_reduction)
            rows.append(
                {
                    "system": system,
                    "model": config.name,
                    "memory_reduction": memory_reduction,
                    "utility_gain": utility_gain,
                    "cost_reduction": cost_reduction,
                }
            )
    summary = {
        "average_memory_reduction": _geomean(memory_reductions),
        "paper_average_memory_reduction": 3.3,
        "average_utility_gain": _geomean(utility_gains),
        "paper_average_utility_gain": 8.1,
        "average_cost_reduction": _geomean(cost_reductions),
        "paper_average_cost_reduction": 1.6,
    }
    return ExperimentResult(
        experiment_id="headline",
        title="Abstract-level averages: memory, utility and deployment cost",
        rows=rows,
        summary=summary,
        notes="Averages are geometric means over both systems and all three workloads.",
    )
