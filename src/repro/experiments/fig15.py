"""Figure 15: CPU server nodes required to reach the 100 QPS target.

The paper reports 1.67x, 1.67x and 2.0x fewer servers with ElasticRec for
RM1/RM2/RM3 (an average deployment-cost reduction of about 1.7x), at the
price of about 31 ms of extra average latency from cross-shard RPCs.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cost import servers_required
from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    CPU_ONLY_TARGET_QPS,
    cluster_for_system,
    paper_workloads,
    plan_elasticrec,
    plan_model_wise,
)
from repro.hardware.perf_model import PerfModel

__all__ = ["run"]

PAPER_SERVER_REDUCTIONS = {"RM1": 1.67, "RM2": 1.67, "RM3": 2.0}


def run(target_qps: float = CPU_ONLY_TARGET_QPS, system: str = "cpu") -> ExperimentResult:
    """Regenerate Figure 15 (or Figure 18 when ``system='cpu-gpu'``)."""
    cluster = cluster_for_system(system)
    perf = PerfModel(cluster)
    rows = []
    for config in paper_workloads():
        elastic = plan_elasticrec(config, cluster, target_qps)
        baseline = plan_model_wise(config, cluster, target_qps)
        elastic_servers = servers_required(elastic)
        baseline_servers = servers_required(baseline)
        rows.append(
            {
                "model": config.name,
                "model_wise_servers": baseline_servers,
                "elasticrec_servers": elastic_servers,
                "reduction": baseline_servers / elastic_servers,
                "rpc_overhead_ms": perf.rpc_overhead_s() * 1000.0,
            }
        )
    reductions = [r["reduction"] for r in rows]
    summary = {
        "geomean_reduction": float(np.exp(np.mean(np.log(reductions)))),
        "paper_average_reduction": 1.7 if system == "cpu" else 1.4,
    }
    return ExperimentResult(
        experiment_id="fig15" if system == "cpu" else "fig18",
        title=(
            f"{'CPU' if system == 'cpu' else 'CPU-GPU'} servers required to meet the "
            f"{target_qps:.0f} QPS target"
        ),
        rows=rows,
        summary=summary,
        notes=(
            "ElasticRec reaches the same throughput with fewer servers because replicas "
            "are right-sized per shard; the added cross-shard RPC latency stays well "
            "within the 400 ms SLA."
        ),
    )
