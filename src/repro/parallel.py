"""Shared multiprocessing and deterministic-seeding helpers.

Every parallel entry point of the package — the sweep runner
(``python -m repro sweep``) and the sharded run executor
(``python -m repro simulate --shard-workers``) — needs the same two pieces
of machinery:

* a :func:`pool_context` that prefers ``fork`` (workers share the already
  imported package and any plans built before the fork) and falls back to
  ``spawn`` on platforms without ``fork`` (workers then re-import
  ``repro``);
* :class:`numpy.random.SeedSequence` fan-out (:func:`subseed` /
  :func:`spawn_seeds`), so derived seeds depend only on ``(base seed,
  index)`` — never on worker count or scheduling order, which is what makes
  "serial == parallel" a checkable contract instead of a hope.

Keeping them here (rather than private to ``experiments.sweeps``) means one
fix — e.g. a platform losing ``fork`` — lands everywhere at once.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.context
import resource
import sys

import numpy as np

__all__ = [
    "pool_context",
    "subseed",
    "spawn_seeds",
    "partition_indices",
    "peak_rss_mb",
]


def pool_context() -> multiprocessing.context.BaseContext:
    """The process-pool context every parallel runner shares.

    ``fork`` shares the already-imported package (and anything the parent
    built before forking) with the workers; ``spawn`` is the fallback where
    fork is unavailable, at the cost of a re-import per worker.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def peak_rss_mb() -> float:
    """This process's lifetime peak resident set size, in MB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.  It is a
    high-water mark (and inherited across ``fork``), so per-workload numbers
    need a fresh child process per measurement — which is exactly how the
    sharded executor and the benchmark harness call this: once, at the end
    of each worker.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak / 1e6 if sys.platform == "darwin" else peak / 1024.0


def subseed(base_seed: int, index: int) -> int:
    """Deterministic derived seed, independent of worker count and order."""
    return int(np.random.SeedSequence([base_seed, index]).generate_state(1)[0])


def spawn_seeds(base_seed: int, count: int) -> list[int]:
    """``count`` derived seeds via :func:`subseed` (one per child index)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [subseed(base_seed, index) for index in range(count)]


def partition_indices(count: int, parts: int) -> list[list[int]]:
    """Contiguous near-even partition of ``range(count)`` into ``parts`` slices.

    ``parts`` is clamped to ``count`` so no slice is empty; the first
    ``count % parts`` slices are one element longer (the ``np.array_split``
    convention).  The partition depends only on the two counts, so a sharded
    run assigns the same items to the same shard on every host.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    if parts < 1:
        raise ValueError("parts must be at least 1")
    parts = min(parts, count)
    base, extra = divmod(count, parts)
    slices = []
    start = 0
    for part in range(parts):
        size = base + (1 if part < extra else 0)
        slices.append(list(range(start, start + size)))
        start += size
    return slices
