"""ElasticRec reproduction: microservice-based RecSys model serving with elastic scaling.

This package reproduces *ElasticRec: A Microservice-based Model Serving
Architecture Enabling Elastic Resource Scaling for Recommendation Models*
(ISCA 2024) as a pure-Python library.  It contains:

``repro.core``
    The paper's contribution: hotness-sorted table preprocessing, the
    profiling-based QPS regression model, the Algorithm-1 deployment cost
    estimator, the Algorithm-2 dynamic-programming table partitioner,
    bucketization, HPA policy generation and the end-to-end ElasticRec
    deployment planner plus the model-wise and GPU-cache baselines.

``repro.model``
    A numpy DLRM substrate (MLPs, embedding bags, feature interaction) with
    analytic FLOP / memory counters, plus the RM1/RM2/RM3 and microbenchmark
    configurations of Tables I and II.

``repro.hardware``
    CPU-only and CPU-GPU node specifications and a calibrated roofline-style
    performance model used for profiling per-layer QPS.

``repro.cluster``
    A Kubernetes-like substrate: containers, nodes, bin-packing scheduler,
    deployments, horizontal pod autoscaler, load balancer and metric registry.

``repro.serving``
    A discrete-event serving simulator (traffic generation, per-replica
    queueing, RPC fan-out, tail-latency tracking, stress testing).

``repro.data``
    Power-law embedding access distributions, synthetic dataset presets and
    query generation.

``repro.analysis``
    Memory consumption, memory utility and deployment cost accounting.

``repro.experiments``
    One module per paper figure regenerating its rows/series.
"""

from repro._version import __version__
from repro.core.planner import ElasticRecPlanner
from repro.core.baseline import ModelWisePlanner
from repro.core.gpu_cache import CachedModelWisePlanner
from repro.core.plan import DeploymentPlan, ShardDeployment
from repro.core.sharding import DenseShardSpec, EmbeddingShardSpec, ShardingPlan
from repro.model.configs import (
    DLRMConfig,
    EmbeddingConfig,
    MLPConfig,
    microbenchmark,
    rm1,
    rm2,
    rm3,
)
from repro.hardware.specs import (
    ClusterSpec,
    CPUNodeSpec,
    GPUSpec,
    cpu_gpu_cluster,
    cpu_only_cluster,
)
from repro.hardware.perf_model import PerfModel

__all__ = [
    "__version__",
    "ElasticRecPlanner",
    "ModelWisePlanner",
    "CachedModelWisePlanner",
    "DeploymentPlan",
    "ShardDeployment",
    "DenseShardSpec",
    "EmbeddingShardSpec",
    "ShardingPlan",
    "DLRMConfig",
    "EmbeddingConfig",
    "MLPConfig",
    "microbenchmark",
    "rm1",
    "rm2",
    "rm3",
    "ClusterSpec",
    "CPUNodeSpec",
    "GPUSpec",
    "cpu_only_cluster",
    "cpu_gpu_cluster",
    "PerfModel",
]
