"""Command-line interface: plan deployments and export manifests.

Usage (also available as ``python -m repro``):

``python -m repro plan RM1 --system cpu --target-qps 100``
    Run the ElasticRec planner (and the model-wise baseline for comparison)
    on a Table II workload and print the resulting deployments, memory and
    server counts.

``python -m repro manifests RM1 --system cpu --target-qps 100``
    Emit Kubernetes Deployment / HorizontalPodAutoscaler manifests for the
    ElasticRec plan, as the paper's deployment module would.

``python -m repro simulate RM1 --scenario flash-crowd --routing power-of-two``
    Serve a planned deployment under a named traffic scenario with a chosen
    replica-routing policy and print the run's headline aggregates.
    ``--cost-model skewed`` samples heterogeneous per-query gather costs from
    the workload's access distribution; ``--max-batch N`` lets replicas
    coalesce queued queries into batches of up to ``N``; ``--faults`` injects
    failures from a named fault scenario (``crash-storm``, ``rolling-drain``,
    ...) or an inline fault script such as
    ``'crash@120:policy=drop;drain@300+60:node=1'``; ``--drift`` drifts the
    access skew mid-run (``'linear@60+300:to=0.2'``) and ``--replan`` lets a
    threshold-tier detector fire an online re-plan with live re-sharding
    (``'sla@1.5:patience=3,cooldown=120'``); ``--slo`` arms the self-healing
    SLO watchdog with graceful degradation
    (``'p95@1.5:p99=2.5,shed=0.1,retries=2'``).

``python -m repro simulate RM1 --tenants 8 --shard-workers 4 --stream-dir /tmp/spool``
    Serve N co-located tenants (seeds fanned out deterministically from
    ``--seed``) sharded across worker processes, streaming per-interval
    series and latency samples to an on-disk spool so memory stays bounded
    at any horizon.  Sharded runs are bit-exact with single-process runs
    whenever tenants do not contend for the shared pool (node-drain fault
    scenarios are rejected with a hint).

``python -m repro sweep RM1 --scenarios constant,flash-crowd --routings all --workers 4``
    Fan a scenario × routing × replica-budget grid across worker processes
    (deterministic per-cell seeding: the merged table is identical for any
    worker count) and print the merged results.

``python -m repro experiments fig13 fig15``
    Shortcut for ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__
from repro.analysis.cost import servers_required
from repro.analysis.memory import memory_breakdown
from repro.analysis.report import format_table
from repro.cluster.manifests import render_manifests
from repro.core.baseline import ModelWisePlanner
from repro.core.planner import ElasticRecPlanner
from repro.hardware.specs import ClusterSpec, cpu_gpu_cluster, cpu_only_cluster
from repro.model.configs import DLRMConfig, workload_presets
from repro.serving.engine import ServingEngine
from repro.serving.faults import fault_scenario_names, validate_fault_spec
from repro.serving.replanner import validate_replan_spec
from repro.serving.routing import resolve_routing_names, routing_policy_names
from repro.serving.watchdog import validate_slo_spec
from repro.serving.scenarios import build_scenario, resolve_scenario_names, scenario_names
from repro.serving.workload import cost_model_names, validate_drift_spec

__all__ = ["main", "build_parser"]


def _resolve_workload(name: str) -> DLRMConfig:
    presets = workload_presets()
    try:
        return presets[name.upper()]
    except KeyError:
        known = ", ".join(sorted(presets))
        raise SystemExit(f"unknown workload {name!r}; choose from {known}") from None


def _check_names(scenarios: str, routings: str, seed: int) -> tuple[list[str], list[str]]:
    """Validate scenario/routing selections and the seed.

    Exits with a one-line hint (not a traceback) on an unknown name or a
    negative seed.
    """
    if seed < 0:
        raise SystemExit("seed must be non-negative")
    try:
        return resolve_scenario_names(scenarios), resolve_routing_names(routings)
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _check_faults(spec: str) -> None:
    """Exit with a one-line hint on an unknown fault scenario or a bad script."""
    try:
        validate_fault_spec(spec)
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _check_cache(cache_mb: float, cost_model: str) -> None:
    """Exit with a one-line hint on an unusable --cache-mb setting.

    The engine raises the same complaint, but worker processes would bury it
    in a traceback; the cache needs per-query gather splits, which only the
    skewed cost model provides.
    """
    if cache_mb < 0:
        raise SystemExit("--cache-mb must be non-negative")
    if cache_mb > 0 and cost_model == "homogeneous":
        raise SystemExit(
            "--cache-mb needs per-query gather splits; use --cost-model skewed"
        )


def _check_drift(spec: str, cost_model: str) -> None:
    """Exit with a one-line hint on a malformed or unusable --drift spec.

    Drift re-prices each query's gather set against the distribution at its
    arrival time, which only the skewed cost model samples per query.
    """
    try:
        validate_drift_spec(spec)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    if spec.strip().lower() not in ("", "none") and cost_model == "homogeneous":
        raise SystemExit(
            "--drift needs per-query gather sampling; use --cost-model skewed"
        )


def _check_replan(spec: str) -> None:
    """Exit with a one-line hint on a malformed --replan spec."""
    try:
        validate_replan_spec(spec)
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _check_slo(spec: str) -> None:
    """Exit with a one-line hint on a malformed --slo spec."""
    try:
        validate_slo_spec(spec)
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _resolve_cluster(system: str, num_nodes: int | None) -> ClusterSpec:
    if system == "cpu":
        cluster = cpu_only_cluster()
    elif system == "cpu-gpu":
        cluster = cpu_gpu_cluster()
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown system {system!r}")
    if num_nodes is not None:
        cluster = cluster.with_nodes(num_nodes)
    return cluster


def _positive_int(text: str) -> int:
    """argparse type for integer options that must be at least 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ElasticRec reproduction: deployment planning and figure regeneration.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for command in ("plan", "manifests"):
        sub = subparsers.add_parser(
            command,
            help="plan a deployment" if command == "plan" else "emit Kubernetes manifests",
        )
        sub.add_argument("workload", help="Table II workload name: RM1, RM2 or RM3")
        sub.add_argument(
            "--system", choices=("cpu", "cpu-gpu"), default="cpu", help="cluster type"
        )
        sub.add_argument("--target-qps", type=float, default=100.0, help="throughput target")
        sub.add_argument("--num-nodes", type=int, default=None, help="override fleet size")
        sub.add_argument(
            "--num-shards", type=int, default=None, help="force a shard count per table"
        )

    simulate = subparsers.add_parser(
        "simulate", help="serve a planned deployment under a traffic scenario"
    )
    simulate.add_argument("workload", help="Table II workload name: RM1, RM2 or RM3")
    simulate.add_argument(
        "--system", choices=("cpu", "cpu-gpu"), default="cpu", help="cluster type"
    )
    simulate.add_argument("--num-nodes", type=int, default=None, help="override fleet size")
    simulate.add_argument(
        "--num-shards", type=int, default=None, help="force a shard count per table"
    )
    simulate.add_argument(
        "--scenario",
        default="paper",
        help=f"traffic scenario, one of: {', '.join(scenario_names())} (default: paper)",
    )
    simulate.add_argument(
        "--routing",
        default="least-work",
        help=(
            "replica routing policy, one of: "
            f"{', '.join(routing_policy_names())} (default: least-work)"
        ),
    )
    simulate.add_argument(
        "--strategy",
        choices=("elasticrec", "model-wise", "both"),
        default="elasticrec",
        help="deployment strategy to simulate",
    )
    simulate.add_argument(
        "--cost-model",
        choices=tuple(cost_model_names()),
        default="homogeneous",
        help="per-query cost model (homogeneous reproduces the legacy engine exactly)",
    )
    simulate.add_argument(
        "--max-batch",
        type=_positive_int,
        default=1,
        help="queries one replica may coalesce into a batch (default: 1, no batching)",
    )
    simulate.add_argument(
        "--faults",
        default="none",
        help=(
            "fault scenario or fault script, one of: "
            f"{', '.join(fault_scenario_names())} — or e.g. "
            "'crash@120:policy=drop;drain@300+60:node=1' (default: none)"
        ),
    )
    simulate.add_argument(
        "--cache-mb",
        type=float,
        default=0.0,
        help=(
            "per-replica embedding cache capacity in MB; needs --cost-model "
            "skewed (default: 0, no cache)"
        ),
    )
    simulate.add_argument(
        "--drift",
        default="none",
        help=(
            "access-skew drift schedule, e.g. 'linear@60+300:to=0.2' "
            "(schedules: step, linear, oscillate); needs --cost-model skewed "
            "(default: none)"
        ),
    )
    simulate.add_argument(
        "--replan",
        default="none",
        help=(
            "online re-planning trigger, e.g. 'sla@1.5:patience=3,cooldown=120' "
            "(default: none)"
        ),
    )
    simulate.add_argument(
        "--slo",
        default="none",
        help=(
            "self-healing SLO watchdog, e.g. 'p95@1.5:p99=2.5,shed=0.1,retries=2' "
            "(default: none)"
        ),
    )
    simulate.add_argument("--base-qps", type=float, default=18.0, help="baseline query rate")
    simulate.add_argument("--peak-qps", type=float, default=90.0, help="peak query rate")
    simulate.add_argument(
        "--duration-s", type=float, default=900.0, help="simulated duration in seconds"
    )
    simulate.add_argument("--seed", type=int, default=0, help="random seed")
    simulate.add_argument(
        "--tenants",
        type=_positive_int,
        default=1,
        help=(
            "co-located tenants sharing the node pool (seeds fan out "
            "deterministically from --seed; default: 1)"
        ),
    )
    simulate.add_argument(
        "--shard-workers",
        type=_positive_int,
        default=1,
        help=(
            "worker processes to shard the run across, one disjoint tenant "
            "subset each (bit-exact with a single process; default: 1)"
        ),
    )
    simulate.add_argument(
        "--stream-dir",
        default=None,
        metavar="PATH",
        help=(
            "stream per-interval series and latency samples to an on-disk "
            "spool at PATH instead of holding whole-run arrays in memory"
        ),
    )
    simulate.add_argument(
        "--max-replicas",
        type=_positive_int,
        default=256,
        help="per-tenant replica budget (default: 256)",
    )
    simulate.add_argument(
        "--profile",
        action="store_true",
        help="run the simulation under cProfile and print the top-20 cumulative hot spots",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="fan a scenario x routing x replica-budget grid over worker processes",
    )
    sweep.add_argument("workload", help="Table II workload name: RM1, RM2 or RM3")
    sweep.add_argument(
        "--system", choices=("cpu", "cpu-gpu"), default="cpu", help="cluster type"
    )
    sweep.add_argument("--num-nodes", type=int, default=8, help="shared node pool size")
    sweep.add_argument(
        "--num-tables", type=int, default=4, help="scale the workload's table count"
    )
    sweep.add_argument(
        "--tenants", type=int, default=1, help="co-located tenants per grid cell"
    )
    sweep.add_argument(
        "--scenarios",
        default="all",
        help=f"comma-separated scenarios or 'all' ({', '.join(scenario_names())})",
    )
    sweep.add_argument(
        "--routings",
        default="all",
        help=f"comma-separated routing policies or 'all' ({', '.join(routing_policy_names())})",
    )
    sweep.add_argument(
        "--replica-budgets",
        default="4,16,64",
        help="comma-separated per-deployment replica caps",
    )
    sweep.add_argument(
        "--cost-model",
        choices=tuple(cost_model_names()),
        default="homogeneous",
        help="per-query cost model applied to every cell",
    )
    sweep.add_argument(
        "--max-batch",
        type=_positive_int,
        default=1,
        help="per-replica batch cap applied to every cell (default: 1)",
    )
    sweep.add_argument(
        "--faults",
        default="none",
        help=(
            "fault scenario or fault script applied to every cell "
            f"({', '.join(fault_scenario_names())} or a script; default: none)"
        ),
    )
    sweep.add_argument(
        "--cache-mb",
        type=float,
        default=0.0,
        help=(
            "per-replica embedding cache capacity in MB applied to every "
            "cell; needs --cost-model skewed (default: 0, no cache)"
        ),
    )
    sweep.add_argument(
        "--drift",
        default="none",
        help=(
            "access-skew drift schedule applied to every cell, e.g. "
            "'linear@60+300:to=0.2'; needs --cost-model skewed (default: none)"
        ),
    )
    sweep.add_argument(
        "--replan",
        default="none",
        help=(
            "online re-planning trigger applied to every cell, e.g. "
            "'sla@1.5:patience=3' (default: none)"
        ),
    )
    sweep.add_argument(
        "--slo",
        default="none",
        help=(
            "self-healing SLO watchdog applied to every cell, e.g. "
            "'p95@1.5:shed=0.1' (default: none)"
        ),
    )
    sweep.add_argument("--workers", type=int, default=1, help="worker processes")
    sweep.add_argument("--base-qps", type=float, default=18.0, help="baseline query rate")
    sweep.add_argument("--peak-qps", type=float, default=90.0, help="peak query rate")
    sweep.add_argument(
        "--duration-s", type=float, default=600.0, help="simulated duration per cell"
    )
    sweep.add_argument("--seed", type=int, default=0, help="base random seed")

    experiments = subparsers.add_parser("experiments", help="regenerate paper figures")
    experiments.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    experiments.add_argument("--list", action="store_true", help="list experiment ids")
    return parser


def _command_plan(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    cluster = _resolve_cluster(args.system, args.num_nodes)
    elastic = ElasticRecPlanner(cluster).plan(
        workload, args.target_qps, num_shards=args.num_shards
    )
    baseline = ModelWisePlanner(cluster).plan(workload, args.target_qps)

    rows = []
    for deployment in elastic.deployments:
        rows.append(
            {
                "deployment": deployment.name,
                "role": deployment.role,
                "replicas": deployment.replicas,
                "per_replica_gb": deployment.per_replica_memory_bytes / 1e9,
                "per_replica_qps": deployment.per_replica_qps,
                "cores": deployment.cores,
                "gpus": deployment.gpus,
            }
        )
    print(format_table(rows, title=f"ElasticRec deployments for {workload.name} "
                                   f"({args.target_qps:.0f} QPS on {cluster.name})"))
    print()
    comparison = []
    for plan in (baseline, elastic):
        breakdown = memory_breakdown(plan)
        comparison.append(
            {
                "strategy": plan.strategy,
                "memory_gb": breakdown.total_gb,
                "replicas": plan.total_replicas,
                "servers": servers_required(plan),
            }
        )
    print(format_table(comparison, title="Comparison against the model-wise baseline"))
    reduction = baseline.total_memory_gb / elastic.total_memory_gb
    print(f"\nmemory reduction: {reduction:.1f}x")
    return 0


def _command_manifests(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    cluster = _resolve_cluster(args.system, args.num_nodes)
    plan = ElasticRecPlanner(cluster).plan(
        workload, args.target_qps, num_shards=args.num_shards
    )
    sys.stdout.write(render_manifests(plan))
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    _check_names(args.scenario, args.routing, args.seed)
    _check_faults(args.faults)
    _check_cache(args.cache_mb, args.cost_model)
    _check_drift(args.drift, args.cost_model)
    _check_replan(args.replan)
    _check_slo(args.slo)
    workload = _resolve_workload(args.workload)
    cluster = _resolve_cluster(args.system, args.num_nodes)
    try:
        pattern = build_scenario(
            args.scenario, args.base_qps, args.peak_qps, args.duration_s, seed=args.seed
        )
    except ValueError as error:
        raise SystemExit(f"cannot build scenario {args.scenario!r}: {error}") from None
    planners = {
        "elasticrec": lambda: ElasticRecPlanner(cluster).plan(
            workload, args.base_qps, num_shards=args.num_shards
        ),
        "model-wise": lambda: ModelWisePlanner(cluster).plan(workload, args.base_qps),
    }
    strategies = list(planners) if args.strategy == "both" else [args.strategy]
    if args.tenants > 1 or args.shard_workers > 1 or args.stream_dir is not None:
        return _simulate_sharded(args, workload, cluster, planners, strategies, pattern)
    profiler = None
    if getattr(args, "profile", False):
        import cProfile

        profiler = cProfile.Profile()
    rows = []
    for strategy in strategies:
        engine = ServingEngine(
            planners[strategy](),
            routing=args.routing,
            seed=args.seed,
            cost_model=args.cost_model,
            max_batch=args.max_batch,
            faults=args.faults,
            cache_mb=args.cache_mb,
            drift=args.drift,
            replan=args.replan,
            slo=args.slo,
        )
        if profiler is not None:
            result = profiler.runcall(engine.run, pattern)
        else:
            result = engine.run(pattern)
        summary = result.summary()
        row = {
            "strategy": strategy,
            "routing": result.routing,
            "cost_model": result.cost_model,
            "peak_memory_gb": summary["peak_memory_gb"],
            "mean_latency_ms": summary["mean_latency_ms"],
            "p95_latency_ms": summary["p95_latency_ms"],
            "sla_violations_pct": 100.0 * summary["sla_violation_fraction"],
            "availability": result.availability_fraction,
            "queries": summary["total_queries"],
        }
        if result.replan != "none":
            row["replans"] = result.replans_applied
        if result.slo != "none":
            row["timeouts"] = result.timeout_queries
            row["degraded"] = result.degraded_queries
        rows.append(row)
    print(
        format_table(
            rows,
            title=(
                f"{workload.name} under {args.scenario!r} traffic "
                f"({args.base_qps:.0f}-{args.peak_qps:.0f} QPS, "
                f"{args.duration_s:.0f}s on {cluster.name})"
            ),
        )
    )
    if profiler is not None:
        import pstats

        print("\ntop-20 hot spots by cumulative time:")
        pstats.Stats(profiler, stream=sys.stdout).sort_stats("cumulative").print_stats(20)
    return 0


def _simulate_sharded(
    args: argparse.Namespace,
    workload: DLRMConfig,
    cluster: ClusterSpec,
    planners: dict,
    strategies: list[str],
    pattern,
) -> int:
    """The multi-tenant / sharded / streamed variant of ``simulate``."""
    from repro.parallel import spawn_seeds
    from repro.serving.engine import TenantSpec
    from repro.serving.sharding import run_sharded

    if getattr(args, "profile", False):
        raise SystemExit("--profile needs a single-process, single-tenant run")
    workers = args.shard_workers
    if workers > args.tenants:
        print(
            f"note: --shard-workers {workers} exceeds the {args.tenants} "
            f"available tenant(s); running {args.tenants} worker(s)",
            file=sys.stderr,
        )
        workers = args.tenants
    seeds = spawn_seeds(args.seed, args.tenants)
    rows = []
    stats = None
    for strategy in strategies:
        plan = planners[strategy]()
        tenants = [
            TenantSpec(
                name=f"tenant-{index:02d}" if args.tenants > 1 else plan.name,
                plan=plan,
                pattern=pattern,
                routing=args.routing,
                seed=seeds[index],
                max_replicas=args.max_replicas,
                cost_model=args.cost_model,
                max_batch=args.max_batch,
                faults=args.faults,
                cache_mb=args.cache_mb,
                drift=args.drift,
                replan=args.replan,
                slo=args.slo,
            )
            for index in range(args.tenants)
        ]
        stream_dir = None
        if args.stream_dir is not None:
            stream_dir = args.stream_dir
            if len(strategies) > 1:
                stream_dir = f"{args.stream_dir}/{strategy}"
        try:
            result = run_sharded(
                tenants, cluster_spec=cluster, workers=workers, stream_dir=stream_dir
            )
        except ValueError as error:
            raise SystemExit(str(error)) from None
        stats = result.sharding_stats
        for name, tenant_result in result.tenants.items():
            summary = tenant_result.summary()
            rows.append(
                {
                    "strategy": strategy,
                    "tenant": name,
                    "routing": tenant_result.routing,
                    "peak_memory_gb": summary["peak_memory_gb"],
                    "mean_latency_ms": summary["mean_latency_ms"],
                    "p95_latency_ms": summary["p95_latency_ms"],
                    "sla_violations_pct": 100.0 * summary["sla_violation_fraction"],
                    "queries": summary["total_queries"],
                }
            )
    print(
        format_table(
            rows,
            title=(
                f"{workload.name} under {args.scenario!r} traffic "
                f"({args.tenants} tenant(s), {workers} worker(s) on {cluster.name})"
            ),
        )
    )
    if stats is not None:
        rss = max(stats["peak_rss_mb"]) if stats["peak_rss_mb"] else 0.0
        line = (
            f"\nsharding: {stats['workers']} worker(s), wall {stats['wall_s']:.2f}s, "
            f"peak worker RSS {rss:.0f} MB"
        )
        if stats["streamed"]:
            line += f", spool at {args.stream_dir}"
        print(line)
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import SweepConfig, run_sweep

    _resolve_workload(args.workload)
    scenarios, routings = _check_names(args.scenarios, args.routings, args.seed)
    _check_faults(args.faults)
    _check_cache(args.cache_mb, args.cost_model)
    _check_drift(args.drift, args.cost_model)
    _check_replan(args.replan)
    _check_slo(args.slo)
    try:
        budgets = [int(b) for b in args.replica_budgets.split(",") if b.strip()]
    except ValueError:
        budgets = []
    if not budgets or any(b <= 0 for b in budgets):
        raise SystemExit("--replica-budgets needs a comma-separated list of positive ints")
    config = SweepConfig(
        workload=args.workload.upper(),
        system=args.system,
        num_nodes=args.num_nodes,
        num_tables=args.num_tables,
        tenants=args.tenants,
        base_qps=args.base_qps,
        peak_qps=args.peak_qps,
        duration_s=args.duration_s,
        seed=args.seed,
        cost_model=args.cost_model,
        max_batch=args.max_batch,
        faults=args.faults,
        cache_mb=args.cache_mb,
        drift=args.drift,
        replan=args.replan,
        slo=args.slo,
    )
    result = run_sweep(
        config,
        scenarios=scenarios,
        routings=routings,
        replica_budgets=budgets,
        workers=args.workers,
    )
    print(result.to_table())
    summary = result.summary()
    summary_text = ", ".join(
        f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}"
        for key, value in summary.items()
    )
    print(f"\nsummary: {summary_text}")
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    argv = list(args.ids)
    if args.list:
        argv.append("--list")
    return experiments_main(argv)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "plan":
        return _command_plan(args)
    if args.command == "manifests":
        return _command_manifests(args)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "sweep":
        return _command_sweep(args)
    return _command_experiments(args)
