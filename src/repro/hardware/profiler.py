"""One-time profiling of embedding gathers and layer throughput.

ElasticRec "conducts a one-time profiling of embedding vector gather
operations, swept over various number of vector gathers, and measures its QPS
to construct a lookup table indexed by the number of gathers" (Section IV-B,
Figure 9).  :class:`GatherProfiler` performs that sweep against the
performance model; its output feeds the regression model in
:mod:`repro.core.qps_model`.  :class:`LayerProfiler` measures per-layer QPS of
whole workloads (Figure 5) and the latency breakdown of Figure 3(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hardware.perf_model import PerfModel
from repro.model.configs import DLRMConfig

__all__ = ["ProfilePoint", "GatherProfiler", "LayerProfiler", "DEFAULT_GATHER_SWEEP"]

#: Gather counts swept by default, matching the x-axis range of Figure 9.
DEFAULT_GATHER_SWEEP: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32, 48, 64, 80, 96, 100)


@dataclass(frozen=True)
class ProfilePoint:
    """One measured point of the gather sweep."""

    num_gathers: float
    qps: float
    latency_s: float


class GatherProfiler:
    """Sweeps embedding-gather counts and records the sustained QPS (Figure 9)."""

    def __init__(self, perf_model: PerfModel, batch_size: int = 32) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self._perf_model = perf_model
        self._batch_size = int(batch_size)

    @property
    def batch_size(self) -> int:
        """Batch size used for every profiled query."""
        return self._batch_size

    def profile(
        self,
        embedding_dim: int,
        gather_counts: Sequence[float] = DEFAULT_GATHER_SWEEP,
        dtype_bytes: int = 4,
        cores: int | None = None,
    ) -> list[ProfilePoint]:
        """Profile QPS over a sweep of per-item gather counts for one vector size.

        ``cores`` profiles the gather operator under the core budget of the
        container that will eventually run it (``None`` profiles on an
        unconstrained machine, as in Figure 9).
        """
        if not gather_counts:
            raise ValueError("gather_counts must be non-empty")
        points = []
        for count in gather_counts:
            if count < 0:
                raise ValueError("gather counts must be non-negative")
            latency = self._perf_model.sparse_shard_latency(
                gathers_per_item=float(count),
                embedding_dim=embedding_dim,
                batch_size=self._batch_size,
                dtype_bytes=dtype_bytes,
                cores=cores,
            )
            points.append(
                ProfilePoint(num_gathers=float(count), qps=1.0 / latency, latency_s=latency)
            )
        return points

    def profile_dimensions(
        self,
        embedding_dims: Sequence[int] = (32, 128, 512),
        gather_counts: Sequence[float] = DEFAULT_GATHER_SWEEP,
    ) -> dict[int, list[ProfilePoint]]:
        """Figure 9: sweep gather counts for several embedding dimensions."""
        return {dim: self.profile(dim, gather_counts) for dim in embedding_dims}


class LayerProfiler:
    """Measures per-layer throughput and latency shares for whole workloads."""

    def __init__(self, perf_model: PerfModel) -> None:
        self._perf_model = perf_model

    def layer_qps(self, config: DLRMConfig) -> dict[str, float]:
        """Figure 5: dense-layer and sparse-layer QPS measured separately."""
        policy = self._perf_model.cluster.container_policy
        dense = self._perf_model.dense_qps(config, cores=policy.model_wise_cores)
        sparse = self._perf_model.sparse_layer_qps(config)
        return {"dense": dense, "sparse": sparse}

    def latency_shares(self, config: DLRMConfig) -> dict[str, float]:
        """Figure 3(b): percentage of end-to-end latency per layer type."""
        breakdown = self._perf_model.latency_breakdown(config)
        return {
            "dense_pct": 100.0 * breakdown.dense_fraction,
            "sparse_pct": 100.0 * breakdown.sparse_fraction,
        }
