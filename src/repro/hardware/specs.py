"""Node, GPU and cluster specifications (Section V-A) plus calibration constants.

Two kinds of constants live here:

* **Physical specifications** taken directly from the paper: the dual-socket
  Xeon Gold 6242 CPU-only node (64 logical cores, 384 GB DRAM, 256 GB/s,
  10 Gbps network, 11 compute nodes) and the GKE ``n1-standard-32`` CPU-GPU
  node (32 logical cores, 120 GB DRAM, NVIDIA T4, 32 Gbps, 20 nodes).
* **Calibration constants** for the serving performance model and for the
  container resource requests used when bin-packing shards onto nodes.  These
  stand in for the paper's measured profiles; DESIGN.md Section 4 records the
  calibration targets (Figures 5 and 9 shapes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "GPUSpec",
    "CPUNodeSpec",
    "ContainerPolicy",
    "PerfCalibration",
    "ClusterSpec",
    "nvidia_t4",
    "xeon_gold_6242",
    "gke_n1_standard_32",
    "cpu_only_cluster",
    "cpu_gpu_cluster",
]

#: Service-level agreement on tail latency used throughout the evaluation.
DEFAULT_SLA_MS = 400.0


@dataclass(frozen=True)
class GPUSpec:
    """An accelerator attached to a node."""

    name: str
    hbm_gb: float
    hbm_bandwidth_gbps: float
    fp32_tflops: float
    pcie_gbps: float

    def __post_init__(self) -> None:
        if min(self.hbm_gb, self.hbm_bandwidth_gbps, self.fp32_tflops, self.pcie_gbps) <= 0:
            raise ValueError("all GPU spec quantities must be positive")


@dataclass(frozen=True)
class CPUNodeSpec:
    """One inference-serving node."""

    name: str
    cores: int
    dram_gb: float
    memory_bandwidth_gbps: float
    network_gbps: float
    gpu: GPUSpec | None = None
    gpus_per_node: int = 0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if self.dram_gb <= 0:
            raise ValueError(f"dram_gb must be positive, got {self.dram_gb}")
        if self.memory_bandwidth_gbps <= 0:
            raise ValueError("memory_bandwidth_gbps must be positive")
        if self.network_gbps <= 0:
            raise ValueError("network_gbps must be positive")
        if (self.gpu is None) != (self.gpus_per_node == 0):
            raise ValueError("gpu and gpus_per_node must be set together")
        if self.gpus_per_node < 0:
            raise ValueError("gpus_per_node must be non-negative")

    @property
    def has_gpu(self) -> bool:
        """Whether the node carries an accelerator."""
        return self.gpu is not None


@dataclass(frozen=True)
class ContainerPolicy:
    """Resource requests and startup behaviour for each container type.

    ``min_mem_alloc_gb`` is Algorithm 1's ``min_mem_alloc``: the minimally
    required memory of every container replica (code, buffers, serving stack).
    Startup time models the paper's observation (Section VI-D) that
    coarse-grained model-wise replicas take much longer to initialise because
    the whole model must be loaded before the replica can serve.
    """

    model_wise_cores: int = 48
    dense_shard_cores: int = 20
    sparse_shard_cores: int = 2
    dense_shard_gpus: int = 0
    model_wise_gpus: int = 0
    min_mem_alloc_gb: float = 0.5
    startup_base_s: float = 8.0
    startup_per_gb_s: float = 5.0
    #: Fraction of a replica's measured capacity used as its throughput-HPA
    #: target (the stress-tested QPS_max knee sits below the saturation rate).
    hpa_target_fraction: float = 0.75

    def __post_init__(self) -> None:
        if min(self.model_wise_cores, self.dense_shard_cores, self.sparse_shard_cores) <= 0:
            raise ValueError("all container core requests must be positive")
        if self.min_mem_alloc_gb < 0:
            raise ValueError("min_mem_alloc_gb must be non-negative")
        if self.startup_base_s < 0 or self.startup_per_gb_s < 0:
            raise ValueError("startup times must be non-negative")
        if self.dense_shard_gpus < 0 or self.model_wise_gpus < 0:
            raise ValueError("GPU requests must be non-negative")
        if not 0 < self.hpa_target_fraction <= 1:
            raise ValueError("hpa_target_fraction must be in (0, 1]")

    def startup_seconds(self, memory_gb: float) -> float:
        """Container cold-start latency given the bytes it must load."""
        if memory_gb < 0:
            raise ValueError("memory_gb must be non-negative")
        return self.startup_base_s + self.startup_per_gb_s * memory_gb


@dataclass(frozen=True)
class PerfCalibration:
    """Calibration constants of the serving performance model.

    See DESIGN.md Section 4.  The dense-layer constants are expressed as an
    *effective* GFLOP/s at a reference core count with a sub-linear scaling
    exponent (thread-level parallel efficiency); the sparse-layer constants
    express the fixed per-query overhead of the embedding stage and the
    effective per-vector gather cost of random DRAM accesses.
    """

    # Dense layer on CPU.
    cpu_dense_gflops_at_reference: float = 0.70
    cpu_dense_reference_cores: int = 48
    cpu_dense_parallel_exponent: float = 0.90
    cpu_dense_overhead_s: float = 0.055
    # Dense layer on GPU.
    gpu_dense_effective_tflops: float = 0.05
    gpu_dense_overhead_s: float = 0.003
    gpu_pcie_efficiency: float = 0.7
    # Sparse (embedding) layer on CPU.
    sparse_query_overhead_s: float = 0.007
    sparse_per_lookup_base_us: float = 5.0
    sparse_random_access_mb_per_s: float = 48.0
    # Batch execution.  Dense layers batch sub-linearly (GEMM efficiency grows
    # with batch size); sparse layers scale with the number of gathered
    # vectors, amortising only the fixed per-query overhead, whose share of
    # the single-query latency is ``sparse_batch_overhead_fraction``.
    dense_batch_exponent: float = 0.85
    sparse_batch_overhead_fraction: float = 0.20
    # Embedding gathers need enough worker threads to expose memory-level
    # parallelism; below this core count the per-lookup cost grows inversely
    # with the container's cores, above it the gathers are bandwidth-bound.
    sparse_reference_cores: int = 2
    # Monolithic (model-wise) co-location interference: dense and sparse
    # layers sharing one container contend for cores, LLC and memory
    # bandwidth.
    colocation_interference: float = 0.8
    # Extra average latency ElasticRec pays for cross-shard RPC (Section VI-B/C).
    rpc_overhead_cpu_s: float = 0.031
    rpc_overhead_gpu_s: float = 0.060
    # GPU-side embedding cache baseline (Section VI-E).
    gpu_cache_hit_rate: float = 0.90
    gpu_cache_latency_reduction: float = 0.47

    def __post_init__(self) -> None:
        if self.cpu_dense_gflops_at_reference <= 0 or self.gpu_dense_effective_tflops <= 0:
            raise ValueError("effective compute throughputs must be positive")
        if self.cpu_dense_reference_cores <= 0:
            raise ValueError("cpu_dense_reference_cores must be positive")
        if not 0 < self.cpu_dense_parallel_exponent <= 1:
            raise ValueError("cpu_dense_parallel_exponent must be in (0, 1]")
        if not 0 < self.dense_batch_exponent <= 1:
            raise ValueError("dense_batch_exponent must be in (0, 1]")
        if not 0 <= self.sparse_batch_overhead_fraction < 1:
            raise ValueError("sparse_batch_overhead_fraction must be in [0, 1)")
        if not 0 < self.colocation_interference <= 1:
            raise ValueError("colocation_interference must be in (0, 1]")
        if not 0 <= self.gpu_cache_hit_rate <= 1:
            raise ValueError("gpu_cache_hit_rate must be in [0, 1]")
        if not 0 <= self.gpu_cache_latency_reduction < 1:
            raise ValueError("gpu_cache_latency_reduction must be in [0, 1)")


@dataclass(frozen=True)
class ClusterSpec:
    """A serving cluster: node type, node count, system kind and policies."""

    name: str
    node: CPUNodeSpec
    num_nodes: int
    system: str  # "cpu" or "cpu-gpu"
    sla_ms: float = DEFAULT_SLA_MS
    container_policy: ContainerPolicy = field(default_factory=ContainerPolicy)
    calibration: PerfCalibration = field(default_factory=PerfCalibration)
    utilization_headroom: float = 0.9

    def __post_init__(self) -> None:
        if self.system not in ("cpu", "cpu-gpu"):
            raise ValueError(f"system must be 'cpu' or 'cpu-gpu', got {self.system!r}")
        if self.num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.sla_ms <= 0:
            raise ValueError("sla_ms must be positive")
        if not 0 < self.utilization_headroom <= 1:
            raise ValueError("utilization_headroom must be in (0, 1]")
        if self.system == "cpu-gpu" and not self.node.has_gpu:
            raise ValueError("a cpu-gpu cluster needs GPU-equipped nodes")

    @property
    def is_gpu_system(self) -> bool:
        """True for the hybrid CPU-GPU system."""
        return self.system == "cpu-gpu"

    @property
    def sla_s(self) -> float:
        """SLA target in seconds."""
        return self.sla_ms / 1000.0

    @property
    def total_cores(self) -> int:
        """Aggregate logical cores across compute nodes."""
        return self.node.cores * self.num_nodes

    @property
    def total_dram_gb(self) -> float:
        """Aggregate DRAM across compute nodes."""
        return self.node.dram_gb * self.num_nodes

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        """Copy of this spec with a different fleet size."""
        return replace(self, num_nodes=num_nodes)


# ----------------------------------------------------------------------
# Presets from Section V-A
# ----------------------------------------------------------------------
def nvidia_t4() -> GPUSpec:
    """NVIDIA Tesla T4 (the GKE accelerator)."""
    return GPUSpec(
        name="NVIDIA-T4",
        hbm_gb=16.0,
        hbm_bandwidth_gbps=300.0,
        fp32_tflops=8.1,
        pcie_gbps=16.0,
    )


def xeon_gold_6242() -> CPUNodeSpec:
    """Dual-socket Intel Xeon Gold 6242 node used by the CPU-only cluster."""
    return CPUNodeSpec(
        name="xeon-gold-6242-2s",
        cores=64,
        dram_gb=384.0,
        memory_bandwidth_gbps=256.0,
        network_gbps=10.0,
    )


def gke_n1_standard_32() -> CPUNodeSpec:
    """GKE ``n1-standard-32`` node with an attached T4 (CPU-GPU cluster)."""
    return CPUNodeSpec(
        name="gke-n1-standard-32-t4",
        cores=32,
        dram_gb=120.0,
        memory_bandwidth_gbps=80.0,
        network_gbps=32.0,
        gpu=nvidia_t4(),
        gpus_per_node=1,
    )


def cpu_only_cluster(num_nodes: int = 11) -> ClusterSpec:
    """The paper's CPU-only cluster: one master plus eleven compute nodes."""
    return ClusterSpec(
        name="cpu-only",
        node=xeon_gold_6242(),
        num_nodes=num_nodes,
        system="cpu",
        container_policy=ContainerPolicy(
            model_wise_cores=56,
            dense_shard_cores=16,
            sparse_shard_cores=2,
            model_wise_gpus=0,
            dense_shard_gpus=0,
        ),
    )


def cpu_gpu_cluster(num_nodes: int = 20) -> ClusterSpec:
    """The paper's CPU-GPU cluster: twenty GKE ``n1-standard-32`` + T4 nodes."""
    return ClusterSpec(
        name="cpu-gpu",
        node=gke_n1_standard_32(),
        num_nodes=num_nodes,
        system="cpu-gpu",
        container_policy=ContainerPolicy(
            model_wise_cores=28,
            dense_shard_cores=8,
            sparse_shard_cores=2,
            model_wise_gpus=1,
            dense_shard_gpus=1,
        ),
    )
