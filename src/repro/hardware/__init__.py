"""Hardware specifications and the calibrated serving performance model.

The paper evaluates on two testbeds (Section V-A): a CPU-only cluster of
dual-socket Xeon Gold 6242 nodes and a GKE CPU-GPU cluster of n1-standard-32
nodes with NVIDIA T4 GPUs.  Neither is available here, so this subpackage
provides node/cluster specifications plus a roofline-style performance model
(:class:`~repro.hardware.perf_model.PerfModel`) calibrated so that the
dense-vs-sparse throughput relationships of Figures 5 and 9 have the paper's
shape.  Every ElasticRec planning decision consumes the model only through
profiled QPS/latency numbers, exactly as the real system consumes measured
profiles.
"""

from repro.hardware.specs import (
    ClusterSpec,
    ContainerPolicy,
    CPUNodeSpec,
    GPUSpec,
    PerfCalibration,
    cpu_gpu_cluster,
    cpu_only_cluster,
    gke_n1_standard_32,
    nvidia_t4,
    xeon_gold_6242,
)
from repro.hardware.perf_model import PerfModel
from repro.hardware.profiler import GatherProfiler, LayerProfiler, ProfilePoint

__all__ = [
    "CPUNodeSpec",
    "GPUSpec",
    "ClusterSpec",
    "ContainerPolicy",
    "PerfCalibration",
    "xeon_gold_6242",
    "gke_n1_standard_32",
    "nvidia_t4",
    "cpu_only_cluster",
    "cpu_gpu_cluster",
    "PerfModel",
    "GatherProfiler",
    "LayerProfiler",
    "ProfilePoint",
]
