"""Serving performance model for dense and sparse DLRM layers.

All ElasticRec planning decisions consume only per-shard QPS and latency
numbers; the real system obtains them by one-time profiling on the target
hardware (Section IV-B).  This module is the stand-in for that hardware: a
roofline-style analytic model calibrated so the relationships the paper
measures (Figures 3(b), 5 and 9) hold:

* dense-layer latency grows with MLP FLOPs, is far lower on the GPU, and has
  a sub-linear benefit from adding cores;
* sparse-layer latency is dominated by a fixed per-query overhead plus a
  per-gathered-vector random-access cost proportional to the vector's bytes;
* co-locating both layers in one monolithic (model-wise) container degrades
  both by a small interference factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.analytics import ModelAnalytics
from repro.model.configs import DLRMConfig
from repro.hardware.specs import ClusterSpec, PerfCalibration

__all__ = [
    "PerfModel",
    "LatencyEstimate",
    "BatchLatencyModel",
    "cache_adjusted_multiplier",
]

#: Deployment roles understood by the batch latency model.  Mirrors
#: ``repro.core.plan`` (not imported to keep the layering core -> hardware).
_BATCH_KINDS = ("dense", "embedding", "monolithic")


def cache_adjusted_multiplier(
    multiplier: float, cache_hit_rate: float, hit_cost_fraction: float
) -> float:
    """Gather-cost multiplier after a replica-local embedding cache.

    A fraction ``cache_hit_rate`` of the query's gathers is served from the
    cache at ``hit_cost_fraction`` of its DRAM cost, so the gather term
    scales by ``1 - cache_hit_rate * (1 - hit_cost_fraction)``.  The two
    boundary rates are special-cased to keep the engine's bit-exactness
    contracts independent of float rounding: hit rate 0 returns
    ``multiplier`` untouched (the no-cache path), hit rate 1 returns exactly
    ``multiplier * hit_cost_fraction`` (a fully warm cache serving every
    gather).

    The serving engine's vectorized cached branch inlines this exact algebra
    (with ``1 - hit_cost_fraction`` precomputed per lane, the same single
    subtraction) rather than calling it per query; the equivalence is locked
    by the cached digests in ``tests/serving/test_vectorized_equivalence.py``
    and the structural profile in ``benchmarks/bench_profile.py``.  Change
    one and you must change the other.
    """
    if not 0.0 <= cache_hit_rate <= 1.0:
        raise ValueError("cache_hit_rate must be in [0, 1]")
    if not 0.0 <= hit_cost_fraction <= 1.0:
        raise ValueError("hit_cost_fraction must be in [0, 1]")
    if cache_hit_rate == 0.0:
        return multiplier
    if cache_hit_rate == 1.0:
        return multiplier * hit_cost_fraction
    return multiplier * (1.0 - cache_hit_rate * (1.0 - hit_cost_fraction))


@dataclass(frozen=True)
class BatchLatencyModel:
    """Batch/cost scaling of one deployment's per-replica service time.

    The planner's per-replica latency estimates (``1 / per_replica_qps``) are
    the *mean*: one query of average cost at batch size one.  This model maps
    a batch of queries with heterogeneous costs onto a multiple of that mean:

    * ``dense`` — GEMM efficiency grows with batch size, so a batch of ``B``
      queries costs ``B ** dense_batch_exponent`` means (sub-linear); the
      per-query cost multipliers are ignored (dense work does not vary with
      the embedding access pattern);
    * ``embedding`` — gathers scale per-vector: a batch whose cost
      multipliers sum to ``M`` costs ``1 + (1 - f) * (M - 1)`` means, where
      ``f`` is the fixed per-query overhead's share of the single-query
      latency (amortised once per batch);
    * ``monolithic`` — dense batching on the batch size times the sparse
      adjustment on the batch's *mean* multiplier.

    ``factor(1, 1.0)`` is exactly ``1.0`` in floating point for every kind,
    so a batch-size-one server under the homogeneous cost model reproduces
    the unbatched service times bit-for-bit.
    """

    kind: str
    batch_exponent: float
    overhead_fraction: float

    def __post_init__(self) -> None:
        if self.kind not in _BATCH_KINDS:
            raise ValueError(f"kind must be one of {_BATCH_KINDS}, got {self.kind!r}")
        if not 0 < self.batch_exponent <= 1:
            raise ValueError("batch_exponent must be in (0, 1]")
        if not 0 <= self.overhead_fraction < 1:
            raise ValueError("overhead_fraction must be in [0, 1)")

    def factor(self, batch_size: int, multiplier_sum: float | None = None) -> float:
        """Service-time multiple of the mean for one batch.

        ``multiplier_sum`` is the sum of the batch members' per-query cost
        multipliers (mean 1.0 by construction); ``None`` means an
        average-cost batch (``multiplier_sum == batch_size``).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        total = float(batch_size) if multiplier_sum is None else float(multiplier_sum)
        if total <= 0:
            raise ValueError("multiplier_sum must be positive")
        if self.kind == "dense":
            return float(batch_size) ** self.batch_exponent
        if self.kind == "embedding":
            return 1.0 + (1.0 - self.overhead_fraction) * (total - 1.0)
        mean = total / batch_size
        sparse_adjustment = 1.0 + (1.0 - self.overhead_fraction) * (mean - 1.0)
        return (float(batch_size) ** self.batch_exponent) * sparse_adjustment

    def latency_for(
        self, base_latency_s: float, batch_size: int, multiplier_sum: float | None = None
    ) -> float:
        """Seconds one replica needs to serve the batch."""
        if base_latency_s <= 0:
            raise ValueError("base_latency_s must be positive")
        return base_latency_s * self.factor(batch_size, multiplier_sum)


@dataclass(frozen=True)
class LatencyEstimate:
    """Per-query latency split used by Figure 3(b)."""

    dense_s: float
    sparse_s: float

    @property
    def total_s(self) -> float:
        """End-to-end (serialised) per-query latency."""
        return self.dense_s + self.sparse_s

    @property
    def dense_fraction(self) -> float:
        """Dense share of the end-to-end latency."""
        return self.dense_s / self.total_s if self.total_s else 0.0

    @property
    def sparse_fraction(self) -> float:
        """Sparse share of the end-to-end latency."""
        return self.sparse_s / self.total_s if self.total_s else 0.0


class PerfModel:
    """Latency/QPS estimates for shards of a DLRM workload on a cluster."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self._cluster = cluster
        self._calibration = cluster.calibration

    @property
    def cluster(self) -> ClusterSpec:
        """The cluster this model is calibrated for."""
        return self._cluster

    @property
    def calibration(self) -> PerfCalibration:
        """Raw calibration constants."""
        return self._calibration

    # ------------------------------------------------------------------
    # Dense (MLP + interaction) layer
    # ------------------------------------------------------------------
    def _cpu_dense_gflops(self, cores: int) -> float:
        cal = self._calibration
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        scale = (cores / cal.cpu_dense_reference_cores) ** cal.cpu_dense_parallel_exponent
        return cal.cpu_dense_gflops_at_reference * scale

    def dense_query_latency(
        self,
        config: DLRMConfig,
        cores: int | None = None,
        use_gpu: bool | None = None,
    ) -> float:
        """Seconds to execute the dense layers of one query.

        ``use_gpu`` defaults to the cluster's system kind (dense layers run on
        the GPU in the CPU-GPU system, on the CPU otherwise).
        """
        cal = self._calibration
        analytics = ModelAnalytics(config)
        flops = analytics.dense_flops_per_query()
        if use_gpu is None:
            use_gpu = self._cluster.is_gpu_system
        if use_gpu:
            if not self._cluster.node.has_gpu:
                raise ValueError("cluster nodes have no GPU but use_gpu was requested")
            compute_s = flops / (cal.gpu_dense_effective_tflops * 1e12)
            transfer_bytes = (
                config.batch_size
                * (config.num_dense_features + config.num_feature_vectors * config.embedding.embedding_dim)
                * 4
            )
            pcie_gbps = self._cluster.node.gpu.pcie_gbps * cal.gpu_pcie_efficiency
            transfer_s = transfer_bytes / (pcie_gbps * 1e9)
            return cal.gpu_dense_overhead_s + compute_s + transfer_s
        cores = cores if cores is not None else self._cluster.container_policy.dense_shard_cores
        gflops = self._cpu_dense_gflops(cores)
        return cal.cpu_dense_overhead_s + flops / (gflops * 1e9)

    def dense_qps(
        self,
        config: DLRMConfig,
        cores: int | None = None,
        use_gpu: bool | None = None,
    ) -> float:
        """Queries/second one dense-shard replica sustains."""
        return 1.0 / self.dense_query_latency(config, cores=cores, use_gpu=use_gpu)

    # ------------------------------------------------------------------
    # Sparse (embedding) layer
    # ------------------------------------------------------------------
    def per_lookup_seconds(
        self,
        embedding_dim: int,
        dtype_bytes: int = 4,
        cores: int | None = None,
    ) -> float:
        """Cost of gathering one embedding vector from DRAM.

        ``cores`` is the gathering container's core request.  Below the
        calibration's ``sparse_reference_cores`` the gather stream cannot
        expose enough memory-level parallelism and the per-lookup cost grows
        inversely with the core count; at or above it the gathers are
        bandwidth-bound and extra cores do not help.
        """
        cal = self._calibration
        if embedding_dim <= 0 or dtype_bytes <= 0:
            raise ValueError("embedding_dim and dtype_bytes must be positive")
        row_bytes = embedding_dim * dtype_bytes
        transfer_us = row_bytes / cal.sparse_random_access_mb_per_s
        per_lookup_us = cal.sparse_per_lookup_base_us + transfer_us
        if cores is not None:
            if cores <= 0:
                raise ValueError("cores must be positive")
            if cores < cal.sparse_reference_cores:
                per_lookup_us *= cal.sparse_reference_cores / cores
        return per_lookup_us * 1e-6

    def sparse_shard_latency(
        self,
        gathers_per_item: float,
        embedding_dim: int,
        batch_size: int,
        dtype_bytes: int = 4,
        cores: int | None = None,
        cache_latency_reduction: float = 0.0,
    ) -> float:
        """Seconds for one embedding shard to serve its share of one query.

        ``gathers_per_item`` is the expected number of vectors gathered from
        this shard per ranked item (the paper's ``n_s``); the shard's total
        work is ``batch_size * gathers_per_item`` gathers.  ``cores`` is the
        shard container's core request (``None`` means an unconstrained,
        dedicated-machine profile).  ``cache_latency_reduction`` models a
        GPU-side embedding cache (Section VI-E) shaving a fraction off the
        gather latency.
        """
        if gathers_per_item < 0:
            raise ValueError("gathers_per_item must be non-negative")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0 <= cache_latency_reduction < 1:
            raise ValueError("cache_latency_reduction must be in [0, 1)")
        cal = self._calibration
        lookups = batch_size * gathers_per_item
        gather_s = lookups * self.per_lookup_seconds(embedding_dim, dtype_bytes, cores=cores)
        latency = cal.sparse_query_overhead_s + gather_s
        return latency * (1.0 - cache_latency_reduction)

    def sparse_shard_qps(
        self,
        gathers_per_item: float,
        embedding_dim: int,
        batch_size: int,
        dtype_bytes: int = 4,
        cores: int | None = None,
        cache_latency_reduction: float = 0.0,
    ) -> float:
        """Queries/second one embedding-shard replica sustains."""
        latency = self.sparse_shard_latency(
            gathers_per_item,
            embedding_dim,
            batch_size,
            dtype_bytes=dtype_bytes,
            cores=cores,
            cache_latency_reduction=cache_latency_reduction,
        )
        return 1.0 / latency

    def sparse_layer_latency(
        self,
        config: DLRMConfig,
        cache_latency_reduction: float = 0.0,
    ) -> float:
        """Seconds for the whole sparse layer of one query (all tables).

        Tables are gathered concurrently (table-level parallelism), so the
        layer latency equals the slowest table's latency; with identically
        configured tables that is simply one table's latency.
        """
        emb = config.embedding
        return self.sparse_shard_latency(
            gathers_per_item=emb.pooling,
            embedding_dim=emb.embedding_dim,
            batch_size=config.batch_size,
            dtype_bytes=emb.dtype_bytes,
            cache_latency_reduction=cache_latency_reduction,
        )

    def sparse_layer_qps(
        self,
        config: DLRMConfig,
        cache_latency_reduction: float = 0.0,
    ) -> float:
        """Queries/second the full sparse layer of one replica sustains."""
        return 1.0 / self.sparse_layer_latency(config, cache_latency_reduction)

    # ------------------------------------------------------------------
    # End-to-end / model-wise
    # ------------------------------------------------------------------
    def latency_breakdown(self, config: DLRMConfig) -> LatencyEstimate:
        """Dense/sparse split of a monolithic replica's per-query latency (Fig. 3(b))."""
        cores = self._cluster.container_policy.model_wise_cores
        return LatencyEstimate(
            dense_s=self.dense_query_latency(config, cores=cores),
            sparse_s=self.sparse_layer_latency(config),
        )

    def model_wise_qps(
        self,
        config: DLRMConfig,
        cache_latency_reduction: float = 0.0,
    ) -> float:
        """Queries/second of one model-wise replica.

        Following the paper's Figure 4 reasoning, the monolithic replica is
        bounded by its slower layer; the co-location interference factor
        models contention between the two layers sharing one container.
        """
        policy = self._cluster.container_policy
        dense = self.dense_qps(config, cores=policy.model_wise_cores)
        sparse = self.sparse_layer_qps(config, cache_latency_reduction)
        return min(dense, sparse) * self._calibration.colocation_interference

    # ------------------------------------------------------------------
    # Batch-aware serving latency
    # ------------------------------------------------------------------
    def batch_model(self, role: str) -> BatchLatencyModel:
        """The batch/cost scaling model for one deployment role.

        ``role`` is a deployment role as used by
        :mod:`repro.core.plan`: ``"dense"``, ``"embedding"`` or
        ``"monolithic"``.
        """
        cal = self._calibration
        return BatchLatencyModel(
            kind=role,
            batch_exponent=cal.dense_batch_exponent,
            overhead_fraction=cal.sparse_batch_overhead_fraction,
        )

    def latency_for(
        self,
        batch_size: int,
        gathers: float | None = None,
        *,
        base_latency_s: float,
        role: str = "embedding",
        cache_hit_rate: float = 0.0,
        hit_cost_fraction: float = 0.25,
    ) -> float:
        """Seconds one replica needs to serve a batch of queries.

        ``base_latency_s`` is the planner's mean per-query estimate
        (``1 / per_replica_qps``); ``gathers`` is the batch's summed
        per-query gather-cost multiplier (normalised so one average query is
        1.0; ``None`` means an average-cost batch).  ``latency_for(1, 1.0)``
        returns ``base_latency_s`` exactly — the planner's estimates are the
        mean of this distribution.

        ``cache_hit_rate`` splits the gather term into cache hits (costing
        ``hit_cost_fraction`` of a DRAM gather) and misses, via
        :func:`cache_adjusted_multiplier`.  At the default hit rate of 0 the
        returned latency is bit-for-bit the historical no-cache value — the
        serving engine relies on this to keep cache-disabled runs (and all
        existing golden digests) unchanged.
        """
        if cache_hit_rate != 0.0 and gathers is not None:
            gathers = cache_adjusted_multiplier(
                gathers, cache_hit_rate, hit_cost_fraction
            )
        elif not 0.0 <= cache_hit_rate <= 1.0:
            raise ValueError("cache_hit_rate must be in [0, 1]")
        return self.batch_model(role).latency_for(base_latency_s, batch_size, gathers)

    def rpc_overhead_s(self) -> float:
        """Average added latency of ElasticRec's cross-shard RPC communication."""
        if self._cluster.is_gpu_system:
            return self._calibration.rpc_overhead_gpu_s
        return self._calibration.rpc_overhead_cpu_s

    def elastic_query_latency(self, config: DLRMConfig) -> float:
        """Average end-to-end latency of one query under ElasticRec sharding."""
        dense = self.dense_query_latency(config)
        sparse = self.sparse_layer_latency(config)
        return dense + sparse + self.rpc_overhead_s()
