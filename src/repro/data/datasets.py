"""Synthetic stand-ins for the real-world access traces of Figure 6.

The paper plots the sorted access frequency of embedding vectors for Amazon
Books, Criteo and MovieLens and reports, for MovieLens, that 94% of accesses
are covered by the hottest 10% of vectors.  The raw Kaggle/GroupLens datasets
are not redistributable and are not available offline, so — per the
substitution rule recorded in DESIGN.md — we model each trace with a Zipf
distribution whose table size matches the figure's x-axis extent and whose
locality ``P`` matches the skew visible in the figure (MovieLens' 94% is
stated explicitly in the paper; the other two are slightly less skewed).

The planner only ever consumes the sorted-frequency CDF, so a matched-skew
synthetic trace exercises exactly the same code paths as the real data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.distributions import AccessDistribution, ZipfDistribution

__all__ = [
    "SyntheticDataset",
    "amazon_books",
    "criteo",
    "movielens",
    "dataset_presets",
]


@dataclass(frozen=True)
class SyntheticDataset:
    """A named synthetic embedding-access workload.

    Attributes
    ----------
    name:
        Human-readable dataset name.
    num_items:
        Number of embedding vectors (rows of the table the trace indexes).
    locality:
        The paper's ``P`` metric: fraction of accesses covered by the hottest
        10% of vectors.
    description:
        Short provenance note (what real dataset this stands in for).
    """

    name: str
    num_items: int
    locality: float
    description: str = ""
    _distribution: AccessDistribution | None = field(
        default=None, repr=False, compare=False
    )

    def distribution(self) -> AccessDistribution:
        """Access distribution matching this dataset's size and skew."""
        if self._distribution is not None:
            return self._distribution
        dist = ZipfDistribution.from_locality(self.num_items, self.locality)
        object.__setattr__(self, "_distribution", dist)
        return dist

    def access_frequency_curve(self, num_points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """Sorted access-frequency curve as plotted in Figure 6.

        Returns ``(sorted_vector_id, access_frequency_percent)`` sampled at
        ``num_points`` log-spaced ranks, hottest first.  Frequencies are
        expressed in percent of total accesses, matching the figure's y-axis.
        """
        if num_points < 2:
            raise ValueError("num_points must be at least 2")
        dist = self.distribution()
        ranks = np.unique(
            np.clip(
                np.geomspace(1, self.num_items, num_points).astype(np.int64),
                1,
                self.num_items,
            )
        )
        if isinstance(dist, ZipfDistribution):
            freqs = dist.probability_range(0, self.num_items)[ranks - 1]
        else:  # pragma: no cover - presets are always Zipf
            freqs = dist.probabilities()[ranks - 1]
        return ranks - 1, freqs * 100.0

    def sample_trace(self, num_accesses: int, seed: int = 0) -> np.ndarray:
        """Draw a synthetic access trace of hot-sorted vector ids."""
        rng = np.random.default_rng(seed)
        return self.distribution().sample(num_accesses, rng)


def amazon_books(num_items: int = 2_000_000) -> SyntheticDataset:
    """Synthetic equivalent of the Amazon Books review trace (Figure 6(a))."""
    return SyntheticDataset(
        name="amazon-books",
        num_items=num_items,
        locality=0.86,
        description=(
            "Synthetic Zipf trace standing in for the Kaggle Amazon Books "
            "reviews dataset used in Figure 6(a)."
        ),
    )


def criteo(num_items: int = 2_000_000) -> SyntheticDataset:
    """Synthetic equivalent of the Criteo display-advertising trace (Figure 6(b))."""
    return SyntheticDataset(
        name="criteo",
        num_items=num_items,
        locality=0.90,
        description=(
            "Synthetic Zipf trace standing in for the Criteo Display "
            "Advertising Challenge dataset used in Figure 6(b)."
        ),
    )


def movielens(num_items: int = 50_000) -> SyntheticDataset:
    """Synthetic equivalent of the MovieLens trace (Figure 6(c)).

    The paper states that 94% of MovieLens accesses are covered by the top
    10% hottest embeddings; the synthetic trace matches that locality.
    """
    return SyntheticDataset(
        name="movielens",
        num_items=num_items,
        locality=0.94,
        description=(
            "Synthetic Zipf trace standing in for the GroupLens MovieLens "
            "dataset used in Figure 6(c)."
        ),
    )


def dataset_presets() -> dict[str, SyntheticDataset]:
    """All Figure 6 dataset presets keyed by name."""
    presets = [amazon_books(), criteo(), movielens()]
    return {preset.name: preset for preset in presets}
