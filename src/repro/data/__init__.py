"""Embedding access distributions, synthetic datasets and query generation.

The paper characterises embedding-table accesses with a power-law ("skewed")
distribution and a locality metric ``P``: the fraction of all accesses covered
by the hottest 10% of embedding vectors (Section V-C).  This subpackage
provides:

* :class:`~repro.data.distributions.ZipfDistribution` and
  :class:`~repro.data.distributions.EmpiricalDistribution` — access-frequency
  models over a hot-sorted embedding table, including analytic coverage /
  expected-unique computations that work at paper scale (tens of millions of
  rows) without materialising per-row arrays.
* :mod:`repro.data.datasets` — synthetic stand-ins for the Amazon Books,
  Criteo and MovieLens traces of Figure 6.
* :class:`~repro.data.query_gen.QueryGenerator` — produces the index/offset
  arrays that DLRM embedding bags (and ElasticRec's bucketization) consume.
"""

from repro.data.distributions import (
    AccessDistribution,
    EmpiricalDistribution,
    UniformDistribution,
    ZipfDistribution,
    locality_of_probabilities,
    solve_alpha_for_locality,
)
from repro.data.datasets import (
    SyntheticDataset,
    amazon_books,
    criteo,
    dataset_presets,
    movielens,
)
from repro.data.query_gen import Query, QueryGenerator, SparseLookup

__all__ = [
    "AccessDistribution",
    "ZipfDistribution",
    "EmpiricalDistribution",
    "UniformDistribution",
    "locality_of_probabilities",
    "solve_alpha_for_locality",
    "SyntheticDataset",
    "amazon_books",
    "criteo",
    "movielens",
    "dataset_presets",
    "Query",
    "QueryGenerator",
    "SparseLookup",
]
