"""Query generation for RecSys inference serving.

A query ranks a batch of items for one user; following the paper's
methodology (Section V-C, after DeepRecSys) the batch size defaults to 32.
Each query carries a dense input and, per embedding table, an index array and
an offset array in the ``EmbeddingBag`` convention used by DLRM and by the
paper's bucketization example (Figure 11): ``offsets[i]`` is the position in
``indices`` where the i-th batch element's lookups begin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.data.distributions import AccessDistribution

__all__ = ["SparseLookup", "Query", "TableWorkload", "QueryGenerator"]

DEFAULT_BATCH_SIZE = 32


@dataclass(frozen=True)
class SparseLookup:
    """Index/offset arrays addressing a single embedding table for one query."""

    table_id: int
    indices: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.int64)
        offsets = np.asarray(self.offsets, dtype=np.int64)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "offsets", offsets)
        if offsets.ndim != 1 or indices.ndim != 1:
            raise ValueError("indices and offsets must be one-dimensional")
        if offsets.size == 0:
            raise ValueError("offsets must be non-empty")
        if offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if offsets[-1] > indices.size:
            raise ValueError("offsets reference past the end of the index array")

    @property
    def batch_size(self) -> int:
        """Number of batch elements this lookup serves."""
        return int(self.offsets.size)

    @property
    def num_lookups(self) -> int:
        """Total number of embedding vectors gathered from this table."""
        return int(self.indices.size)

    def lookups_for_sample(self, sample: int) -> np.ndarray:
        """Index ids gathered for one batch element."""
        if not 0 <= sample < self.batch_size:
            raise IndexError(f"sample {sample} out of range for batch {self.batch_size}")
        start = int(self.offsets[sample])
        stop = int(self.offsets[sample + 1]) if sample + 1 < self.batch_size else self.num_lookups
        return self.indices[start:stop]


@dataclass(frozen=True)
class Query:
    """A single inference query: dense input plus one sparse lookup per table."""

    query_id: int
    dense_input: np.ndarray
    sparse_lookups: tuple[SparseLookup, ...]
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        dense = np.asarray(self.dense_input, dtype=np.float64)
        object.__setattr__(self, "dense_input", dense)
        object.__setattr__(self, "sparse_lookups", tuple(self.sparse_lookups))
        if dense.ndim != 2:
            raise ValueError("dense_input must have shape (batch, num_dense_features)")
        for lookup in self.sparse_lookups:
            if lookup.batch_size != self.batch_size:
                raise ValueError(
                    "all sparse lookups must share the query batch size "
                    f"({lookup.batch_size} != {self.batch_size})"
                )

    @property
    def batch_size(self) -> int:
        """Number of items ranked by this query."""
        return int(self.dense_input.shape[0])

    @property
    def num_tables(self) -> int:
        """Number of embedding tables the query touches."""
        return len(self.sparse_lookups)

    def lookup_for_table(self, table_id: int) -> SparseLookup:
        """The sparse lookup addressing ``table_id``."""
        for lookup in self.sparse_lookups:
            if lookup.table_id == table_id:
                return lookup
        raise KeyError(f"query {self.query_id} has no lookup for table {table_id}")

    def total_lookups(self) -> int:
        """Total embedding gathers across all tables."""
        return sum(lookup.num_lookups for lookup in self.sparse_lookups)


@dataclass(frozen=True)
class TableWorkload:
    """How one embedding table is accessed: skew plus pooling factor."""

    table_id: int
    distribution: AccessDistribution
    pooling: int

    def __post_init__(self) -> None:
        if self.pooling <= 0:
            raise ValueError(f"pooling must be positive, got {self.pooling}")

    @property
    def num_items(self) -> int:
        """Rows in the table this workload addresses."""
        return self.distribution.num_items


class QueryGenerator:
    """Generates synthetic inference queries for a set of embedding tables.

    Parameters
    ----------
    tables:
        One :class:`TableWorkload` per embedding table.
    batch_size:
        Items per query (paper default: 32).
    num_dense_features:
        Width of the continuous-feature input consumed by the bottom MLP.
    seed:
        Seed for the internal random generator; generation is deterministic
        for a given seed.
    """

    def __init__(
        self,
        tables: Sequence[TableWorkload],
        batch_size: int = DEFAULT_BATCH_SIZE,
        num_dense_features: int = 13,
        seed: int = 0,
    ) -> None:
        if not tables:
            raise ValueError("at least one table workload is required")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if num_dense_features <= 0:
            raise ValueError(f"num_dense_features must be positive, got {num_dense_features}")
        self._tables = tuple(tables)
        self._batch_size = int(batch_size)
        self._num_dense_features = int(num_dense_features)
        self._rng = np.random.default_rng(seed)
        self._next_query_id = 0

    @property
    def tables(self) -> tuple[TableWorkload, ...]:
        """Per-table workloads this generator draws from."""
        return self._tables

    @property
    def batch_size(self) -> int:
        """Items per generated query."""
        return self._batch_size

    @property
    def num_dense_features(self) -> int:
        """Width of generated dense inputs."""
        return self._num_dense_features

    def generate(self, arrival_time: float = 0.0) -> Query:
        """Generate one query."""
        dense = self._rng.random((self._batch_size, self._num_dense_features))
        lookups = []
        for table in self._tables:
            total = self._batch_size * table.pooling
            indices = table.distribution.sample(total, self._rng)
            offsets = np.arange(self._batch_size, dtype=np.int64) * table.pooling
            lookups.append(
                SparseLookup(table_id=table.table_id, indices=indices, offsets=offsets)
            )
        query = Query(
            query_id=self._next_query_id,
            dense_input=dense,
            sparse_lookups=tuple(lookups),
            arrival_time=arrival_time,
        )
        self._next_query_id += 1
        return query

    def generate_many(self, count: int, start_time: float = 0.0) -> list[Query]:
        """Generate ``count`` queries stamped with the same arrival time."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate(arrival_time=start_time) for _ in range(count)]

    def stream(self) -> Iterator[Query]:
        """Infinite stream of queries (arrival times left at zero)."""
        while True:
            yield self.generate()
