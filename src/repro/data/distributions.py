"""Embedding-table access distributions.

ElasticRec's utility-based allocation is driven entirely by the *access
frequency distribution* of embedding vectors: once a table is sorted by
hotness (Figure 8(b) of the paper), the planner only ever needs the CDF of
accesses over the sorted ranks (Algorithm 1, line 11) and, for the memory
utility analysis of Figures 14/17, the expected number of distinct vectors
touched by a stream of lookups.

Paper-scale tables hold tens of millions of rows, so this module provides
analytic implementations that never materialise per-row arrays unless the
table is small:

* :class:`ZipfDistribution` — rank-frequency power law ``p_i ∝ i^{-alpha}``
  with a hybrid exact-head / integral-tail generalized harmonic sum.
* :class:`EmpiricalDistribution` — built from observed per-row access counts
  (used for small tables and in tests as ground truth).
* :class:`UniformDistribution` — the no-locality reference point.

All distributions are expressed over *hot-sorted ranks*: rank 0 is the hottest
vector.  The paper's locality metric ``P`` (fraction of accesses covered by
the hottest 10% of vectors, Section V-C) maps onto :meth:`locality`.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

__all__ = [
    "AccessDistribution",
    "ZipfDistribution",
    "EmpiricalDistribution",
    "UniformDistribution",
    "MixtureDistribution",
    "DriftingDistribution",
    "DRIFT_SCHEDULES",
    "hot_prefix_rows",
    "locality_of_probabilities",
    "solve_alpha_for_locality",
]

#: Number of head ranks whose probabilities are computed exactly before the
#: integral tail approximation takes over.
_EXACT_HEAD = 1 << 16

#: Chunk size used when summing per-rank quantities over very large tables.
_CHUNK = 1 << 20

#: Default "hot" prefix used by the paper's locality metric P.
DEFAULT_TOP_FRACTION = 0.1


def _generalized_harmonic(n: int, alpha: float) -> float:
    """Return ``sum_{i=1}^{n} i^{-alpha}``.

    Exact for ``n <= _EXACT_HEAD``; otherwise the head is summed exactly and
    the tail is approximated by the midpoint integral
    ``∫_{m+1/2}^{n+1/2} x^{-alpha} dx`` which is accurate to well under 0.1%
    for the table sizes used in the paper.
    """
    if n <= 0:
        return 0.0
    head = min(n, _EXACT_HEAD)
    ranks = np.arange(1, head + 1, dtype=np.float64)
    total = float(np.sum(ranks ** (-alpha)))
    if n > head:
        lo = head + 0.5
        hi = n + 0.5
        if abs(alpha - 1.0) < 1e-12:
            total += math.log(hi / lo)
        else:
            total += (hi ** (1.0 - alpha) - lo ** (1.0 - alpha)) / (1.0 - alpha)
    return total


class AccessDistribution(abc.ABC):
    """Access-frequency model over the hot-sorted ranks of one embedding table."""

    def __init__(self, num_items: int) -> None:
        if num_items <= 0:
            raise ValueError(f"num_items must be positive, got {num_items}")
        self._num_items = int(num_items)

    @property
    def num_items(self) -> int:
        """Number of embedding vectors in the table."""
        return self._num_items

    @abc.abstractmethod
    def coverage(self, k: int) -> float:
        """Expected fraction of accesses that hit the ``k`` hottest vectors.

        ``coverage(0) == 0`` and ``coverage(num_items) == 1``.  This is the
        CDF used by Algorithm 1 (``CDF(j) - CDF(k)``).
        """

    @abc.abstractmethod
    def probabilities(self) -> np.ndarray:
        """Per-rank access probabilities, hottest first (may be large)."""

    @abc.abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` accesses; returns hot-sorted rank ids in ``[0, num_items)``."""

    @abc.abstractmethod
    def expected_unique(self, num_draws: int, lo: int = 0, hi: int | None = None) -> float:
        """Expected number of distinct ranks in ``[lo, hi)`` touched by ``num_draws`` accesses.

        ``num_draws`` counts accesses to the *whole* table; only those landing
        in the rank range contribute.  Used by the memory-utility analysis.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def coverage_range(self, lo: int, hi: int) -> float:
        """Fraction of accesses landing in the rank interval ``[lo, hi)``."""
        lo, hi = self._validate_range(lo, hi)
        return self.coverage(hi) - self.coverage(lo)

    def cdf(self, ks: Sequence[int]) -> np.ndarray:
        """Vector-valued :meth:`coverage` over an array of prefix lengths."""
        return np.array([self.coverage(int(k)) for k in ks], dtype=np.float64)

    def locality(self, top_fraction: float = DEFAULT_TOP_FRACTION) -> float:
        """The paper's locality metric ``P`` for an arbitrary hot prefix."""
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
        k = max(1, int(math.ceil(top_fraction * self.num_items)))
        return self.coverage(k)

    def _validate_range(self, lo: int, hi: int | None) -> tuple[int, int]:
        if hi is None:
            hi = self.num_items
        lo = int(lo)
        hi = int(hi)
        if not 0 <= lo <= hi <= self.num_items:
            raise ValueError(
                f"invalid rank range [{lo}, {hi}) for table with {self.num_items} rows"
            )
        return lo, hi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_items={self.num_items})"


class ZipfDistribution(AccessDistribution):
    """Rank-frequency power law ``p_i ∝ (i+1)^{-alpha}`` over hot-sorted ranks.

    ``alpha == 0`` degenerates to the uniform distribution; larger ``alpha``
    concentrates accesses on the hottest ranks.  Use
    :meth:`ZipfDistribution.from_locality` to construct a distribution with a
    prescribed paper-style locality ``P``.
    """

    def __init__(self, num_items: int, alpha: float) -> None:
        super().__init__(num_items)
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self._alpha = float(alpha)
        self._harmonic_total = _generalized_harmonic(self.num_items, self._alpha)
        head = min(self.num_items, _EXACT_HEAD)
        head_probs = np.arange(1, head + 1, dtype=np.float64) ** (-self._alpha)
        self._head_cdf = np.cumsum(head_probs) / self._harmonic_total

    @classmethod
    def from_locality(
        cls,
        num_items: int,
        locality: float,
        top_fraction: float = DEFAULT_TOP_FRACTION,
    ) -> "ZipfDistribution":
        """Build a Zipf distribution whose hottest ``top_fraction`` covers ``locality``."""
        alpha = solve_alpha_for_locality(num_items, locality, top_fraction)
        return cls(num_items, alpha)

    @property
    def alpha(self) -> float:
        """Power-law exponent."""
        return self._alpha

    def coverage(self, k: int) -> float:
        k = int(k)
        if k <= 0:
            return 0.0
        if k >= self.num_items:
            return 1.0
        return _generalized_harmonic(k, self._alpha) / self._harmonic_total

    def probabilities(self) -> np.ndarray:
        ranks = np.arange(1, self.num_items + 1, dtype=np.float64)
        return ranks ** (-self._alpha) / self._harmonic_total

    def probability_range(self, lo: int, hi: int | None = None) -> np.ndarray:
        """Per-rank probabilities restricted to ``[lo, hi)`` (0-based ranks)."""
        lo, hi = self._validate_range(lo, hi)
        ranks = np.arange(lo + 1, hi + 1, dtype=np.float64)
        return ranks ** (-self._alpha) / self._harmonic_total

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        if size < 0:
            raise ValueError("size must be non-negative")
        u = rng.random(size)
        head = len(self._head_cdf)
        head_coverage = float(self._head_cdf[-1]) if head else 0.0
        out = np.empty(size, dtype=np.int64)
        in_head = u <= head_coverage
        if np.any(in_head):
            out[in_head] = np.searchsorted(self._head_cdf, u[in_head], side="left")
        in_tail = ~in_head
        if np.any(in_tail):
            out[in_tail] = self._invert_tail(u[in_tail], head)
        return np.clip(out, 0, self.num_items - 1)

    def _invert_tail(self, u: np.ndarray, head: int) -> np.ndarray:
        """Continuous inverse-CDF for ranks beyond the exact head."""
        target_mass = u * self._harmonic_total - _generalized_harmonic(head, self._alpha)
        lo = head + 0.5
        if abs(self._alpha - 1.0) < 1e-12:
            x = lo * np.exp(target_mass)
        else:
            base = lo ** (1.0 - self._alpha) + target_mass * (1.0 - self._alpha)
            base = np.maximum(base, 1e-300)
            x = base ** (1.0 / (1.0 - self._alpha))
        ranks = np.floor(x - 0.5).astype(np.int64)
        return np.clip(ranks, head, self.num_items - 1)

    def expected_unique(self, num_draws: int, lo: int = 0, hi: int | None = None) -> float:
        lo, hi = self._validate_range(lo, hi)
        if num_draws <= 0 or lo == hi:
            return 0.0
        total = 0.0
        for start in range(lo, hi, _CHUNK):
            stop = min(start + _CHUNK, hi)
            ranks = np.arange(start + 1, stop + 1, dtype=np.float64)
            probs = ranks ** (-self._alpha) / self._harmonic_total
            # 1 - (1 - p)^D, computed in log space for numerical stability.
            total += float(np.sum(-np.expm1(num_draws * np.log1p(-probs))))
        return total


class UniformDistribution(ZipfDistribution):
    """All embedding vectors equally likely (``alpha == 0``)."""

    def __init__(self, num_items: int) -> None:
        super().__init__(num_items, alpha=0.0)


class EmpiricalDistribution(AccessDistribution):
    """Distribution built from observed per-row access counts.

    The counts are sorted descending internally so that, as everywhere else in
    this package, rank 0 refers to the hottest vector.  This mirrors the
    paper's preprocessing step of sorting the table by access frequency.
    """

    def __init__(self, counts: Sequence[float] | np.ndarray) -> None:
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 1:
            raise ValueError("counts must be one-dimensional")
        if counts.size == 0:
            raise ValueError("counts must be non-empty")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        total = float(counts.sum())
        if total <= 0:
            raise ValueError("counts must contain at least one access")
        super().__init__(counts.size)
        self._sorted_counts = np.sort(counts)[::-1]
        self._probs = self._sorted_counts / total
        self._cdf = np.cumsum(self._probs)
        # Guard against floating point drift at the end of the CDF.
        self._cdf[-1] = 1.0

    @classmethod
    def from_trace(cls, trace: Sequence[int] | np.ndarray, num_items: int) -> "EmpiricalDistribution":
        """Build from a raw access trace of item ids in ``[0, num_items)``."""
        trace = np.asarray(trace, dtype=np.int64)
        if trace.size == 0:
            raise ValueError("trace must be non-empty")
        if trace.min() < 0 or trace.max() >= num_items:
            raise ValueError("trace contains ids outside [0, num_items)")
        counts = np.bincount(trace, minlength=num_items).astype(np.float64)
        return cls(counts)

    def coverage(self, k: int) -> float:
        k = int(k)
        if k <= 0:
            return 0.0
        if k >= self.num_items:
            return 1.0
        return float(self._cdf[k - 1])

    def probabilities(self) -> np.ndarray:
        return self._probs.copy()

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        if size < 0:
            raise ValueError("size must be non-negative")
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def expected_unique(self, num_draws: int, lo: int = 0, hi: int | None = None) -> float:
        lo, hi = self._validate_range(lo, hi)
        if num_draws <= 0 or lo == hi:
            return 0.0
        probs = self._probs[lo:hi]
        nonzero = probs > 0
        return float(np.sum(-np.expm1(num_draws * np.log1p(-probs[nonzero]))))


class MixtureDistribution(AccessDistribution):
    """Convex mixture of two distributions over the same hot-sorted ranks.

    Every access picks the second component with probability ``weight`` and
    the first otherwise, so per-rank probabilities — and therefore
    :meth:`coverage` — are the exact weighted sums of the components'.  This
    is the instantaneous distribution a :class:`DriftingDistribution` exposes
    partway through a drift, and what the planner re-partitions against when
    a mid-run re-plan fires.
    """

    def __init__(
        self,
        start: AccessDistribution,
        end: AccessDistribution,
        weight: float,
    ) -> None:
        if start.num_items != end.num_items:
            raise ValueError(
                "mixture endpoints must cover the same table: "
                f"{start.num_items} vs {end.num_items} rows"
            )
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"weight must be in [0, 1], got {weight}")
        super().__init__(start.num_items)
        self._start = start
        self._end = end
        self._weight = float(weight)

    @property
    def weight(self) -> float:
        """Probability that an access draws from the end-point distribution."""
        return self._weight

    def coverage(self, k: int) -> float:
        w = self._weight
        return (1.0 - w) * self._start.coverage(k) + w * self._end.coverage(k)

    def probabilities(self) -> np.ndarray:
        w = self._weight
        return (1.0 - w) * self._start.probabilities() + w * self._end.probabilities()

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        if size < 0:
            raise ValueError("size must be non-negative")
        from_end = rng.random(size) < self._weight
        out = np.empty(size, dtype=np.int64)
        num_end = int(np.count_nonzero(from_end))
        if num_end < size:
            out[~from_end] = self._start.sample(size - num_end, rng)
        if num_end:
            out[from_end] = self._end.sample(num_end, rng)
        return out

    def expected_unique(self, num_draws: int, lo: int = 0, hi: int | None = None) -> float:
        lo, hi = self._validate_range(lo, hi)
        if num_draws <= 0 or lo == hi:
            return 0.0
        start, end = self._start, self._end
        if hasattr(start, "probability_range") and hasattr(end, "probability_range"):
            # Exact path when both endpoints expose per-rank probabilities in
            # chunks (the Zipf family): mix per rank, then 1 - (1-p)^D.
            w = self._weight
            total = 0.0
            for chunk_lo in range(lo, hi, _CHUNK):
                chunk_hi = min(chunk_lo + _CHUNK, hi)
                probs = (1.0 - w) * start.probability_range(chunk_lo, chunk_hi)
                probs += w * end.probability_range(chunk_lo, chunk_hi)
                total += float(np.sum(-np.expm1(num_draws * np.log1p(-probs))))
            return total
        # Fallback: weighted sum of the components' expectations.  Exact only
        # when the components' hot ranks coincide; documented approximation.
        w = self._weight
        return (1.0 - w) * start.expected_unique(num_draws, lo, hi) + w * end.expected_unique(num_draws, lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MixtureDistribution({self._start!r}, {self._end!r}, "
            f"weight={self._weight})"
        )


#: Drift schedules understood by :class:`DriftingDistribution`.
DRIFT_SCHEDULES = ("step", "linear", "oscillate")


class DriftingDistribution:
    """Time-indexed interpolation between two :class:`AccessDistribution` endpoints.

    Not itself an :class:`AccessDistribution` — it is a *schedule* over them:
    :meth:`weight_at` maps a simulation time to the mixture weight of the end
    endpoint, and :meth:`at` materialises the instantaneous distribution.  At
    weight exactly ``0.0`` / ``1.0`` the original endpoint objects are
    returned, so the boundaries of a drift are bit-identical with static runs
    against the endpoints.

    Schedules (``at_s`` is when the drift starts; ``duration_s`` scales it):

    * ``step`` — weight jumps from 0 to 1 at ``at_s``; ``duration_s`` unused.
    * ``linear`` — weight ramps 0 → 1 over ``[at_s, at_s + duration_s]``.
    * ``oscillate`` — raised-cosine oscillation with period ``duration_s``
      starting (at weight 0) at ``at_s``; hits weight 1 every half period.
    """

    def __init__(
        self,
        start: AccessDistribution,
        end: AccessDistribution,
        schedule: str = "linear",
        at_s: float = 0.0,
        duration_s: float = 0.0,
    ) -> None:
        if start.num_items != end.num_items:
            raise ValueError(
                "drift endpoints must cover the same table: "
                f"{start.num_items} vs {end.num_items} rows"
            )
        if schedule not in DRIFT_SCHEDULES:
            known = ", ".join(DRIFT_SCHEDULES)
            raise ValueError(f"unknown drift schedule {schedule!r}; choose from {known}")
        if at_s < 0.0:
            raise ValueError(f"drift start must be non-negative, got {at_s}")
        if schedule != "step" and duration_s <= 0.0:
            raise ValueError(
                f"{schedule} drift needs a positive duration, got {duration_s}"
            )
        self._start = start
        self._end = end
        self._schedule = schedule
        self._at_s = float(at_s)
        self._duration_s = float(duration_s)

    @property
    def start(self) -> AccessDistribution:
        """The distribution before the drift begins."""
        return self._start

    @property
    def end(self) -> AccessDistribution:
        """The distribution the drift moves toward."""
        return self._end

    @property
    def schedule(self) -> str:
        """One of :data:`DRIFT_SCHEDULES`."""
        return self._schedule

    @property
    def num_items(self) -> int:
        """Number of embedding vectors in the (shared) table."""
        return self._start.num_items

    def weight_at(self, t: float | np.ndarray) -> float | np.ndarray:
        """Mixture weight of the end endpoint at simulation time ``t``.

        Accepts a scalar or an array (vectorised over query arrival times);
        results are clamped to ``[0, 1]``.
        """
        times = np.asarray(t, dtype=np.float64)
        elapsed = times - self._at_s
        if self._schedule == "step":
            weights = np.where(elapsed >= 0.0, 1.0, 0.0)
        elif self._schedule == "linear":
            weights = np.clip(elapsed / self._duration_s, 0.0, 1.0)
        else:  # oscillate
            phase = 2.0 * math.pi * elapsed / self._duration_s
            weights = np.where(elapsed >= 0.0, 0.5 * (1.0 - np.cos(phase)), 0.0)
            weights = np.clip(weights, 0.0, 1.0)
        if np.isscalar(t) or times.ndim == 0:
            return float(weights)
        return weights

    def at(self, t: float) -> AccessDistribution:
        """Instantaneous distribution at time ``t``.

        Returns the *endpoint objects themselves* when the weight is exactly
        0 or 1, and a :class:`MixtureDistribution` in between.
        """
        weight = float(self.weight_at(float(t)))
        if weight <= 0.0:
            return self._start
        if weight >= 1.0:
            return self._end
        return MixtureDistribution(self._start, self._end, weight)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DriftingDistribution({self._start!r} -> {self._end!r}, "
            f"schedule={self._schedule!r}, at_s={self._at_s}, "
            f"duration_s={self._duration_s})"
        )


def hot_prefix_rows(
    distribution: AccessDistribution,
    *,
    row_fraction: float | None = None,
    coverage: float | None = None,
) -> int:
    """Rows in a distribution's hot prefix, by one shared definition.

    Every "hot set" in the codebase is a prefix of the hot-sorted ranks; the
    two ways of sizing it both live here so planners and cost models agree on
    which rows are hot:

    * ``row_fraction`` — the paper's locality parameterisation: the hottest
      ``ceil(row_fraction * num_items)`` rows (at least one).  This is the
      prefix :class:`~repro.serving.workload.SkewedCostModel` charges
      ``hot_cost_fraction`` for.
    * ``coverage`` — the caching literature's parameterisation: the smallest
      prefix whose accesses cover the target hit rate, found by bisection.
      This is the prefix ``CachedModelWisePlanner`` sizes its HBM cache from.

    Exactly one of the two must be given.  The definitions meet through
    :meth:`AccessDistribution.coverage`: for any distribution,
    ``hot_prefix_rows(d, coverage=d.coverage(hot_prefix_rows(d,
    row_fraction=f)))`` returns the same prefix (modulo flat stretches of the
    CDF, where the coverage form picks the smallest equivalent prefix).
    """
    if (row_fraction is None) == (coverage is None):
        raise ValueError("pass exactly one of row_fraction or coverage")
    num_items = distribution.num_items
    if row_fraction is not None:
        if not 0.0 < row_fraction <= 1.0:
            raise ValueError("row_fraction must be in (0, 1]")
        return max(1, int(math.ceil(row_fraction * num_items)))
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    lo, hi = 1, num_items
    while lo < hi:
        mid = (lo + hi) // 2
        if distribution.coverage(mid) >= coverage:
            hi = mid
        else:
            lo = mid + 1
    return lo


def locality_of_probabilities(
    probabilities: Sequence[float] | np.ndarray,
    top_fraction: float = DEFAULT_TOP_FRACTION,
) -> float:
    """Locality metric ``P`` of an already hot-sorted probability vector."""
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.ndim != 1 or probs.size == 0:
        raise ValueError("probabilities must be a non-empty 1-D array")
    k = max(1, int(math.ceil(top_fraction * probs.size)))
    return float(probs[:k].sum() / probs.sum())


def solve_alpha_for_locality(
    num_items: int,
    locality: float,
    top_fraction: float = DEFAULT_TOP_FRACTION,
    tolerance: float = 1e-4,
    max_alpha: float = 8.0,
) -> float:
    """Find the Zipf exponent whose hottest ``top_fraction`` covers ``locality``.

    The paper parameterises workloads by ``P`` (10%, 50%, 90%, 94%...); this
    inverts that parameterisation via bisection.  ``locality`` values at or
    below ``top_fraction`` (no skew) return ``alpha == 0``.
    """
    if not 0.0 < locality <= 1.0:
        raise ValueError(f"locality must be in (0, 1], got {locality}")
    if num_items <= 1:
        return 0.0
    k = max(1, int(math.ceil(top_fraction * num_items)))
    if k >= num_items or locality <= top_fraction + 1e-12:
        return 0.0

    def coverage_at(alpha: float) -> float:
        return _generalized_harmonic(k, alpha) / _generalized_harmonic(num_items, alpha)

    lo, hi = 0.0, max_alpha
    if coverage_at(hi) < locality:
        # Even an extremely skewed distribution cannot reach the requested
        # locality (possible only for tiny tables); return the most skewed.
        return hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if coverage_at(mid) < locality:
            lo = mid
        else:
            hi = mid
        if hi - lo < tolerance:
            break
    return 0.5 * (lo + hi)
