"""Kubernetes-like container-orchestration substrate.

The paper deploys its shards as containers orchestrated by Kubernetes v1.26
with Horizontal Pod Autoscaling and Linkerd load balancing (Section V-B).
This subpackage provides the pieces of that stack the evaluation depends on:

* :mod:`repro.cluster.resources` / :mod:`repro.cluster.container` /
  :mod:`repro.cluster.node` — resource requests, container lifecycle (with
  cold-start latency proportional to the model bytes a replica must load) and
  node capacity accounting.
* :mod:`repro.cluster.deployment` — a named replica set of one container spec.
* :mod:`repro.cluster.scheduler` — bin-packing placement of replicas onto
  nodes.
* :mod:`repro.cluster.autoscaler` — the HPA control loop (throughput and
  latency targets, scale-up/down stabilisation).
* :mod:`repro.cluster.loadbalancer` — generic replica-selection primitives
  (round-robin, least-loaded, power-of-two choices) that the serving engine's
  routing policies (:mod:`repro.serving.routing`) build on.
* :mod:`repro.cluster.metrics` — a Prometheus-like metric registry.
* :mod:`repro.cluster.cluster` — the facade tying nodes, deployments, the
  scheduler and the autoscaler together for the dynamic-traffic experiments.
"""

from repro.cluster.resources import ResourceCapacity, ResourceRequest
from repro.cluster.container import Container, ContainerSpec, ContainerState
from repro.cluster.node import Node
from repro.cluster.deployment import Deployment
from repro.cluster.scheduler import BinPackingScheduler, SchedulingError
from repro.cluster.autoscaler import HorizontalPodAutoscaler
from repro.cluster.loadbalancer import (
    LeastOutstandingBalancer,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
)
from repro.cluster.metrics import MetricSample, MetricsRegistry
from repro.cluster.cluster import Cluster
from repro.cluster.manifests import plan_manifests, render_manifests

__all__ = [
    "plan_manifests",
    "render_manifests",
    "ResourceRequest",
    "ResourceCapacity",
    "ContainerSpec",
    "Container",
    "ContainerState",
    "Node",
    "Deployment",
    "BinPackingScheduler",
    "SchedulingError",
    "HorizontalPodAutoscaler",
    "RoundRobinBalancer",
    "LeastOutstandingBalancer",
    "PowerOfTwoBalancer",
    "MetricSample",
    "MetricsRegistry",
    "Cluster",
]
