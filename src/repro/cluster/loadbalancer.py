"""Replica selection policies (the Linkerd stand-in).

The paper uses Linkerd to route queries to shard replicas.  Two policies are
provided: plain round-robin and least-outstanding-requests (Linkerd's default
EWMA-like behaviour approximated by picking the replica with the fewest
in-flight requests).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

__all__ = ["RoundRobinBalancer", "LeastOutstandingBalancer"]

ReplicaT = TypeVar("ReplicaT")


class RoundRobinBalancer:
    """Cycles through the ready replicas of each deployment."""

    def __init__(self) -> None:
        self._cursors: dict[str, int] = {}

    def pick(self, deployment_name: str, replicas: Sequence[ReplicaT]) -> ReplicaT:
        """Select the next replica for the deployment."""
        if not replicas:
            raise ValueError(f"deployment {deployment_name!r} has no ready replicas")
        cursor = self._cursors.get(deployment_name, 0) % len(replicas)
        self._cursors[deployment_name] = cursor + 1
        return replicas[cursor]


class LeastOutstandingBalancer:
    """Selects the replica with the fewest outstanding (queued) requests."""

    def __init__(self, outstanding: Callable[[ReplicaT], float]) -> None:
        self._outstanding = outstanding

    def pick(self, deployment_name: str, replicas: Sequence[ReplicaT]) -> ReplicaT:
        """Select the least-loaded ready replica for the deployment."""
        if not replicas:
            raise ValueError(f"deployment {deployment_name!r} has no ready replicas")
        return min(replicas, key=self._outstanding)
