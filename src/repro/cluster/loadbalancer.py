"""Generic replica-selection primitives (the Linkerd stand-in).

The paper uses Linkerd to route queries to shard replicas.  This module holds
the *generic* selection mechanics — they work on any replica type given a key
function — and :mod:`repro.serving.routing` builds the simulator-facing
routing policies on top of them.  Three primitives are provided:

* :class:`RoundRobinBalancer` — plain per-deployment round-robin;
* :class:`LeastOutstandingBalancer` — pick the replica minimising a caller
  supplied load key (Linkerd's EWMA-like default approximated by fewest
  in-flight requests, or by least pending work);
* :class:`PowerOfTwoBalancer` — sample two random replicas and keep the less
  loaded one, the classic "power of two choices" trick that gets most of the
  benefit of least-loaded routing with O(1) state inspection.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = ["RoundRobinBalancer", "LeastOutstandingBalancer", "PowerOfTwoBalancer"]

ReplicaT = TypeVar("ReplicaT")


class RoundRobinBalancer:
    """Cycles through the ready replicas of each deployment."""

    def __init__(self) -> None:
        self._cursors: dict[str, int] = {}

    def pick_index(self, deployment_name: str, pool_size: int) -> int:
        """Advance the deployment's cursor and return the pick's pool index.

        Shared by the scalar and vectorized routing paths so both consume the
        cursor identically.
        """
        if pool_size < 1:
            raise ValueError(f"deployment {deployment_name!r} has no ready replicas")
        cursor = self._cursors.get(deployment_name, 0) % pool_size
        self._cursors[deployment_name] = cursor + 1
        return cursor

    def pick(self, deployment_name: str, replicas: Sequence[ReplicaT]) -> ReplicaT:
        """Select the next replica for the deployment."""
        return replicas[self.pick_index(deployment_name, len(replicas))]

    def reset(self) -> None:
        """Forget every deployment's cursor."""
        self._cursors.clear()


class LeastOutstandingBalancer:
    """Selects the replica minimising a caller-supplied load key.

    Ties resolve to the earliest replica in the sequence, so callers that pass
    replicas in a stable order get deterministic selections.
    """

    def __init__(self, outstanding: Callable[[ReplicaT], float]) -> None:
        self._outstanding = outstanding

    def pick(self, deployment_name: str, replicas: Sequence[ReplicaT]) -> ReplicaT:
        """Select the least-loaded ready replica for the deployment."""
        if not replicas:
            raise ValueError(f"deployment {deployment_name!r} has no ready replicas")
        return min(replicas, key=self._outstanding)


class PowerOfTwoBalancer:
    """Samples two distinct replicas uniformly and keeps the less loaded one."""

    def __init__(
        self,
        outstanding: Callable[[ReplicaT], float],
        rng: np.random.Generator | None = None,
    ) -> None:
        self._outstanding = outstanding
        self._rng = rng or np.random.default_rng()

    def reset(self, rng: np.random.Generator) -> None:
        """Swap in a fresh random source (for reproducible runs)."""
        self._rng = rng

    def pick_pair(self, pool_size: int) -> tuple[int, int]:
        """Draw two distinct pool indices from the balancer's RNG.

        Shared by the scalar and vectorized routing paths so both consume the
        random stream identically.
        """
        first, second = self._rng.choice(pool_size, size=2, replace=False)
        return int(first), int(second)

    def pick(self, deployment_name: str, replicas: Sequence[ReplicaT]) -> ReplicaT:
        """Select the better of two uniformly sampled replicas."""
        if not replicas:
            raise ValueError(f"deployment {deployment_name!r} has no ready replicas")
        if len(replicas) == 1:
            return replicas[0]
        first, second = self.pick_pair(len(replicas))
        a, b = replicas[first], replicas[second]
        return a if self._outstanding(a) <= self._outstanding(b) else b
