"""Horizontal Pod Autoscaling (HPA) control loop.

Implements the Kubernetes HPA semantics the paper relies on (Sections II-B
and IV-D): every evaluation interval the observed metric of a deployment is
compared against its target and the desired replica count becomes
``ceil(current * observed / target)``, clamped to the deployment's bounds.
Scale-down decisions are additionally passed through a stabilisation window
(the maximum desired value seen recently) to avoid thrashing, mirroring the
``--horizontal-pod-autoscaler-downscale-stabilization`` behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.deployment import Deployment
from repro.cluster.metrics import MetricsRegistry

__all__ = ["HorizontalPodAutoscaler", "ScalingDecision"]


@dataclass(frozen=True)
class ScalingDecision:
    """The outcome of one HPA evaluation of one deployment."""

    deployment: str
    timestamp: float
    observed: float | None
    current_replicas: int
    desired_replicas: int

    @property
    def changed(self) -> bool:
        """Whether the desired replica count differs from the current one."""
        return self.desired_replicas != self.current_replicas


@dataclass
class HorizontalPodAutoscaler:
    """Evaluates HPA targets and updates deployments' desired replica counts."""

    evaluation_interval_s: float = 15.0
    metric_window_s: float = 30.0
    downscale_stabilization_s: float = 120.0
    tolerance: float = 0.05
    _last_evaluation: float = field(default=float("-inf"), init=False)
    _desired_history: dict[str, list[tuple[float, int]]] = field(default_factory=dict, init=False)
    _capacity_loss: dict[str, float] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if self.evaluation_interval_s <= 0 or self.metric_window_s <= 0:
            raise ValueError("intervals must be positive")
        if self.downscale_stabilization_s < 0:
            raise ValueError("downscale_stabilization_s must be non-negative")
        if not 0 <= self.tolerance < 1:
            raise ValueError("tolerance must be in [0, 1)")

    def should_evaluate(self, now: float) -> bool:
        """Whether the evaluation interval has elapsed since the last run."""
        return now - self._last_evaluation >= self.evaluation_interval_s

    def notice_capacity_loss(self, deployment_name: str, now: float = 0.0) -> None:
        """Flag a deployment whose capacity was lost to a failure.

        While the flag is set the HPA never recommends below the current
        desired count: a crash-induced throughput dip must not trigger a
        scale-down on top of the failure.  The flag clears once the active
        replicas catch back up with the desired count — or after one
        downscale-stabilisation window, so replacements that can *never* be
        placed (a permanently drained pool) do not pin the desired count for
        the rest of the run.
        """
        self._capacity_loss[deployment_name] = now

    def evaluate(
        self,
        deployments: list[Deployment],
        metrics: MetricsRegistry,
        now: float,
    ) -> list[ScalingDecision]:
        """Run one HPA pass over every deployment with an HPA target."""
        self._last_evaluation = now
        decisions = []
        for deployment in deployments:
            if deployment.hpa is None:
                continue
            decisions.append(self._evaluate_one(deployment, metrics, now))
        return decisions

    def _evaluate_one(
        self, deployment: Deployment, metrics: MetricsRegistry, now: float
    ) -> ScalingDecision:
        current = max(len(deployment.active_replicas), deployment.min_replicas)
        observed = deployment.observed_metric(metrics, now, self.metric_window_s)
        if now < self.metric_window_s:
            # The metric window has not filled yet; rates computed over it
            # would be underestimated, so hold the current size.
            observed = None
        if observed is None:
            # No signal yet (e.g. no traffic recorded): hold the current size.
            desired = deployment.desired_replicas
            return ScalingDecision(deployment.name, now, None, current, desired)

        ratio = observed / deployment.hpa.target_value
        if abs(ratio - 1.0) <= self.tolerance:
            raw_desired = current
        else:
            raw_desired = max(1, math.ceil(current * ratio))

        flagged_at = self._capacity_loss.get(deployment.name)
        if flagged_at is not None:
            caught_up = len(deployment.active_replicas) >= deployment.desired_replicas
            expired = now - flagged_at > self.downscale_stabilization_s
            if caught_up or expired:
                self._capacity_loss.pop(deployment.name, None)
            else:
                # Replacements for failed capacity are still materialising:
                # hold the desired count so the failure-induced metric dip
                # cannot scale the deployment down on top of the outage.
                raw_desired = max(raw_desired, deployment.desired_replicas)

        desired = self._stabilize(deployment.name, raw_desired, current, now)
        desired = min(max(desired, deployment.min_replicas), deployment.max_replicas)
        deployment.desired_replicas = desired
        return ScalingDecision(deployment.name, now, observed, current, desired)

    def _stabilize(self, name: str, raw_desired: int, current: int, now: float) -> int:
        """Apply the downscale stabilisation window."""
        history = self._desired_history.setdefault(name, [])
        history.append((now, raw_desired))
        cutoff = now - self.downscale_stabilization_s
        self._desired_history[name] = [(t, d) for t, d in history if t >= cutoff]
        if raw_desired >= current:
            return raw_desired
        # Scale down only to the maximum recommendation seen during the window.
        return max(d for _, d in self._desired_history[name])
