"""Kubernetes manifest generation for deployment plans.

The paper's *deployment module* (Figure 7) "generates containers for each of
the model shard types and configures the deployment policy".  This module
renders a :class:`~repro.core.plan.DeploymentPlan` into Kubernetes-style
``Deployment`` and ``HorizontalPodAutoscaler`` manifests so the plan can be
inspected (or, in a real cluster, applied) in the form Kubernetes consumes.

The YAML emitter is intentionally minimal — plain mappings, sequences and
scalars — to avoid a dependency on PyYAML; the structure mirrors
``apps/v1 Deployment`` and ``autoscaling/v2 HorizontalPodAutoscaler`` objects
with the custom per-shard metrics the paper drives HPA with (per-replica QPS
for sparse shards, p95 latency for dense shards).
"""

from __future__ import annotations

from typing import Any

from repro.core.plan import DeploymentPlan, ShardDeployment

__all__ = [
    "deployment_manifest",
    "hpa_manifest",
    "plan_manifests",
    "render_manifests",
    "to_yaml",
]

_INDENT = "  "


def _sanitize(name: str) -> str:
    """Kubernetes object names: lowercase alphanumerics and dashes."""
    cleaned = "".join(c if c.isalnum() or c == "-" else "-" for c in name.lower())
    return cleaned.strip("-")


def _scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    needs_quotes = text == "" or any(c in text for c in ":#{}[],&*?|-<>=!%@`") or text != text.strip()
    if needs_quotes:
        escaped = text.replace('"', '\\"')
        return f'"{escaped}"'
    return text


def to_yaml(data: Any, indent: int = 0) -> str:
    """Render nested dicts/lists/scalars as YAML (minimal, dependency-free)."""
    prefix = _INDENT * indent
    if isinstance(data, dict):
        if not data:
            return f"{prefix}{{}}"
        lines = []
        for key, value in data.items():
            if isinstance(value, (dict, list)) and value:
                lines.append(f"{prefix}{key}:")
                lines.append(to_yaml(value, indent + 1))
            else:
                rendered = to_yaml(value, 0) if not isinstance(value, (dict, list)) else "{}"
                lines.append(f"{prefix}{key}: {rendered.strip()}")
        return "\n".join(lines)
    if isinstance(data, list):
        if not data:
            return f"{prefix}[]"
        lines = []
        for item in data:
            if isinstance(item, (dict, list)) and item:
                body = to_yaml(item, indent + 1)
                first, _, rest = body.lstrip().partition("\n")
                lines.append(f"{prefix}- {first}")
                if rest:
                    lines.append(rest)
            else:
                lines.append(f"{prefix}- {_scalar(item)}")
        return "\n".join(lines)
    return f"{prefix}{_scalar(data)}"


def deployment_manifest(plan: DeploymentPlan, shard: ShardDeployment) -> dict[str, Any]:
    """An ``apps/v1 Deployment`` object for one shard type."""
    name = _sanitize(shard.name)
    labels = {
        "app": _sanitize(plan.workload.name),
        "elasticrec.dev/role": shard.role,
        "elasticrec.dev/strategy": plan.strategy,
    }
    memory_mi = int(round(shard.per_replica_memory_bytes / (1024 * 1024)))
    resources: dict[str, Any] = {
        "requests": {"cpu": str(shard.cores), "memory": f"{memory_mi}Mi"},
        "limits": {"cpu": str(shard.cores), "memory": f"{memory_mi}Mi"},
    }
    if shard.gpus:
        resources["requests"]["nvidia.com/gpu"] = str(shard.gpus)
        resources["limits"]["nvidia.com/gpu"] = str(shard.gpus)
    container: dict[str, Any] = {
        "name": name,
        "image": f"elasticrec/{shard.role}-shard:latest",
        "ports": [{"containerPort": 50051, "name": "grpc"}],
        "resources": resources,
        "readinessProbe": {
            "grpc": {"port": 50051},
            "initialDelaySeconds": int(round(shard.startup_s)),
        },
    }
    if shard.embedding_shard is not None:
        container["env"] = [
            {"name": "TABLE_ID", "value": str(shard.embedding_shard.table_id)},
            {"name": "SHARD_START_ROW", "value": str(shard.embedding_shard.start_row)},
            {"name": "SHARD_END_ROW", "value": str(shard.embedding_shard.end_row)},
        ]
    return {
        "apiVersion": "apps/v1",
        "kind": "Deployment",
        "metadata": {"name": name, "labels": labels},
        "spec": {
            "replicas": shard.replicas,
            "selector": {"matchLabels": {"app": labels["app"], "shard": name}},
            "template": {
                "metadata": {"labels": {"app": labels["app"], "shard": name}},
                "spec": {"containers": [container]},
            },
        },
    }


def hpa_manifest(plan: DeploymentPlan, shard: ShardDeployment) -> dict[str, Any] | None:
    """An ``autoscaling/v2 HorizontalPodAutoscaler`` for one shard type (if any)."""
    if shard.hpa is None:
        return None
    name = _sanitize(shard.name)
    if shard.hpa.is_throughput_target:
        metric = {
            "type": "Pods",
            "pods": {
                "metric": {"name": "queries_per_second"},
                "target": {
                    "type": "AverageValue",
                    "averageValue": f"{shard.hpa.target_value:.1f}",
                },
            },
        }
    else:
        metric = {
            "type": "Pods",
            "pods": {
                "metric": {"name": "p95_latency_seconds"},
                "target": {
                    "type": "AverageValue",
                    "averageValue": f"{shard.hpa.target_value:.3f}",
                },
            },
        }
    return {
        "apiVersion": "autoscaling/v2",
        "kind": "HorizontalPodAutoscaler",
        "metadata": {"name": name},
        "spec": {
            "scaleTargetRef": {"apiVersion": "apps/v1", "kind": "Deployment", "name": name},
            "minReplicas": 1,
            "maxReplicas": max(shard.replicas * 4, 8),
            "metrics": [metric],
        },
    }


def plan_manifests(plan: DeploymentPlan) -> list[dict[str, Any]]:
    """All Deployment and HPA objects of a plan, in apply order."""
    manifests: list[dict[str, Any]] = []
    for shard in plan.deployments:
        manifests.append(deployment_manifest(plan, shard))
        hpa = hpa_manifest(plan, shard)
        if hpa is not None:
            manifests.append(hpa)
    return manifests


def render_manifests(plan: DeploymentPlan) -> str:
    """The plan as a multi-document YAML string (``---``-separated)."""
    documents = [to_yaml(manifest) for manifest in plan_manifests(plan)]
    return "\n---\n".join(documents) + "\n"
