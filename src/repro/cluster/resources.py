"""Resource requests and node capacities (cores, memory, GPUs)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResourceRequest", "ResourceCapacity"]


@dataclass(frozen=True)
class ResourceRequest:
    """Resources one container replica requests from the scheduler."""

    cores: float
    memory_bytes: float
    gpus: int = 0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.gpus < 0:
            raise ValueError("gpus must be non-negative")

    @property
    def memory_gb(self) -> float:
        """Requested memory in GB."""
        return self.memory_bytes / 1e9

    def scaled(self, count: int) -> "ResourceRequest":
        """The aggregate request of ``count`` identical replicas."""
        if count <= 0:
            raise ValueError("count must be positive")
        return ResourceRequest(
            cores=self.cores * count,
            memory_bytes=self.memory_bytes * count,
            gpus=self.gpus * count,
        )


@dataclass
class ResourceCapacity:
    """Mutable free-capacity tracker of one node."""

    cores: float
    memory_bytes: float
    gpus: int = 0

    def __post_init__(self) -> None:
        if self.cores < 0 or self.memory_bytes < 0 or self.gpus < 0:
            raise ValueError("capacities must be non-negative")

    def fits(self, request: ResourceRequest) -> bool:
        """Whether the request fits in the remaining capacity."""
        return (
            request.cores <= self.cores + 1e-9
            and request.memory_bytes <= self.memory_bytes + 1e-6
            and request.gpus <= self.gpus
        )

    def allocate(self, request: ResourceRequest) -> None:
        """Reserve the request's resources; raises if they do not fit."""
        if not self.fits(request):
            raise ValueError("resource request does not fit in the remaining capacity")
        self.cores -= request.cores
        self.memory_bytes -= request.memory_bytes
        self.gpus -= request.gpus

    def release(self, request: ResourceRequest) -> None:
        """Return previously allocated resources."""
        self.cores += request.cores
        self.memory_bytes += request.memory_bytes
        self.gpus += request.gpus

    def copy(self) -> "ResourceCapacity":
        """Independent copy of the current free capacity."""
        return ResourceCapacity(self.cores, self.memory_bytes, self.gpus)
