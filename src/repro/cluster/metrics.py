"""A minimal Prometheus-like metric registry.

The paper uses a Prometheus metrics server to collect CPU usage, memory
consumption, tail latency and QPS (Section V-B).  The registry here stores
timestamped samples per metric name and supports the windowed aggregations
the autoscaler and the experiments need: rates, means and percentiles over a
trailing window.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

__all__ = ["MetricSample", "MetricsRegistry"]


@dataclass(frozen=True)
class MetricSample:
    """One observation of a metric."""

    timestamp: float
    value: float


class MetricsRegistry:
    """Stores samples per metric name; query helpers operate on trailing windows."""

    def __init__(self) -> None:
        self._samples: dict[str, list[MetricSample]] = {}

    def record(self, name: str, value: float, timestamp: float) -> None:
        """Append one sample (timestamps must be non-decreasing per metric)."""
        samples = self._samples.setdefault(name, [])
        if samples and timestamp < samples[-1].timestamp:
            raise ValueError(
                f"samples for {name!r} must be recorded in time order "
                f"({timestamp} < {samples[-1].timestamp})"
            )
        samples.append(MetricSample(timestamp=timestamp, value=value))

    def prune(self, before: float) -> None:
        """Drop samples with ``timestamp <= before`` from every metric.

        Every query helper reads a trailing window, so pruning behind the
        oldest window any consumer will ever ask for changes no answer.  The
        serving engine calls this on streamed (memory-bounded) runs, where
        per-interval metric history would otherwise grow with the horizon.
        """
        for name, samples in self._samples.items():
            timestamps = [s.timestamp for s in samples]
            cut = bisect.bisect_right(timestamps, before)
            if cut:
                del samples[:cut]

    def names(self) -> list[str]:
        """All metric names with at least one sample."""
        return sorted(self._samples)

    def samples(self, name: str) -> list[MetricSample]:
        """All samples of one metric (empty list if unknown)."""
        return list(self._samples.get(name, []))

    def _window(self, name: str, now: float, window_s: float) -> list[MetricSample]:
        """Samples in the half-open trailing window ``(now - window_s, now]``."""
        samples = self._samples.get(name, [])
        if not samples:
            return []
        cutoff = now - window_s
        timestamps = [s.timestamp for s in samples]
        start = bisect.bisect_right(timestamps, cutoff)
        end = bisect.bisect_right(timestamps, now)
        return samples[start:end]

    def count(self, name: str, now: float, window_s: float) -> int:
        """Number of samples in the trailing window."""
        return len(self._window(name, now, window_s))

    def rate(self, name: str, now: float, window_s: float) -> float:
        """Samples per second over the trailing window (event-counting metrics)."""
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        return self.count(name, now, window_s) / window_s

    def mean(self, name: str, now: float, window_s: float) -> float | None:
        """Average sample value over the trailing window."""
        window = self._window(name, now, window_s)
        if not window:
            return None
        return float(np.mean([s.value for s in window]))

    def sum(self, name: str, now: float, window_s: float) -> float:
        """Sum of sample values over the trailing window."""
        window = self._window(name, now, window_s)
        return float(np.sum([s.value for s in window])) if window else 0.0

    def percentile(
        self, name: str, percentile: float, now: float, window_s: float
    ) -> float | None:
        """Percentile of sample values over the trailing window."""
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        window = self._window(name, now, window_s)
        if not window:
            return None
        return float(np.percentile([s.value for s in window], percentile))

    def latest(self, name: str) -> float | None:
        """Most recent sample value."""
        samples = self._samples.get(name)
        return samples[-1].value if samples else None
