"""Container specifications and replica lifecycle.

A container replica goes through the states ``PENDING`` (awaiting placement)
→ ``STARTING`` (placed, loading its model parameters) → ``RUNNING`` (serving)
→ ``TERMINATED``.  The starting phase is where ElasticRec's fine-grained
shards gain their responsiveness advantage (Section VI-D): a model-wise
replica must load the entire embedding tables before it can serve, whereas a
shard replica loads only its slice.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.cluster.resources import ResourceRequest

__all__ = ["ContainerState", "ContainerSpec", "Container"]

_container_ids = itertools.count()


class ContainerState(enum.Enum):
    """Lifecycle states of a container replica."""

    PENDING = "pending"
    STARTING = "starting"
    RUNNING = "running"
    TERMINATED = "terminated"


@dataclass(frozen=True)
class ContainerSpec:
    """The immutable description of a container image plus its resource request."""

    name: str
    role: str
    resources: ResourceRequest
    startup_s: float
    per_replica_qps: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a container spec needs a name")
        if self.startup_s < 0:
            raise ValueError("startup_s must be non-negative")
        if self.per_replica_qps <= 0:
            raise ValueError("per_replica_qps must be positive")


@dataclass
class Container:
    """One replica of a container spec."""

    spec: ContainerSpec
    state: ContainerState = ContainerState.PENDING
    node_name: str | None = None
    created_at: float = 0.0
    ready_at: float | None = None
    terminated_at: float | None = None
    container_id: int = field(default_factory=lambda: next(_container_ids))

    @property
    def name(self) -> str:
        """Unique replica name."""
        return f"{self.spec.name}-{self.container_id}"

    @property
    def is_ready(self) -> bool:
        """Whether the replica is serving traffic."""
        return self.state is ContainerState.RUNNING

    @property
    def is_active(self) -> bool:
        """Whether the replica currently holds resources (starting or running)."""
        return self.state in (ContainerState.STARTING, ContainerState.RUNNING)

    def mark_scheduled(self, node_name: str, now: float) -> None:
        """Record placement on a node and begin the startup phase."""
        if self.state is not ContainerState.PENDING:
            raise RuntimeError(f"container {self.name} is not pending")
        self.state = ContainerState.STARTING
        self.node_name = node_name
        self.created_at = now
        self.ready_at = now + self.spec.startup_s

    def maybe_become_ready(self, now: float) -> bool:
        """Transition to RUNNING once the startup period has elapsed."""
        if self.state is ContainerState.STARTING and self.ready_at is not None:
            if now >= self.ready_at:
                self.state = ContainerState.RUNNING
                return True
        return False

    def terminate(self, now: float) -> None:
        """Stop the replica and release it from its node at the caller's behest."""
        if self.state is ContainerState.TERMINATED:
            return
        self.state = ContainerState.TERMINATED
        self.terminated_at = now
