"""Deployments: named replica sets of one container spec."""

from __future__ import annotations

from repro.cluster.container import Container, ContainerState
from repro.cluster.metrics import MetricsRegistry
from repro.core.hpa_policy import HPATarget

__all__ = ["Deployment"]


class Deployment:
    """A replica set managed by the cluster and scaled by the autoscaler."""

    def __init__(
        self,
        spec,
        desired_replicas: int,
        hpa: HPATarget | None = None,
        min_replicas: int = 1,
        max_replicas: int = 64,
    ) -> None:
        if desired_replicas <= 0:
            raise ValueError("desired_replicas must be positive")
        if not 1 <= min_replicas <= max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        self.spec = spec
        self.hpa = hpa
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self._desired_replicas = int(max(min(desired_replicas, max_replicas), min_replicas))
        self.replicas: list[Container] = []

    @property
    def name(self) -> str:
        """Deployment name (the container spec's name)."""
        return self.spec.name

    @property
    def desired_replicas(self) -> int:
        """Replica count the cluster should converge to."""
        return self._desired_replicas

    @desired_replicas.setter
    def desired_replicas(self, value: int) -> None:
        self._desired_replicas = int(max(min(value, self.max_replicas), self.min_replicas))

    @property
    def active_replicas(self) -> list[Container]:
        """Replicas that currently hold resources (starting or running)."""
        return [c for c in self.replicas if c.is_active]

    @property
    def ready_replicas(self) -> list[Container]:
        """Replicas currently able to serve traffic."""
        return [c for c in self.replicas if c.is_ready]

    @property
    def pending_replicas(self) -> list[Container]:
        """Replicas awaiting placement."""
        return [c for c in self.replicas if c.state is ContainerState.PENDING]

    @property
    def allocated_memory_bytes(self) -> float:
        """Memory reserved by the deployment's active replicas."""
        return sum(c.spec.resources.memory_bytes for c in self.active_replicas)

    @property
    def ready_capacity_qps(self) -> float:
        """Aggregate throughput capacity of the ready replicas."""
        return len(self.ready_replicas) * self.spec.per_replica_qps

    def observed_metric(self, metrics: MetricsRegistry, now: float, window_s: float) -> float | None:
        """The value the HPA compares against its target for this deployment.

        Throughput targets observe the recent per-replica query rate; latency
        targets observe the recent p95 latency recorded for the deployment.
        The simulator records one aggregated ``<name>/queries`` sample (the
        query count) and one ``<name>/latency_s`` sample (the interval's p95)
        per control interval.
        """
        if self.hpa is None:
            return None
        if self.hpa.is_throughput_target:
            queries = metrics.sum(f"{self.name}/queries", now=now, window_s=window_s)
            if queries == 0 and metrics.count(f"{self.name}/queries", now, window_s) == 0:
                return None
            # Divide by every non-terminated replica (as Kubernetes does), not
            # just the ready ones, so replicas that are still starting do not
            # inflate the per-replica rate and cause scale-up overshoot.
            replicas = max(len(self.active_replicas) + len(self.pending_replicas), 1)
            return queries / window_s / replicas
        return metrics.percentile(
            f"{self.name}/latency_s", percentile=95.0, now=now, window_s=window_s
        )

    def prune_terminated(self) -> None:
        """Drop terminated replicas from the tracking list."""
        self.replicas = [c for c in self.replicas if c.state is not ContainerState.TERMINATED]
