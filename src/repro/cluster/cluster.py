"""The cluster facade: nodes + deployments + scheduler + reconciliation loop."""

from __future__ import annotations

from repro.cluster.container import Container, ContainerSpec, ContainerState
from repro.cluster.deployment import Deployment
from repro.cluster.metrics import MetricsRegistry
from repro.cluster.node import Node
from repro.cluster.resources import ResourceRequest
from repro.cluster.scheduler import BinPackingScheduler
from repro.core.plan import DeploymentPlan
from repro.hardware.specs import ClusterSpec

__all__ = ["Cluster"]

#: Upper bound applied to every deployment's replica count (safety valve for
#: runaway autoscaling in simulations; generously above anything the paper
#: deploys).
DEFAULT_MAX_REPLICAS = 256


class Cluster:
    """A fixed pool of nodes running deployments of containerised shards."""

    def __init__(self, spec: ClusterSpec) -> None:
        self._spec = spec
        self._nodes = [
            Node(name=f"{spec.name}-node-{i}", spec=spec.node) for i in range(spec.num_nodes)
        ]
        self._scheduler = BinPackingScheduler(self._nodes)
        self._deployments: dict[str, Deployment] = {}
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_plan(
        cls,
        plan: DeploymentPlan,
        initial_replicas: int | None = None,
        max_replicas: int = DEFAULT_MAX_REPLICAS,
    ) -> "Cluster":
        """Instantiate a cluster hosting every deployment of a plan.

        ``initial_replicas`` overrides each deployment's planned replica count
        (the dynamic-traffic experiment starts every deployment at one replica
        and lets the HPA grow it).
        """
        cluster = cls(plan.cluster)
        cluster.add_plan(plan, initial_replicas=initial_replicas, max_replicas=max_replicas)
        return cluster

    def add_plan(
        self,
        plan: DeploymentPlan,
        prefix: str | None = None,
        initial_replicas: int | None = None,
        max_replicas: int = DEFAULT_MAX_REPLICAS,
    ) -> list[Deployment]:
        """Register every deployment of a plan on this cluster's node pool.

        Several plans can share one pool (the multi-tenant simulation);
        ``prefix`` namespaces the deployment names (``<prefix>/<shard>``) so
        tenants with identical shard names do not collide.  Returns the
        created deployments in plan order.
        """
        created = []
        for shard in plan.deployments:
            name = f"{prefix}/{shard.name}" if prefix else shard.name
            spec = ContainerSpec(
                name=name,
                role=shard.role,
                resources=ResourceRequest(
                    cores=shard.cores,
                    memory_bytes=shard.per_replica_memory_bytes,
                    gpus=shard.gpus,
                ),
                startup_s=shard.startup_s,
                per_replica_qps=shard.per_replica_qps,
            )
            replicas = shard.replicas if initial_replicas is None else initial_replicas
            created.append(
                self.create_deployment(
                    spec,
                    desired_replicas=replicas,
                    hpa=shard.hpa,
                    max_replicas=max_replicas,
                )
            )
        return created

    def create_deployment(
        self,
        spec: ContainerSpec,
        desired_replicas: int,
        hpa=None,
        min_replicas: int = 1,
        max_replicas: int = DEFAULT_MAX_REPLICAS,
    ) -> Deployment:
        """Register a new deployment (replicas are created on the next reconcile)."""
        if spec.name in self._deployments:
            raise ValueError(f"deployment {spec.name!r} already exists")
        deployment = Deployment(
            spec,
            desired_replicas=desired_replicas,
            hpa=hpa,
            min_replicas=min_replicas,
            max_replicas=max_replicas,
        )
        self._deployments[spec.name] = deployment
        return deployment

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spec(self) -> ClusterSpec:
        """The cluster specification."""
        return self._spec

    @property
    def nodes(self) -> list[Node]:
        """All nodes."""
        return list(self._nodes)

    @property
    def deployments(self) -> list[Deployment]:
        """All deployments."""
        return list(self._deployments.values())

    def deployment(self, name: str) -> Deployment:
        """Deployment by name."""
        try:
            return self._deployments[name]
        except KeyError:
            raise KeyError(f"no deployment named {name!r}") from None

    def node(self, key: int | str) -> Node:
        """Node by pool index or by name."""
        if isinstance(key, int):
            if not 0 <= key < len(self._nodes):
                raise KeyError(f"no node at index {key} (pool has {len(self._nodes)})")
            return self._nodes[key]
        for node in self._nodes:
            if node.name == key:
                return node
        raise KeyError(f"no node named {key!r}")

    @property
    def allocated_memory_bytes(self) -> float:
        """Memory reserved by every active container replica."""
        return sum(d.allocated_memory_bytes for d in self._deployments.values())

    @property
    def allocated_memory_gb(self) -> float:
        """Memory reserved by every active container replica, in GB."""
        return self.allocated_memory_bytes / 1e9

    @property
    def pending_containers(self) -> list[Container]:
        """Replicas that could not be placed yet."""
        return [c for d in self._deployments.values() for c in d.pending_replicas]

    @property
    def pending_placement_count(self) -> int:
        """Depth of the pending-placement queue (replicas awaiting a node)."""
        return len(self.pending_containers)

    @property
    def memory_capacity_gb(self) -> float:
        """Total allocatable memory of the node pool, in GB."""
        return self._scheduler.total_memory_bytes / 1e9

    def memory_utilization(self) -> float:
        """Fraction of the pool's memory currently reserved by containers."""
        return self._scheduler.memory_utilization()

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    def reconcile(self, now: float) -> None:
        """Drive every deployment toward its desired replica count.

        Creates and schedules missing replicas, terminates surplus ones
        (youngest first, pending before running) and promotes replicas whose
        startup period has elapsed.
        """
        for deployment in self._deployments.values():
            deployment.prune_terminated()
            self._grow_or_shrink(deployment, now)
        # Place pending containers across all deployments in one packing pass.
        pending = [c for d in self._deployments.values() for c in d.pending_replicas]
        self._scheduler.schedule_all(pending, now)
        for deployment in self._deployments.values():
            for container in deployment.replicas:
                container.maybe_become_ready(now)

    def _grow_or_shrink(self, deployment: Deployment, now: float) -> None:
        live = [c for c in deployment.replicas if c.is_active or c.state.value == "pending"]
        desired = deployment.desired_replicas
        if len(live) < desired:
            for _ in range(desired - len(live)):
                deployment.replicas.append(Container(spec=deployment.spec))
        elif len(live) > desired:
            surplus = len(live) - desired
            # Remove pending replicas first, then the youngest active ones.
            removable = sorted(
                live,
                key=lambda c: (c.is_ready, c.created_at),
            )
            for container in removable[:surplus]:
                self._remove_container(container, now)

    def _remove_container(self, container: Container, now: float) -> None:
        if container.node_name is not None:
            node = next(n for n in self._nodes if n.name == container.node_name)
            node.evict(container, now)
        else:
            container.terminate(now)

    def nodes_in_use(self) -> int:
        """Number of nodes hosting at least one active container."""
        return sum(1 for node in self._nodes if node.containers)

    # ------------------------------------------------------------------
    # Fault handling: crashes, drains, recovery
    # ------------------------------------------------------------------
    def fail_replica(self, container_name: str, now: float) -> bool:
        """Kill one replica by name (fault injection).

        The container is terminated and its node resources released; the
        owning deployment's desired count is untouched, so the next reconcile
        re-creates the replica (which then sits through its cold start).
        Returns whether a matching live replica was found.
        """
        for deployment in self._deployments.values():
            for container in deployment.replicas:
                if (
                    container.name == container_name
                    and container.state is not ContainerState.TERMINATED
                ):
                    self._remove_container(container, now)
                    return True
        return False

    def evict_node(self, key: int | str, now: float) -> list[str]:
        """Evict every container on one node (the end of a drain's grace).

        Returns the names of the evicted containers so callers can settle
        their in-flight work.  The evicted replicas are re-created by the
        next reconcile and re-placed on the remaining schedulable nodes.
        """
        node = self.node(key)
        evicted = []
        for container in node.containers:
            evicted.append(container.name)
            node.evict(container, now)
        return evicted

    def drain_node(self, key: int | str, now: float) -> list[str]:
        """Cordon one node and immediately evict everything on it.

        The serving engine's :class:`~repro.serving.faults.NodeDrain` event
        adds a graceful phase between the cordon and the eviction; this
        method is the grace-free composition for direct cluster callers.
        """
        self.node(key).cordon()
        return self.evict_node(key, now)

    def uncordon_node(self, key: int | str) -> None:
        """Return a drained node to the schedulable pool."""
        self.node(key).uncordon()
