"""Compute nodes: capacity accounting and container placement."""

from __future__ import annotations

from repro.cluster.container import Container
from repro.cluster.resources import ResourceCapacity, ResourceRequest
from repro.hardware.specs import CPUNodeSpec

__all__ = ["Node"]


class Node:
    """One schedulable node of the cluster."""

    def __init__(self, name: str, spec: CPUNodeSpec) -> None:
        if not name:
            raise ValueError("a node needs a name")
        self._name = name
        self._spec = spec
        self._capacity = ResourceCapacity(
            cores=float(spec.cores),
            memory_bytes=spec.dram_gb * 1e9,
            gpus=spec.gpus_per_node,
        )
        self._containers: dict[str, Container] = {}
        self._schedulable = True

    @property
    def name(self) -> str:
        """Node name."""
        return self._name

    @property
    def spec(self) -> CPUNodeSpec:
        """Hardware specification."""
        return self._spec

    @property
    def free(self) -> ResourceCapacity:
        """Remaining allocatable capacity."""
        return self._capacity

    @property
    def containers(self) -> list[Container]:
        """Containers currently placed on this node."""
        return list(self._containers.values())

    @property
    def allocated_memory_bytes(self) -> float:
        """Memory currently reserved by placed containers."""
        return sum(c.spec.resources.memory_bytes for c in self._containers.values())

    @property
    def allocated_cores(self) -> float:
        """Cores currently reserved by placed containers."""
        return sum(c.spec.resources.cores for c in self._containers.values())

    @property
    def schedulable(self) -> bool:
        """Whether the scheduler may place new containers here."""
        return self._schedulable

    def cordon(self) -> None:
        """Mark the node unschedulable (drain); running containers survive."""
        self._schedulable = False

    def uncordon(self) -> None:
        """Return the node to the schedulable pool."""
        self._schedulable = True

    def can_fit(self, request: ResourceRequest) -> bool:
        """Whether a request fits in the remaining capacity."""
        return self._capacity.fits(request)

    def place(self, container: Container, now: float) -> None:
        """Reserve resources for a container and start it."""
        request = container.spec.resources
        if not self._schedulable:
            raise ValueError(f"node {self._name} is cordoned")
        if not self.can_fit(request):
            raise ValueError(f"container {container.name} does not fit on node {self._name}")
        self._capacity.allocate(request)
        self._containers[container.name] = container
        container.mark_scheduled(self._name, now)

    def evict(self, container: Container, now: float) -> None:
        """Terminate a container and release its resources."""
        if container.name not in self._containers:
            raise KeyError(f"container {container.name} is not on node {self._name}")
        del self._containers[container.name]
        self._capacity.release(container.spec.resources)
        container.terminate(now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Node({self._name!r}, free_cores={self._capacity.cores:.0f}, "
            f"free_memory_gb={self._capacity.memory_bytes / 1e9:.0f})"
        )
