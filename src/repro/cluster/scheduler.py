"""Bin-packing placement of container replicas onto nodes."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cluster.container import Container
from repro.cluster.node import Node
from repro.cluster.resources import ResourceRequest
from repro.hardware.specs import CPUNodeSpec

__all__ = ["SchedulingError", "BinPackingScheduler", "nodes_required"]


class SchedulingError(RuntimeError):
    """Raised when a container cannot be placed on any node."""


class BinPackingScheduler:
    """Best-fit-decreasing scheduler over a fixed node pool.

    Containers are placed on the feasible node with the least remaining
    memory after placement, which keeps big nodes available for the large
    (model-wise or cold-shard) containers — the same packing intuition the
    Kubernetes default scheduler's ``MostAllocated`` scoring encodes.
    """

    def __init__(self, nodes: Sequence[Node]) -> None:
        if not nodes:
            raise ValueError("at least one node is required")
        self._nodes = list(nodes)

    @property
    def nodes(self) -> list[Node]:
        """The node pool."""
        return list(self._nodes)

    @property
    def total_memory_bytes(self) -> float:
        """Aggregate allocatable memory of the pool."""
        return sum(node.spec.dram_gb * 1e9 for node in self._nodes)

    @property
    def free_memory_bytes(self) -> float:
        """Memory not currently reserved by placed containers."""
        return sum(node.free.memory_bytes for node in self._nodes)

    def memory_utilization(self) -> float:
        """Fraction of the pool's memory reserved by placed containers."""
        total = self.total_memory_bytes
        return 1.0 - self.free_memory_bytes / total if total > 0 else 0.0

    def _best_node(self, request: ResourceRequest) -> Node | None:
        # Cordoned (draining) nodes keep their running containers but take no
        # new placements until they are uncordoned.
        feasible = [
            node for node in self._nodes if node.schedulable and node.can_fit(request)
        ]
        if not feasible:
            return None
        return min(feasible, key=lambda n: n.free.memory_bytes - request.memory_bytes)

    def try_schedule(self, container: Container, now: float) -> bool:
        """Place one container if any node fits it; returns success."""
        node = self._best_node(container.spec.resources)
        if node is None:
            return False
        node.place(container, now)
        return True

    def schedule_all(self, containers: Iterable[Container], now: float) -> list[Container]:
        """Place as many pending containers as possible; returns the unplaced ones.

        Larger requests are placed first (best-fit decreasing).
        """
        pending = sorted(
            containers, key=lambda c: c.spec.resources.memory_bytes, reverse=True
        )
        unplaced = []
        for container in pending:
            if not self.try_schedule(container, now):
                unplaced.append(container)
        return unplaced


def nodes_required(requests: Sequence[ResourceRequest], node_spec: CPUNodeSpec) -> int:
    """Minimum node count (first-fit decreasing) to host a set of replica requests.

    Used for the Figure 15/18 server-count analysis: every replica of every
    deployment in a plan is packed onto identical nodes and the number of
    opened nodes is reported.
    """
    if not requests:
        return 0
    for request in requests:
        if request.cores > node_spec.cores:
            raise ValueError(f"request {request} needs more cores than one node has")
        if request.memory_bytes > node_spec.dram_gb * 1e9:
            raise ValueError(f"request {request} needs more memory than one node has")
        if request.gpus > node_spec.gpus_per_node:
            raise ValueError(f"request {request} needs more GPUs than one node has")
    nodes: list[Node] = []
    ordered = sorted(requests, key=lambda r: (r.gpus, r.memory_bytes, r.cores), reverse=True)
    for index, request in enumerate(ordered):
        placed = False
        for node in nodes:
            if node.can_fit(request):
                node.free.allocate(request)
                placed = True
                break
        if not placed:
            node = Node(name=f"packing-node-{len(nodes)}", spec=node_spec)
            if not node.can_fit(request):  # pragma: no cover - validated above
                raise SchedulingError(f"request {index} does not fit an empty node")
            node.free.allocate(request)
            nodes.append(node)
    return len(nodes)
