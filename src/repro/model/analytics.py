"""Analytic FLOP / parameter / memory-traffic counters (Figure 3).

Figure 3(a) of the paper breaks a query's work into the dense DNN layers and
the sparse embedding layers along two axes: FLOPs and memory consumption
(model parameter footprint).  Those quantities are architecture-independent,
so they are computed analytically from the workload configuration rather than
measured, exactly as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.configs import DLRMConfig

__all__ = ["LayerBreakdown", "ModelAnalytics"]


@dataclass(frozen=True)
class LayerBreakdown:
    """Dense-vs-sparse split of one quantity (FLOPs, bytes, latency...)."""

    dense: float
    sparse: float

    @property
    def total(self) -> float:
        """Dense plus sparse."""
        return self.dense + self.sparse

    @property
    def dense_fraction(self) -> float:
        """Dense share in [0, 1]."""
        return self.dense / self.total if self.total else 0.0

    @property
    def sparse_fraction(self) -> float:
        """Sparse share in [0, 1]."""
        return self.sparse / self.total if self.total else 0.0

    def as_percentages(self) -> tuple[float, float]:
        """(dense %, sparse %) as plotted by Figure 3."""
        return 100.0 * self.dense_fraction, 100.0 * self.sparse_fraction


class ModelAnalytics:
    """Per-workload analytic counters used by Figure 3 and the performance model."""

    def __init__(self, config: DLRMConfig) -> None:
        self._config = config

    @property
    def config(self) -> DLRMConfig:
        """The analysed workload configuration."""
        return self._config

    # ------------------------------------------------------------------
    # FLOPs
    # ------------------------------------------------------------------
    def bottom_mlp_flops_per_sample(self) -> int:
        """Bottom-MLP FLOPs for one ranked item."""
        return self._config.bottom_mlp.flops_per_sample(self._config.num_dense_features)

    def top_mlp_flops_per_sample(self) -> int:
        """Top-MLP FLOPs for one ranked item."""
        return self._config.top_mlp.flops_per_sample(self._config.top_mlp_input_dim)

    def interaction_flops_per_sample(self) -> int:
        """Feature-interaction FLOPs for one ranked item."""
        return 2 * self._config.embedding.embedding_dim * self._config.num_interaction_pairs

    def dense_flops_per_sample(self) -> int:
        """All dense-layer FLOPs (bottom MLP + interaction + top MLP) per item."""
        return (
            self.bottom_mlp_flops_per_sample()
            + self.interaction_flops_per_sample()
            + self.top_mlp_flops_per_sample()
        )

    def sparse_flops_per_sample(self) -> int:
        """Embedding pooling FLOPs per item (one add per gathered element)."""
        emb = self._config.embedding
        return emb.num_tables * emb.pooling * emb.embedding_dim

    def dense_flops_per_query(self) -> int:
        """Dense FLOPs for one query (batch of items)."""
        return self.dense_flops_per_sample() * self._config.batch_size

    def sparse_flops_per_query(self) -> int:
        """Sparse FLOPs for one query."""
        return self.sparse_flops_per_sample() * self._config.batch_size

    def flops_breakdown(self) -> LayerBreakdown:
        """Figure 3(a) FLOPs split."""
        return LayerBreakdown(
            dense=float(self.dense_flops_per_sample()),
            sparse=float(self.sparse_flops_per_sample()),
        )

    # ------------------------------------------------------------------
    # Memory footprint (model parameters)
    # ------------------------------------------------------------------
    def dense_parameter_bytes(self) -> int:
        """Bottom plus top MLP parameter footprint."""
        bottom = self._config.bottom_mlp.num_parameters(self._config.num_dense_features)
        top = self._config.top_mlp.num_parameters(self._config.top_mlp_input_dim)
        return 4 * (bottom + top)

    def sparse_parameter_bytes(self) -> int:
        """Aggregate embedding-table footprint."""
        return self._config.embedding.total_bytes

    def model_bytes(self) -> int:
        """Full model footprint (what a model-wise replica must load)."""
        return self.dense_parameter_bytes() + self.sparse_parameter_bytes()

    def memory_breakdown(self) -> LayerBreakdown:
        """Figure 3(a) memory-consumption split."""
        return LayerBreakdown(
            dense=float(self.dense_parameter_bytes()),
            sparse=float(self.sparse_parameter_bytes()),
        )

    # ------------------------------------------------------------------
    # Memory traffic
    # ------------------------------------------------------------------
    def embedding_bytes_read_per_query(self) -> int:
        """Bytes fetched from embedding tables to serve one query."""
        emb = self._config.embedding
        return (
            self._config.batch_size
            * emb.num_tables
            * emb.pooling
            * emb.embedding_dim
            * emb.dtype_bytes
        )

    def embedding_utility_per_query(self) -> float:
        """Upper bound on the fraction of embedding memory touched by one query.

        The paper's motivation (Section III-A) observes that a query touches at
        most ``batch * pooling`` of the rows of each table, i.e. a vanishing
        fraction of the allocated memory.  Duplicate lookups make the true
        fraction even smaller; this analytic value is the no-duplicate bound.
        """
        emb = self._config.embedding
        touched_rows = min(self._config.batch_size * emb.pooling, emb.rows_per_table)
        return touched_rows / emb.rows_per_table

    def summary(self) -> dict[str, float]:
        """Convenient dictionary of the headline analytic quantities."""
        flops = self.flops_breakdown()
        memory = self.memory_breakdown()
        return {
            "dense_flops_per_sample": float(self.dense_flops_per_sample()),
            "sparse_flops_per_sample": float(self.sparse_flops_per_sample()),
            "dense_flops_pct": flops.as_percentages()[0],
            "sparse_flops_pct": flops.as_percentages()[1],
            "dense_param_bytes": float(self.dense_parameter_bytes()),
            "sparse_param_bytes": float(self.sparse_parameter_bytes()),
            "dense_memory_pct": memory.as_percentages()[0],
            "sparse_memory_pct": memory.as_percentages()[1],
            "embedding_bytes_read_per_query": float(self.embedding_bytes_read_per_query()),
            "embedding_utility_per_query": self.embedding_utility_per_query(),
        }
