"""Functional (numpy) DLRM model.

The serving architecture treats the model as two logical halves — the dense
DNN part (bottom MLP, feature interaction, top MLP) and the sparse embedding
part (per-table gather + pool).  :class:`DLRM` exposes those halves both
separately (``run_bottom_mlp`` / ``pool_embeddings`` / ``run_top``) so that
shard-level execution in examples mirrors the microservice decomposition, and
as a single ``forward`` for monolithic (model-wise) execution.
"""

from __future__ import annotations

import numpy as np

from repro.data.query_gen import Query
from repro.model.configs import DLRMConfig
from repro.model.embedding import EmbeddingBag, EmbeddingTable, EmbeddingTableSpec
from repro.model.interaction import FeatureInteraction
from repro.model.mlp import MLP

__all__ = ["DLRM"]


class DLRM:
    """A runnable DLRM instance built from a :class:`~repro.model.configs.DLRMConfig`.

    ``rows_override`` shrinks every embedding table to a manageable size; the
    paper-scale 20M-row tables would occupy gigabytes per table and are never
    needed for functional correctness.
    """

    def __init__(
        self,
        config: DLRMConfig,
        rows_override: int | None = None,
        seed: int = 0,
    ) -> None:
        self._config = config
        rows = config.embedding.rows_per_table if rows_override is None else int(rows_override)
        if rows <= 0:
            raise ValueError(f"rows_override must be positive, got {rows_override}")
        self._rows = rows
        rng = np.random.default_rng(seed)
        self._bottom_mlp = MLP(config.bottom_mlp, input_dim=config.num_dense_features, rng=rng)
        self._interaction = FeatureInteraction(
            num_tables=config.embedding.num_tables,
            embedding_dim=config.embedding.embedding_dim,
        )
        self._top_mlp = MLP(
            config.top_mlp,
            input_dim=self._interaction.output_dim,
            rng=rng,
            sigmoid_output=True,
        )
        self._tables: list[EmbeddingTable] = []
        self._bags: list[EmbeddingBag] = []
        for table_id in range(config.embedding.num_tables):
            spec = EmbeddingTableSpec(
                table_id=table_id,
                rows=rows,
                dim=config.embedding.embedding_dim,
                dtype_bytes=config.embedding.dtype_bytes,
            )
            table = EmbeddingTable(spec, rng=rng)
            self._tables.append(table)
            self._bags.append(EmbeddingBag(table))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def config(self) -> DLRMConfig:
        """The workload configuration this model was built from."""
        return self._config

    @property
    def rows_per_table(self) -> int:
        """Materialised rows per table (possibly overridden)."""
        return self._rows

    @property
    def tables(self) -> list[EmbeddingTable]:
        """The materialised embedding tables."""
        return list(self._tables)

    @property
    def bottom_mlp(self) -> MLP:
        """The bottom (dense-feature) MLP."""
        return self._bottom_mlp

    @property
    def top_mlp(self) -> MLP:
        """The top (post-interaction) MLP."""
        return self._top_mlp

    @property
    def interaction(self) -> FeatureInteraction:
        """The feature-interaction stage."""
        return self._interaction

    # ------------------------------------------------------------------
    # Shard-style execution (mirrors the microservice decomposition)
    # ------------------------------------------------------------------
    def run_bottom_mlp(self, dense_input: np.ndarray) -> np.ndarray:
        """Dense-shard work before embeddings arrive."""
        return self._bottom_mlp(dense_input)

    def pool_embeddings(self, query: Query) -> list[np.ndarray]:
        """Sparse-shard work: gather and pool embeddings for every table."""
        if query.num_tables != self._config.embedding.num_tables:
            raise ValueError(
                f"query touches {query.num_tables} tables, model has "
                f"{self._config.embedding.num_tables}"
            )
        pooled = []
        for lookup in query.sparse_lookups:
            bag = self._bags[lookup.table_id]
            pooled.append(bag(lookup.indices, lookup.offsets))
        return pooled

    def run_top(self, dense_vector: np.ndarray, pooled_embeddings: list[np.ndarray]) -> np.ndarray:
        """Dense-shard work after embeddings return: interaction plus top MLP."""
        interacted = self._interaction(dense_vector, pooled_embeddings)
        return self._top_mlp(interacted)

    # ------------------------------------------------------------------
    # Monolithic execution
    # ------------------------------------------------------------------
    def forward(self, query: Query) -> np.ndarray:
        """End-to-end inference: returns per-item click probabilities ``(batch, 1)``."""
        dense_vector = self.run_bottom_mlp(query.dense_input)
        pooled = self.pool_embeddings(query)
        return self.run_top(dense_vector, pooled)

    __call__ = forward
