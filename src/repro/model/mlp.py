"""Numpy multi-layer perceptron used by the dense shards of DLRM."""

from __future__ import annotations

import numpy as np

from repro.model.configs import MLPConfig

__all__ = ["MLP"]


class MLP:
    """A fully-connected ReLU network with an optional sigmoid output.

    Weights are initialised deterministically from the supplied generator so
    examples and tests are reproducible.  The class is intentionally
    inference-only: the serving architecture never trains.
    """

    def __init__(
        self,
        config: MLPConfig,
        input_dim: int,
        rng: np.random.Generator | None = None,
        sigmoid_output: bool = False,
    ) -> None:
        if input_dim <= 0:
            raise ValueError(f"input_dim must be positive, got {input_dim}")
        self._config = config
        self._input_dim = int(input_dim)
        self._sigmoid_output = bool(sigmoid_output)
        rng = rng if rng is not None else np.random.default_rng(0)
        dims = config.dims_with_input(input_dim)
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    @property
    def config(self) -> MLPConfig:
        """Layer-width configuration."""
        return self._config

    @property
    def input_dim(self) -> int:
        """Width of the expected input."""
        return self._input_dim

    @property
    def output_dim(self) -> int:
        """Width of the produced output."""
        return self._config.output_dim

    @property
    def num_parameters(self) -> int:
        """Weights plus biases."""
        return self._config.num_parameters(self._input_dim)

    @property
    def parameter_bytes(self) -> int:
        """Parameter footprint assuming fp32 storage."""
        return self.num_parameters * 4

    def flops_per_sample(self) -> int:
        """Multiply-accumulate FLOPs for one input sample."""
        return self._config.flops_per_sample(self._input_dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the MLP on a ``(batch, input_dim)`` input."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self._input_dim:
            raise ValueError(
                f"expected input of shape (batch, {self._input_dim}), got {x.shape}"
            )
        out = x
        last = len(self._weights) - 1
        for layer, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            out = out @ weight + bias
            if layer < last:
                out = np.maximum(out, 0.0)
        if self._sigmoid_output:
            out = 1.0 / (1.0 + np.exp(-out))
        return out

    __call__ = forward
