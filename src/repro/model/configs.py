"""Workload configurations of Tables I and II.

Table II defines the three state-of-the-art DLRM configurations (RM1, RM2,
RM3) used throughout the evaluation; Table I defines the microbenchmark sweep
(MLP size, locality, number of tables, forced shard count) built on top of
RM1.  Both are encoded here as frozen dataclasses so every experiment and
test consumes exactly the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.data.distributions import AccessDistribution, ZipfDistribution
from repro.data.query_gen import QueryGenerator, TableWorkload

__all__ = [
    "MLPConfig",
    "EmbeddingConfig",
    "DLRMConfig",
    "rm1",
    "rm2",
    "rm3",
    "workload_presets",
    "microbenchmark",
    "MICROBENCHMARK_MLP_PRESETS",
    "LOCALITY_PRESETS",
    "MICROBENCHMARK_TABLE_COUNTS",
    "MICROBENCHMARK_SHARD_COUNTS",
]

#: Number of continuous (dense) input features.  The paper does not state the
#: dense-feature width; we use the Criteo/DLRM convention of 13.
DEFAULT_NUM_DENSE_FEATURES = 13

#: Batch size (items ranked per query), Section V-C.
DEFAULT_BATCH_SIZE = 32

#: Bytes per embedding-table element (fp32).
DEFAULT_DTYPE_BYTES = 4


@dataclass(frozen=True)
class MLPConfig:
    """A multi-layer perceptron described by its hidden/output layer widths.

    The paper writes MLPs as e.g. ``256-128-32``: the widths of successive
    layers, the last being the output width.  The input width is supplied
    separately (dense-feature count for the bottom MLP, interaction output
    width for the top MLP).
    """

    layer_sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        sizes = tuple(int(s) for s in self.layer_sizes)
        object.__setattr__(self, "layer_sizes", sizes)
        if not sizes:
            raise ValueError("an MLP needs at least one layer")
        if any(s <= 0 for s in sizes):
            raise ValueError(f"layer sizes must be positive, got {sizes}")

    @classmethod
    def from_string(cls, spec: str) -> "MLPConfig":
        """Parse the paper's ``256-128-32`` notation."""
        try:
            sizes = tuple(int(part) for part in spec.split("-"))
        except ValueError as exc:
            raise ValueError(f"cannot parse MLP spec {spec!r}") from exc
        return cls(sizes)

    @property
    def output_dim(self) -> int:
        """Width of the final layer."""
        return self.layer_sizes[-1]

    @property
    def num_layers(self) -> int:
        """Number of weight layers."""
        return len(self.layer_sizes)

    def dims_with_input(self, input_dim: int) -> tuple[int, ...]:
        """Full layer-width sequence including the input width."""
        if input_dim <= 0:
            raise ValueError(f"input_dim must be positive, got {input_dim}")
        return (int(input_dim),) + self.layer_sizes

    def num_parameters(self, input_dim: int) -> int:
        """Weights plus biases for the given input width."""
        dims = self.dims_with_input(input_dim)
        return sum(dims[i] * dims[i + 1] + dims[i + 1] for i in range(len(dims) - 1))

    def flops_per_sample(self, input_dim: int) -> int:
        """Multiply-accumulate FLOPs (2 per MAC) for a single input sample."""
        dims = self.dims_with_input(input_dim)
        return sum(2 * dims[i] * dims[i + 1] for i in range(len(dims) - 1))

    def __str__(self) -> str:
        return "-".join(str(s) for s in self.layer_sizes)


@dataclass(frozen=True)
class EmbeddingConfig:
    """Sparse-feature (embedding-layer) configuration of a DLRM model."""

    num_tables: int
    rows_per_table: int
    embedding_dim: int
    pooling: int
    locality: float
    dtype_bytes: int = DEFAULT_DTYPE_BYTES

    def __post_init__(self) -> None:
        if self.num_tables <= 0:
            raise ValueError(f"num_tables must be positive, got {self.num_tables}")
        if self.rows_per_table <= 0:
            raise ValueError(f"rows_per_table must be positive, got {self.rows_per_table}")
        if self.embedding_dim <= 0:
            raise ValueError(f"embedding_dim must be positive, got {self.embedding_dim}")
        if self.pooling <= 0:
            raise ValueError(f"pooling must be positive, got {self.pooling}")
        if not 0.0 < self.locality <= 1.0:
            raise ValueError(f"locality must be in (0, 1], got {self.locality}")
        if self.dtype_bytes <= 0:
            raise ValueError(f"dtype_bytes must be positive, got {self.dtype_bytes}")

    @property
    def bytes_per_table(self) -> int:
        """Size of one embedding table in bytes."""
        return self.rows_per_table * self.embedding_dim * self.dtype_bytes

    @property
    def total_bytes(self) -> int:
        """Aggregate embedding memory footprint in bytes."""
        return self.num_tables * self.bytes_per_table

    @property
    def total_gb(self) -> float:
        """Aggregate embedding memory footprint in GB."""
        return self.total_bytes / 1e9

    def access_distribution(self) -> AccessDistribution:
        """Hot-sorted access distribution matching this config's locality."""
        return ZipfDistribution.from_locality(self.rows_per_table, self.locality)


@dataclass(frozen=True)
class DLRMConfig:
    """A complete DLRM workload configuration (Table II row or microbenchmark)."""

    name: str
    bottom_mlp: MLPConfig
    top_mlp: MLPConfig
    embedding: EmbeddingConfig
    num_dense_features: int = DEFAULT_NUM_DENSE_FEATURES
    batch_size: int = DEFAULT_BATCH_SIZE

    def __post_init__(self) -> None:
        if self.num_dense_features <= 0:
            raise ValueError("num_dense_features must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.bottom_mlp.output_dim != self.embedding.embedding_dim:
            raise ValueError(
                "the bottom MLP must project dense features to the embedding "
                f"dimension ({self.bottom_mlp.output_dim} != {self.embedding.embedding_dim})"
            )

    # ------------------------------------------------------------------
    # Derived structural quantities
    # ------------------------------------------------------------------
    @property
    def num_feature_vectors(self) -> int:
        """Vectors entering feature interaction: one per table plus the dense one."""
        return self.embedding.num_tables + 1

    @property
    def num_interaction_pairs(self) -> int:
        """Distinct pairwise dot products computed by the interaction stage."""
        n = self.num_feature_vectors
        return n * (n - 1) // 2

    @property
    def top_mlp_input_dim(self) -> int:
        """Width of the concatenated (dense ++ interactions) top-MLP input."""
        return self.embedding.embedding_dim + self.num_interaction_pairs

    def with_name(self, name: str) -> "DLRMConfig":
        """Copy of this config under a different name."""
        return replace(self, name=name)

    def scaled_tables(self, num_tables: int) -> "DLRMConfig":
        """Copy with a different number of identically-sized embedding tables."""
        return replace(self, embedding=replace(self.embedding, num_tables=num_tables))

    def with_locality(self, locality: float) -> "DLRMConfig":
        """Copy with a different embedding access locality ``P``."""
        return replace(self, embedding=replace(self.embedding, locality=locality))

    def with_mlp(self, bottom: MLPConfig, top: MLPConfig) -> "DLRMConfig":
        """Copy with different bottom/top MLPs."""
        return replace(self, bottom_mlp=bottom, top_mlp=top)

    def query_generator(self, seed: int = 0, rows_override: int | None = None) -> QueryGenerator:
        """Query generator matching this workload.

        ``rows_override`` shrinks the tables (used by functional examples and
        tests that materialise real numpy embedding tables).
        """
        rows = self.embedding.rows_per_table if rows_override is None else int(rows_override)
        distribution = ZipfDistribution.from_locality(rows, self.embedding.locality)
        tables = [
            TableWorkload(
                table_id=table_id,
                distribution=distribution,
                pooling=self.embedding.pooling,
            )
            for table_id in range(self.embedding.num_tables)
        ]
        return QueryGenerator(
            tables,
            batch_size=self.batch_size,
            num_dense_features=self.num_dense_features,
            seed=seed,
        )


# ----------------------------------------------------------------------
# Table II: state-of-the-art RecSys workloads
# ----------------------------------------------------------------------
def rm1() -> DLRMConfig:
    """RM1 of Table II: 10 tables, pooling 128, bottom 256-128-32, top 256-64-1."""
    return DLRMConfig(
        name="RM1",
        bottom_mlp=MLPConfig((256, 128, 32)),
        top_mlp=MLPConfig((256, 64, 1)),
        embedding=EmbeddingConfig(
            num_tables=10,
            rows_per_table=20_000_000,
            embedding_dim=32,
            pooling=128,
            locality=0.90,
        ),
    )


def rm2() -> DLRMConfig:
    """RM2 of Table II: 32 tables, pooling 128, bottom 256-128-32, top 512-128-1."""
    return DLRMConfig(
        name="RM2",
        bottom_mlp=MLPConfig((256, 128, 32)),
        top_mlp=MLPConfig((512, 128, 1)),
        embedding=EmbeddingConfig(
            num_tables=32,
            rows_per_table=20_000_000,
            embedding_dim=32,
            pooling=128,
            locality=0.90,
        ),
    )


def rm3() -> DLRMConfig:
    """RM3 of Table II: 10 tables, pooling 32, bottom 2560-512-32, top 512-128-1."""
    return DLRMConfig(
        name="RM3",
        bottom_mlp=MLPConfig((2560, 512, 32)),
        top_mlp=MLPConfig((512, 128, 1)),
        embedding=EmbeddingConfig(
            num_tables=10,
            rows_per_table=20_000_000,
            embedding_dim=32,
            pooling=32,
            locality=0.90,
        ),
    )


def workload_presets() -> dict[str, DLRMConfig]:
    """The Table II workloads keyed by name."""
    return {config.name: config for config in (rm1(), rm2(), rm3())}


# ----------------------------------------------------------------------
# Table I: microbenchmark sweep (built on RM1)
# ----------------------------------------------------------------------
MICROBENCHMARK_MLP_PRESETS: dict[str, tuple[MLPConfig, MLPConfig]] = {
    "light": (MLPConfig((64, 32, 32)), MLPConfig((64, 32, 1))),
    "medium": (MLPConfig((256, 128, 32)), MLPConfig((256, 64, 1))),
    "heavy": (MLPConfig((512, 256, 32)), MLPConfig((512, 64, 1))),
}

LOCALITY_PRESETS: dict[str, float] = {
    "low": 0.10,
    "medium": 0.50,
    "high": 0.90,
}

MICROBENCHMARK_TABLE_COUNTS: tuple[int, ...] = (1, 4, 10, 16)

MICROBENCHMARK_SHARD_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16)


def microbenchmark(
    mlp_size: str = "medium",
    locality: str = "high",
    num_tables: int = 10,
) -> DLRMConfig:
    """A Table I microbenchmark configuration.

    Parameters mirror Table I: ``mlp_size`` in {light, medium, heavy},
    ``locality`` in {low, medium, high} (P = 10/50/90%), and the number of
    identically-sized embedding tables.  All other parameters come from RM1.
    """
    mlp_key = mlp_size.lower()
    locality_key = locality.lower()
    if mlp_key not in MICROBENCHMARK_MLP_PRESETS:
        raise ValueError(
            f"unknown MLP size {mlp_size!r}; choose from {sorted(MICROBENCHMARK_MLP_PRESETS)}"
        )
    if locality_key not in LOCALITY_PRESETS:
        raise ValueError(
            f"unknown locality {locality!r}; choose from {sorted(LOCALITY_PRESETS)}"
        )
    bottom, top = MICROBENCHMARK_MLP_PRESETS[mlp_key]
    base = rm1()
    config = base.with_mlp(bottom, top)
    config = config.with_locality(LOCALITY_PRESETS[locality_key])
    config = config.scaled_tables(num_tables)
    return config.with_name(f"micro-{mlp_key}-{locality_key}-{num_tables}t")
