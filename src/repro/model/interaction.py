"""Pairwise dot-product feature interaction (the DLRM interaction stage)."""

from __future__ import annotations

import numpy as np

__all__ = ["FeatureInteraction"]


class FeatureInteraction:
    """Combines the dense feature vector with the pooled embedding vectors.

    Following DLRM, all feature vectors (one dense vector from the bottom MLP
    plus one pooled vector per embedding table) are stacked, every distinct
    pair's dot product is computed, and the resulting interaction terms are
    concatenated with the dense vector to form the top-MLP input.
    """

    def __init__(self, num_tables: int, embedding_dim: int) -> None:
        if num_tables <= 0:
            raise ValueError(f"num_tables must be positive, got {num_tables}")
        if embedding_dim <= 0:
            raise ValueError(f"embedding_dim must be positive, got {embedding_dim}")
        self._num_tables = int(num_tables)
        self._embedding_dim = int(embedding_dim)

    @property
    def num_feature_vectors(self) -> int:
        """Number of vectors entering the interaction (tables + dense)."""
        return self._num_tables + 1

    @property
    def num_pairs(self) -> int:
        """Distinct unordered pairs of feature vectors."""
        n = self.num_feature_vectors
        return n * (n - 1) // 2

    @property
    def output_dim(self) -> int:
        """Width of the produced top-MLP input."""
        return self._embedding_dim + self.num_pairs

    def flops_per_sample(self) -> int:
        """FLOPs of the pairwise dot products for one sample."""
        return 2 * self._embedding_dim * self.num_pairs

    def forward(self, dense_vector: np.ndarray, pooled_embeddings: list[np.ndarray]) -> np.ndarray:
        """Compute the interaction output.

        Parameters
        ----------
        dense_vector:
            ``(batch, embedding_dim)`` output of the bottom MLP.
        pooled_embeddings:
            One ``(batch, embedding_dim)`` array per embedding table.
        """
        dense_vector = np.asarray(dense_vector, dtype=np.float64)
        if dense_vector.ndim != 2 or dense_vector.shape[1] != self._embedding_dim:
            raise ValueError(
                f"dense_vector must have shape (batch, {self._embedding_dim}), "
                f"got {dense_vector.shape}"
            )
        if len(pooled_embeddings) != self._num_tables:
            raise ValueError(
                f"expected {self._num_tables} pooled embeddings, got {len(pooled_embeddings)}"
            )
        batch = dense_vector.shape[0]
        vectors = [dense_vector]
        for table_index, pooled in enumerate(pooled_embeddings):
            pooled = np.asarray(pooled, dtype=np.float64)
            if pooled.shape != (batch, self._embedding_dim):
                raise ValueError(
                    f"pooled embedding {table_index} has shape {pooled.shape}, "
                    f"expected {(batch, self._embedding_dim)}"
                )
            vectors.append(pooled)
        stacked = np.stack(vectors, axis=1)  # (batch, vectors, dim)
        gram = np.einsum("bvd,bwd->bvw", stacked, stacked)
        rows, cols = np.triu_indices(self.num_feature_vectors, k=1)
        interactions = gram[:, rows, cols]
        return np.concatenate([dense_vector, interactions], axis=1)

    __call__ = forward
