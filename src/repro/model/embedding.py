"""Embedding tables and embedding-bag (gather + pool) operators.

Two levels of fidelity are provided:

* :class:`EmbeddingTableSpec` — metadata only (rows, dimension, bytes).  All
  planning, partitioning and memory-accounting code operates on specs so that
  paper-scale tables (20M rows, several GB) are never materialised.
* :class:`EmbeddingTable` / :class:`EmbeddingBag` — real numpy weights with
  gather and sum/mean pooling, used by the functional DLRM in examples and
  tests at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EmbeddingTableSpec", "EmbeddingTable", "EmbeddingBag"]

_SUPPORTED_POOLING = ("sum", "mean")


@dataclass(frozen=True)
class EmbeddingTableSpec:
    """Metadata describing one embedding table."""

    table_id: int
    rows: int
    dim: int
    dtype_bytes: int = 4

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ValueError(f"rows must be positive, got {self.rows}")
        if self.dim <= 0:
            raise ValueError(f"dim must be positive, got {self.dim}")
        if self.dtype_bytes <= 0:
            raise ValueError(f"dtype_bytes must be positive, got {self.dtype_bytes}")

    @property
    def row_bytes(self) -> int:
        """Bytes occupied by a single embedding vector."""
        return self.dim * self.dtype_bytes

    @property
    def size_bytes(self) -> int:
        """Total table size in bytes."""
        return self.rows * self.row_bytes

    @property
    def size_gb(self) -> float:
        """Total table size in GB (decimal)."""
        return self.size_bytes / 1e9

    def slice_bytes(self, start_row: int, end_row: int) -> int:
        """Bytes of the row range ``[start_row, end_row)`` (a shard's capacity)."""
        if not 0 <= start_row <= end_row <= self.rows:
            raise ValueError(
                f"invalid row range [{start_row}, {end_row}) for table with {self.rows} rows"
            )
        return (end_row - start_row) * self.row_bytes


class EmbeddingTable:
    """A materialised embedding table (small scale, for functional execution)."""

    def __init__(
        self,
        spec: EmbeddingTableSpec,
        rng: np.random.Generator | None = None,
        weights: np.ndarray | None = None,
    ) -> None:
        self._spec = spec
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (spec.rows, spec.dim):
                raise ValueError(
                    f"weights shape {weights.shape} does not match spec "
                    f"({spec.rows}, {spec.dim})"
                )
            self._weights = weights
        else:
            rng = rng if rng is not None else np.random.default_rng(spec.table_id)
            self._weights = rng.normal(0.0, 1.0 / np.sqrt(spec.dim), size=(spec.rows, spec.dim))

    @property
    def spec(self) -> EmbeddingTableSpec:
        """Metadata for this table."""
        return self._spec

    @property
    def weights(self) -> np.ndarray:
        """The underlying ``(rows, dim)`` weight matrix."""
        return self._weights

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Gather embedding vectors for the given row ids."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self._spec.rows):
            raise IndexError("embedding indices out of range")
        return self._weights[indices]

    def slice(self, start_row: int, end_row: int, shard_table_id: int | None = None) -> "EmbeddingTable":
        """A new table holding only rows ``[start_row, end_row)`` (a shard)."""
        if not 0 <= start_row <= end_row <= self._spec.rows:
            raise ValueError(
                f"invalid row range [{start_row}, {end_row}) for table with {self._spec.rows} rows"
            )
        rows = end_row - start_row
        if rows == 0:
            raise ValueError("a shard must contain at least one row")
        spec = EmbeddingTableSpec(
            table_id=self._spec.table_id if shard_table_id is None else shard_table_id,
            rows=rows,
            dim=self._spec.dim,
            dtype_bytes=self._spec.dtype_bytes,
        )
        return EmbeddingTable(spec, weights=self._weights[start_row:end_row].copy())

    def permuted(self, permutation: np.ndarray) -> "EmbeddingTable":
        """A new table with rows reordered (used by hotness sorting)."""
        permutation = np.asarray(permutation, dtype=np.int64)
        if permutation.shape != (self._spec.rows,):
            raise ValueError("permutation must cover every row exactly once")
        if not np.array_equal(np.sort(permutation), np.arange(self._spec.rows)):
            raise ValueError("permutation must be a valid reordering of row ids")
        return EmbeddingTable(self._spec, weights=self._weights[permutation].copy())


class EmbeddingBag:
    """Gather-and-pool operator over one embedding table.

    Mirrors ``torch.nn.EmbeddingBag``: ``indices`` is a flat id array and
    ``offsets[i]`` marks where batch element ``i`` begins.
    """

    def __init__(self, table: EmbeddingTable, pooling_mode: str = "sum") -> None:
        if pooling_mode not in _SUPPORTED_POOLING:
            raise ValueError(
                f"pooling_mode must be one of {_SUPPORTED_POOLING}, got {pooling_mode!r}"
            )
        self._table = table
        self._pooling_mode = pooling_mode

    @property
    def table(self) -> EmbeddingTable:
        """The wrapped embedding table."""
        return self._table

    @property
    def pooling_mode(self) -> str:
        """Reduction applied across each batch element's gathered vectors."""
        return self._pooling_mode

    def forward(self, indices: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Pool the gathered vectors per batch element into a ``(batch, dim)`` array."""
        indices = np.asarray(indices, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size == 0:
            raise ValueError("offsets must be a non-empty 1-D array")
        if offsets[0] != 0 or np.any(np.diff(offsets) < 0) or offsets[-1] > indices.size:
            raise ValueError("offsets must be non-decreasing, start at 0 and stay in range")
        batch = offsets.size
        dim = self._table.spec.dim
        output = np.zeros((batch, dim))
        bounds = np.append(offsets, indices.size)
        gathered = self._table.lookup(indices) if indices.size else np.empty((0, dim))
        for sample in range(batch):
            start, stop = int(bounds[sample]), int(bounds[sample + 1])
            if start == stop:
                continue
            pooled = gathered[start:stop].sum(axis=0)
            if self._pooling_mode == "mean":
                pooled /= stop - start
            output[sample] = pooled
        return output

    __call__ = forward
