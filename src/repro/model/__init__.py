"""DLRM model substrate.

The paper serves DLRM-style recommendation models (Figure 1): a bottom MLP
over continuous features, per-table embedding bag lookups over categorical
features, a pairwise feature-interaction stage and a top MLP producing the
click probability.  The paper uses PyTorch/libtorch; this subpackage provides
a functionally equivalent numpy implementation together with analytic FLOP,
parameter and memory-traffic counters, plus the workload configurations of
Tables I and II (RM1/RM2/RM3 and the microbenchmark sweep).
"""

from repro.model.configs import (
    LOCALITY_PRESETS,
    MICROBENCHMARK_MLP_PRESETS,
    DLRMConfig,
    EmbeddingConfig,
    MLPConfig,
    microbenchmark,
    rm1,
    rm2,
    rm3,
    workload_presets,
)
from repro.model.mlp import MLP
from repro.model.embedding import EmbeddingBag, EmbeddingTable, EmbeddingTableSpec
from repro.model.interaction import FeatureInteraction
from repro.model.dlrm import DLRM
from repro.model.analytics import LayerBreakdown, ModelAnalytics

__all__ = [
    "DLRMConfig",
    "EmbeddingConfig",
    "MLPConfig",
    "microbenchmark",
    "rm1",
    "rm2",
    "rm3",
    "workload_presets",
    "MICROBENCHMARK_MLP_PRESETS",
    "LOCALITY_PRESETS",
    "MLP",
    "EmbeddingTable",
    "EmbeddingTableSpec",
    "EmbeddingBag",
    "FeatureInteraction",
    "DLRM",
    "ModelAnalytics",
    "LayerBreakdown",
]
