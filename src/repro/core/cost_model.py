"""Algorithm 1: deployment-cost (memory-consumption) estimation.

The cost of deploying an embedding shard holding the sorted rows
``[start_row, end_row)`` is::

    COST(k, j)   = REPLICAS(k, j) * (CAPACITY(k, j) + min_mem_alloc)
    REPLICAS(k,j)= target_traffic / QPS(n_s)
    n_s          = (CDF(j) - CDF(k)) * n_t

where ``n_t`` is the table's pooling factor, the CDF comes from the
hot-sorted access distribution and ``QPS(x)`` is the profiling-based
regression model.  ``target_traffic`` is an arbitrary constant shared by all
candidate partitionings (the paper uses 1000 queries/s); it scales every
plan's cost identically and therefore does not change which plan is optimal.

Row ranges are half-open ``[start_row, end_row)`` throughout this package
(0-based), which maps onto the paper's inclusive ``[k, j]`` 1-based notation
with ``CAPACITY = (j - k + 1) * row_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.preprocessing import SortedTable
from repro.core.qps_model import QPSRegressionModel

__all__ = ["ShardCostEstimate", "DeploymentCostModel"]

#: Target traffic constant used by the DP (Section IV-B: "we utilized 1000").
DEFAULT_DP_TARGET_TRAFFIC = 1000.0


@dataclass(frozen=True)
class ShardCostEstimate:
    """All intermediate quantities of one COST(k, j) evaluation."""

    start_row: int
    end_row: int
    coverage: float
    expected_gathers: float
    estimated_qps: float
    num_replicas: float
    capacity_bytes: float
    memory_bytes: float

    @property
    def rows(self) -> int:
        """Rows held by the candidate shard."""
        return self.end_row - self.start_row


class DeploymentCostModel:
    """Evaluates Algorithm 1 for candidate shards of one sorted table."""

    def __init__(
        self,
        table: SortedTable,
        qps_model: QPSRegressionModel,
        target_traffic: float = DEFAULT_DP_TARGET_TRAFFIC,
        min_mem_alloc_bytes: float = 0.5e9,
    ) -> None:
        if target_traffic <= 0:
            raise ValueError("target_traffic must be positive")
        if min_mem_alloc_bytes < 0:
            raise ValueError("min_mem_alloc_bytes must be non-negative")
        self._table = table
        self._qps_model = qps_model
        self._target_traffic = float(target_traffic)
        self._min_mem_alloc_bytes = float(min_mem_alloc_bytes)

    @property
    def table(self) -> SortedTable:
        """The sorted table being partitioned."""
        return self._table

    @property
    def qps_model(self) -> QPSRegressionModel:
        """The profiling-based QPS regression."""
        return self._qps_model

    @property
    def target_traffic(self) -> float:
        """The DP's constant traffic target."""
        return self._target_traffic

    @property
    def min_mem_alloc_bytes(self) -> float:
        """Per-container minimally required memory (Algorithm 1, line 3)."""
        return self._min_mem_alloc_bytes

    def _validate_range(self, start_row: int, end_row: int) -> None:
        if not 0 <= start_row < end_row <= self._table.rows:
            raise ValueError(
                f"invalid shard range [{start_row}, {end_row}) for a table with "
                f"{self._table.rows} rows"
            )

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def capacity_bytes(self, start_row: int, end_row: int) -> float:
        """CAPACITY(k, j): bytes of embedding vectors stored by the shard."""
        self._validate_range(start_row, end_row)
        return float(self._table.spec.slice_bytes(start_row, end_row))

    def expected_gathers(self, start_row: int, end_row: int) -> float:
        """``n_s``: expected vectors gathered from the shard per ranked item."""
        self._validate_range(start_row, end_row)
        return self._table.expected_gathers(start_row, end_row)

    def replicas(self, start_row: int, end_row: int) -> float:
        """REPLICAS(k, j): replicas needed to sustain the DP traffic target."""
        gathers = self.expected_gathers(start_row, end_row)
        qps = self._qps_model.predict_qps(gathers)
        return self._target_traffic / qps

    def cost(self, start_row: int, end_row: int) -> float:
        """COST(k, j): estimated memory consumption of deploying the shard."""
        return self.estimate(start_row, end_row).memory_bytes

    def estimate(self, start_row: int, end_row: int) -> ShardCostEstimate:
        """Full breakdown of one COST(k, j) evaluation."""
        self._validate_range(start_row, end_row)
        coverage = self._table.distribution.coverage_range(start_row, end_row)
        gathers = coverage * self._table.pooling
        qps = self._qps_model.predict_qps(gathers)
        replicas = self._target_traffic / qps
        capacity = self.capacity_bytes(start_row, end_row)
        shard_size = capacity + self._min_mem_alloc_bytes
        return ShardCostEstimate(
            start_row=start_row,
            end_row=end_row,
            coverage=coverage,
            expected_gathers=gathers,
            estimated_qps=qps,
            num_replicas=replicas,
            capacity_bytes=capacity,
            memory_bytes=replicas * shard_size,
        )
