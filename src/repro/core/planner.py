"""The end-to-end ElasticRec deployment planner (Section IV).

Given a workload configuration, a cluster specification and a target QPS, the
planner performs the paper's pre-deployment pipeline (Figure 7):

1. **Deployment cost estimator** — profile embedding gathers on the target
   hardware and fit the ``QPS(x)`` regression model (Section IV-B, Figure 9).
2. **Table partitioning module** — run the Algorithm-2 dynamic program per
   embedding table to find the memory-minimising shard boundaries.
3. **Deployment module** — emit one containerised deployment per shard type
   (a dense DNN shard plus every embedding shard of every table), size its
   replica count for the target QPS and attach its HPA policy.

All tables of a workload share size, dimension, pooling factor and access
skew (Table II), so the partitioning DP is solved once and its boundaries are
reused for every table; the resulting shard/deployment objects are still
emitted per table because Kubernetes scales each table's shards
independently.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.cost_model import DEFAULT_DP_TARGET_TRAFFIC, DeploymentCostModel
from repro.core.hpa_policy import build_hpa_target
from repro.core.partitioning import (
    DEFAULT_GRANULARITY,
    DEFAULT_MAX_SHARDS,
    PartitioningResult,
    partition_table,
)
from repro.core.plan import DeploymentPlan, ROLE_DENSE, ROLE_EMBEDDING, ShardDeployment
from repro.core.preprocessing import SortedTable
from repro.core.qps_model import QPSRegressionModel
from repro.core.sharding import DenseShardSpec, EmbeddingShardSpec, ShardingPlan
from repro.data.distributions import AccessDistribution
from repro.hardware.perf_model import PerfModel
from repro.hardware.specs import ClusterSpec
from repro.model.configs import DLRMConfig
from repro.model.embedding import EmbeddingTableSpec

__all__ = ["ElasticRecPlanner"]


class ElasticRecPlanner:
    """Plans an ElasticRec microservice deployment for DLRM workloads."""

    def __init__(
        self,
        cluster: ClusterSpec,
        max_shards: int = DEFAULT_MAX_SHARDS,
        granularity: int = DEFAULT_GRANULARITY,
        dp_target_traffic: float = DEFAULT_DP_TARGET_TRAFFIC,
    ) -> None:
        if max_shards <= 0:
            raise ValueError("max_shards must be positive")
        self._cluster = cluster
        self._perf_model = PerfModel(cluster)
        self._max_shards = int(max_shards)
        self._granularity = int(granularity)
        self._dp_target_traffic = float(dp_target_traffic)

    @property
    def cluster(self) -> ClusterSpec:
        """The target cluster."""
        return self._cluster

    @property
    def perf_model(self) -> PerfModel:
        """The performance model standing in for hardware profiling."""
        return self._perf_model

    # ------------------------------------------------------------------
    # Pre-deployment: cost estimation and table partitioning
    # ------------------------------------------------------------------
    def fit_qps_model(self, config: DLRMConfig) -> QPSRegressionModel:
        """One-time gather profiling plus regression fit for this workload.

        Profiling runs under the sparse-shard container's core budget so that
        Algorithm 1's replica estimates match the shards that will actually
        be deployed.
        """
        return QPSRegressionModel.from_profile(
            self._perf_model,
            embedding_dim=config.embedding.embedding_dim,
            batch_size=config.batch_size,
            dtype_bytes=config.embedding.dtype_bytes,
            cores=self._cluster.container_policy.sparse_shard_cores,
        )

    def cost_model_for_table(
        self,
        config: DLRMConfig,
        table_id: int = 0,
        distribution: AccessDistribution | None = None,
    ) -> DeploymentCostModel:
        """Algorithm-1 evaluator for one (hot-sorted) table of the workload.

        ``distribution`` overrides the workload's synthetic locality-derived
        access skew with a measured one — e.g. an
        :class:`~repro.data.distributions.EmpiricalDistribution` built from
        the per-embedding access counts a production server records.
        """
        emb = config.embedding
        spec = EmbeddingTableSpec(
            table_id=table_id,
            rows=emb.rows_per_table,
            dim=emb.embedding_dim,
            dtype_bytes=emb.dtype_bytes,
        )
        table = SortedTable(
            spec=spec,
            distribution=distribution if distribution is not None else emb.access_distribution(),
            pooling=emb.pooling,
        )
        return DeploymentCostModel(
            table=table,
            qps_model=self.fit_qps_model(config),
            target_traffic=self._dp_target_traffic,
            min_mem_alloc_bytes=self._cluster.container_policy.min_mem_alloc_gb * 1e9,
        )

    def partition(
        self, config: DLRMConfig, num_shards: int | None = None
    ) -> PartitioningResult:
        """Run Algorithm 2 for one table of the workload."""
        cost_model = self.cost_model_for_table(config)
        return partition_table(
            cost_model,
            max_shards=self._max_shards,
            granularity=self._granularity,
            num_shards=num_shards,
        )

    def sharding_plan(
        self,
        config: DLRMConfig,
        num_shards: int | None = None,
        partitioning: PartitioningResult | None = None,
        table_distributions: Sequence[AccessDistribution] | None = None,
    ) -> ShardingPlan:
        """Shard every table (and the dense layers) of the workload.

        By default the Algorithm-2 DP runs once (all Table II tables share
        size, pooling and skew) and its boundaries are reused for every table.
        ``partitioning`` supplies a pre-computed plan instead (e.g. one of the
        ablation strategies in :mod:`repro.core.alternative_partitioners`).
        ``table_distributions`` supplies one *measured* access distribution
        per table — the production scenario where each table has its own
        recorded access-count history — in which case every table is
        partitioned independently with its own distribution.
        """
        emb = config.embedding
        if table_distributions is not None:
            if partitioning is not None:
                raise ValueError("pass either partitioning or table_distributions, not both")
            if len(table_distributions) != emb.num_tables:
                raise ValueError(
                    f"expected {emb.num_tables} table distributions, "
                    f"got {len(table_distributions)}"
                )
            partitionings = []
            for table_id, distribution in enumerate(table_distributions):
                cost_model = self.cost_model_for_table(
                    config, table_id=table_id, distribution=distribution
                )
                partitionings.append(
                    partition_table(
                        cost_model,
                        max_shards=self._max_shards,
                        granularity=self._granularity,
                        num_shards=num_shards,
                    )
                )
        else:
            if partitioning is None:
                partitioning = self.partition(config, num_shards=num_shards)
            elif partitioning.num_rows != emb.rows_per_table:
                raise ValueError(
                    "the supplied partitioning covers "
                    f"{partitioning.num_rows} rows but each table has "
                    f"{emb.rows_per_table}"
                )
            partitionings = [partitioning] * emb.num_tables

        shards = []
        for table_id, table_partitioning in enumerate(partitionings):
            for shard_index, estimate in enumerate(table_partitioning.shard_estimates):
                shards.append(
                    EmbeddingShardSpec(
                        model_name=config.name,
                        table_id=table_id,
                        shard_index=shard_index,
                        start_row=estimate.start_row,
                        end_row=estimate.end_row,
                        embedding_dim=emb.embedding_dim,
                        dtype_bytes=emb.dtype_bytes,
                        expected_gathers_per_item=estimate.expected_gathers,
                        coverage=estimate.coverage,
                    )
                )
        return ShardingPlan(
            config=config,
            dense_shard=DenseShardSpec.from_config(config),
            embedding_shards=tuple(shards),
            table_boundaries=tuple(p.boundaries for p in partitionings),
        )

    # ------------------------------------------------------------------
    # Deployment sizing
    # ------------------------------------------------------------------
    def _dense_deployment(
        self, config: DLRMConfig, sharding: ShardingPlan, target_qps: float
    ) -> ShardDeployment:
        policy = self._cluster.container_policy
        headroom = self._cluster.utilization_headroom
        per_replica_qps = self._perf_model.dense_qps(config)
        replicas = max(1, math.ceil(target_qps / (per_replica_qps * headroom)))
        memory_bytes = sharding.dense_shard.parameter_bytes + policy.min_mem_alloc_gb * 1e9
        return ShardDeployment(
            name=sharding.dense_shard.name,
            role=ROLE_DENSE,
            replicas=replicas,
            per_replica_memory_bytes=memory_bytes,
            cores=policy.dense_shard_cores,
            gpus=policy.dense_shard_gpus if self._cluster.is_gpu_system else 0,
            per_replica_qps=per_replica_qps,
            startup_s=policy.startup_seconds(memory_bytes / 1e9),
            hpa=build_hpa_target("dense", sla_s=self._cluster.sla_s),
        )

    def _embedding_deployment(
        self, config: DLRMConfig, shard: EmbeddingShardSpec, target_qps: float
    ) -> ShardDeployment:
        policy = self._cluster.container_policy
        headroom = self._cluster.utilization_headroom
        per_replica_qps = self._perf_model.sparse_shard_qps(
            gathers_per_item=shard.expected_gathers_per_item,
            embedding_dim=shard.embedding_dim,
            batch_size=config.batch_size,
            dtype_bytes=shard.dtype_bytes,
            cores=policy.sparse_shard_cores,
        )
        replicas = max(1, math.ceil(target_qps / (per_replica_qps * headroom)))
        memory_bytes = shard.capacity_bytes + policy.min_mem_alloc_gb * 1e9
        # The HPA target is the stress-tested QPS_max knee, which sits a bit
        # below the replica's saturation throughput (Section IV-D).
        max_qps = per_replica_qps * policy.hpa_target_fraction
        return ShardDeployment(
            name=shard.name,
            role=ROLE_EMBEDDING,
            replicas=replicas,
            per_replica_memory_bytes=memory_bytes,
            cores=policy.sparse_shard_cores,
            gpus=0,
            per_replica_qps=per_replica_qps,
            startup_s=policy.startup_seconds(memory_bytes / 1e9),
            hpa=build_hpa_target("sparse", shard_max_qps=max_qps),
            embedding_shard=shard,
        )

    def plan(
        self,
        config: DLRMConfig,
        target_qps: float,
        num_shards: int | None = None,
        partitioning: PartitioningResult | None = None,
        table_distributions: Sequence[AccessDistribution] | None = None,
    ) -> DeploymentPlan:
        """Produce the full ElasticRec deployment plan for a target QPS."""
        if target_qps <= 0:
            raise ValueError("target_qps must be positive")
        sharding = self.sharding_plan(
            config,
            num_shards=num_shards,
            partitioning=partitioning,
            table_distributions=table_distributions,
        )
        deployments = [self._dense_deployment(config, sharding, target_qps)]
        for shard in sharding.embedding_shards:
            deployments.append(self._embedding_deployment(config, shard, target_qps))
        return DeploymentPlan(
            name=f"{config.name}-elasticrec",
            strategy="elasticrec",
            workload=config,
            cluster=self._cluster,
            target_qps=target_qps,
            deployments=tuple(deployments),
            sharding=sharding,
        )
