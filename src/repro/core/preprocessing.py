"""Embedding-table preprocessing: hotness sorting and access CDF construction.

Section IV-B (Figure 8): before partitioning, ElasticRec sorts each embedding
table by access frequency so that a shard of consecutive index IDs contains
vectors of similar hotness.  The access frequency is obtained from a history
of per-embedding access counts kept by production inference servers; here it
comes either from observed counts (a trace) or from a synthetic access
distribution.  The sort is a one-time, off-critical-path operation (the paper
reports roughly three seconds for a 20M-row table).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.distributions import AccessDistribution, EmpiricalDistribution
from repro.model.embedding import EmbeddingTableSpec

__all__ = ["sort_by_hotness", "SortedTable", "preprocess_table"]


def sort_by_hotness(access_counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort per-row access counts descending.

    Returns ``(permutation, sorted_counts)`` where ``permutation[new_rank]``
    is the original row id now stored at ``new_rank`` (rank 0 = hottest).  The
    sort is stable so ties keep their original relative order, which makes the
    preprocessing deterministic.
    """
    counts = np.asarray(access_counts, dtype=np.float64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("access_counts must be a non-empty 1-D array")
    if np.any(counts < 0):
        raise ValueError("access_counts must be non-negative")
    permutation = np.argsort(-counts, kind="stable")
    return permutation, counts[permutation]


@dataclass(frozen=True)
class SortedTable:
    """A hotness-sorted embedding table ready for partitioning.

    Attributes
    ----------
    spec:
        Size/shape metadata of the table.
    distribution:
        Access distribution over the *sorted* ranks (rank 0 is hottest).
    pooling:
        Average number of vectors gathered from this table per ranked item
        (Algorithm 1's ``n_t``).
    permutation:
        Optional mapping from sorted rank to original row id.  ``None`` when
        the table was already described by a hot-sorted synthetic
        distribution (the common case for paper-scale workloads).
    """

    spec: EmbeddingTableSpec
    distribution: AccessDistribution
    pooling: int
    permutation: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.pooling <= 0:
            raise ValueError(f"pooling must be positive, got {self.pooling}")
        if self.distribution.num_items != self.spec.rows:
            raise ValueError(
                "distribution covers "
                f"{self.distribution.num_items} rows but the table has {self.spec.rows}"
            )
        if self.permutation is not None:
            permutation = np.asarray(self.permutation, dtype=np.int64)
            object.__setattr__(self, "permutation", permutation)
            if permutation.shape != (self.spec.rows,):
                raise ValueError("permutation must assign every row a sorted rank")

    @property
    def rows(self) -> int:
        """Number of embedding vectors."""
        return self.spec.rows

    def coverage(self, k: int) -> float:
        """CDF over sorted ranks (Algorithm 1, line 11)."""
        return self.distribution.coverage(k)

    def expected_gathers(self, start_row: int, end_row: int) -> float:
        """Expected gathers per ranked item served by rows ``[start_row, end_row)``.

        This is Algorithm 1's ``n_s = (CDF(j) - CDF(k)) * n_t``.
        """
        probability = self.distribution.coverage_range(start_row, end_row)
        return probability * self.pooling

    def sorted_to_original(self, sorted_ranks: np.ndarray) -> np.ndarray:
        """Map sorted ranks back to original row ids (identity if unsorted input)."""
        sorted_ranks = np.asarray(sorted_ranks, dtype=np.int64)
        if self.permutation is None:
            return sorted_ranks
        return self.permutation[sorted_ranks]

    def estimated_sort_seconds(self, rows_per_second: float = 7_000_000.0) -> float:
        """Rough one-time sorting cost (the paper reports ~3 s for 20M rows)."""
        if rows_per_second <= 0:
            raise ValueError("rows_per_second must be positive")
        return self.rows / rows_per_second


def preprocess_table(
    spec: EmbeddingTableSpec,
    pooling: int,
    access_counts: np.ndarray | None = None,
    distribution: AccessDistribution | None = None,
) -> SortedTable:
    """Build a :class:`SortedTable` from either observed counts or a distribution.

    Exactly one of ``access_counts`` / ``distribution`` must be supplied.
    Observed counts are sorted (Figure 8(b)) and wrapped in an
    :class:`~repro.data.distributions.EmpiricalDistribution`; a supplied
    distribution is assumed to already be expressed over hot-sorted ranks.
    """
    if (access_counts is None) == (distribution is None):
        raise ValueError("provide exactly one of access_counts or distribution")
    if access_counts is not None:
        counts = np.asarray(access_counts, dtype=np.float64)
        if counts.size != spec.rows:
            raise ValueError(
                f"access_counts has {counts.size} entries but the table has {spec.rows} rows"
            )
        permutation, _ = sort_by_hotness(counts)
        empirical = EmpiricalDistribution(counts)
        return SortedTable(
            spec=spec, distribution=empirical, pooling=pooling, permutation=permutation
        )
    return SortedTable(spec=spec, distribution=distribution, pooling=pooling)
