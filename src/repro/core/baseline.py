"""The model-wise (monolithic) baseline serving architecture (Section II-B).

Every replica is one container holding the entire model — dense layers plus
every embedding table — and Kubernetes scales whole replicas.  A replica's
throughput is bounded by its slower layer (Figure 4), so reaching a target
QPS requires ``ceil(target / bottleneck_qps)`` replicas, each of which
duplicates the full embedding tables in memory.
"""

from __future__ import annotations

import math

from repro.core.hpa_policy import build_hpa_target
from repro.core.plan import DeploymentPlan, ROLE_MONOLITHIC, ShardDeployment
from repro.hardware.perf_model import PerfModel
from repro.hardware.specs import ClusterSpec
from repro.model.analytics import ModelAnalytics
from repro.model.configs import DLRMConfig

__all__ = ["ModelWisePlanner"]


class ModelWisePlanner:
    """Plans the baseline model-wise deployment for DLRM workloads."""

    #: Strategy tag recorded in produced plans.
    strategy = "model-wise"

    def __init__(self, cluster: ClusterSpec) -> None:
        self._cluster = cluster
        self._perf_model = PerfModel(cluster)

    @property
    def cluster(self) -> ClusterSpec:
        """The target cluster."""
        return self._cluster

    @property
    def perf_model(self) -> PerfModel:
        """The shared performance model."""
        return self._perf_model

    def replica_qps(self, config: DLRMConfig) -> float:
        """Throughput of one monolithic replica (bounded by its slower layer)."""
        return self._perf_model.model_wise_qps(config)

    def replica_memory_bytes(self, config: DLRMConfig) -> float:
        """Memory one replica allocates: the whole model plus the container minimum."""
        analytics = ModelAnalytics(config)
        return analytics.model_bytes() + self._cluster.container_policy.min_mem_alloc_gb * 1e9

    def plan(self, config: DLRMConfig, target_qps: float) -> DeploymentPlan:
        """Produce the model-wise deployment plan for a target QPS."""
        if target_qps <= 0:
            raise ValueError("target_qps must be positive")
        policy = self._cluster.container_policy
        headroom = self._cluster.utilization_headroom
        per_replica_qps = self.replica_qps(config)
        replicas = max(1, math.ceil(target_qps / (per_replica_qps * headroom)))
        memory_bytes = self.replica_memory_bytes(config)
        deployment = ShardDeployment(
            name=f"{config.name}-model-wise",
            role=ROLE_MONOLITHIC,
            replicas=replicas,
            per_replica_memory_bytes=memory_bytes,
            cores=policy.model_wise_cores,
            gpus=policy.model_wise_gpus if self._cluster.is_gpu_system else 0,
            per_replica_qps=per_replica_qps,
            startup_s=policy.startup_seconds(memory_bytes / 1e9),
            hpa=build_hpa_target(
                "monolithic", shard_max_qps=per_replica_qps * policy.hpa_target_fraction
            ),
        )
        return DeploymentPlan(
            name=f"{config.name}-{self.strategy}",
            strategy=self.strategy,
            workload=config,
            cluster=self._cluster,
            target_qps=target_qps,
            deployments=(deployment,),
        )
