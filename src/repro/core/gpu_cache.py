"""Model-wise baseline augmented with a GPU-side embedding cache (Section VI-E).

Prior work caches hot embedding vectors in GPU HBM to relieve CPU memory
bandwidth.  Following the paper's conservative modelling (after Kwon et al.),
the cache captures 90% of embedding gathers, which reduces the embedding
layer's average latency by 47%; that raises each monolithic replica's
throughput and therefore lowers the number of replicas — but the resource
allocation stays coarse-grained, so whole-table duplication remains.
"""

from __future__ import annotations

from repro.core.baseline import ModelWisePlanner
from repro.data.distributions import hot_prefix_rows
from repro.hardware.specs import ClusterSpec
from repro.model.configs import DLRMConfig

__all__ = ["CachedModelWisePlanner"]


class CachedModelWisePlanner(ModelWisePlanner):
    """Model-wise planner whose replicas benefit from a GPU embedding cache."""

    strategy = "model-wise-cache"

    def __init__(self, cluster: ClusterSpec) -> None:
        if not cluster.is_gpu_system:
            raise ValueError(
                "the GPU embedding-cache baseline requires a CPU-GPU cluster "
                "(the cache lives in GPU HBM)"
            )
        super().__init__(cluster)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of embedding gathers captured by the GPU cache."""
        return self.cluster.calibration.gpu_cache_hit_rate

    @property
    def cache_latency_reduction(self) -> float:
        """Average embedding-layer latency reduction the cache provides."""
        return self.cluster.calibration.gpu_cache_latency_reduction

    def replica_qps(self, config: DLRMConfig) -> float:
        """Monolithic replica throughput with the cache accelerating the sparse layer."""
        return self.perf_model.model_wise_qps(
            config, cache_latency_reduction=self.cache_latency_reduction
        )

    def cache_bytes_per_replica(self, config: DLRMConfig) -> float:
        """GPU HBM the cache occupies per replica (not counted as CPU memory).

        Modelled as the fraction of each table whose hottest rows cover
        ``cache_hit_rate`` of accesses, capped at 20% of HBM following the
        sizing reported by the caching literature the paper cites.

        The prefix comes from the shared
        :func:`repro.data.distributions.hot_prefix_rows` definition (its
        ``coverage`` form), so this offline sizing and the serve-time
        :class:`~repro.serving.workload.SkewedCostModel` hot set agree on the
        same hot-sorted prefix of each table.
        """
        emb = config.embedding
        distribution = emb.access_distribution()
        # Smallest hot prefix covering the hit rate (shared bisection).
        hot_rows = hot_prefix_rows(distribution, coverage=self.cache_hit_rate)
        cache_bytes = float(
            hot_rows * emb.embedding_dim * emb.dtype_bytes * emb.num_tables
        )
        hbm_limit = 0.2 * self.cluster.node.gpu.hbm_gb * 1e9
        return min(cache_bytes, hbm_limit)
