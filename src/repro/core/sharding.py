"""Model shard descriptions and the per-model sharding plan.

ElasticRec partitions a DLRM model into two shard types (Section IV-A):

* one **dense DNN shard** servicing the bottom MLP, feature interaction and
  top MLP;
* per embedding table, one or more **embedding shards**, each holding a
  contiguous range of hot-sorted rows, produced by the Algorithm-2
  partitioner.

A :class:`ShardingPlan` collects all shard specifications for one workload
and provides the bucketizers that route lookups onto the embedding shards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bucketization import Bucketizer
from repro.model.analytics import ModelAnalytics
from repro.model.configs import DLRMConfig

__all__ = ["DenseShardSpec", "EmbeddingShardSpec", "ShardingPlan"]


@dataclass(frozen=True)
class DenseShardSpec:
    """The dense DNN shard of one workload."""

    model_name: str
    parameter_bytes: int
    flops_per_query: int

    def __post_init__(self) -> None:
        if self.parameter_bytes <= 0:
            raise ValueError("parameter_bytes must be positive")
        if self.flops_per_query <= 0:
            raise ValueError("flops_per_query must be positive")

    @property
    def name(self) -> str:
        """Deployment name of the dense shard."""
        return f"{self.model_name}-dense"

    @classmethod
    def from_config(cls, config: DLRMConfig) -> "DenseShardSpec":
        """Derive the dense shard description from a workload configuration."""
        analytics = ModelAnalytics(config)
        return cls(
            model_name=config.name,
            parameter_bytes=analytics.dense_parameter_bytes(),
            flops_per_query=analytics.dense_flops_per_query(),
        )


@dataclass(frozen=True)
class EmbeddingShardSpec:
    """One embedding shard: a contiguous hot-sorted row range of one table."""

    model_name: str
    table_id: int
    shard_index: int
    start_row: int
    end_row: int
    embedding_dim: int
    dtype_bytes: int
    expected_gathers_per_item: float
    coverage: float

    def __post_init__(self) -> None:
        if self.table_id < 0 or self.shard_index < 0:
            raise ValueError("table_id and shard_index must be non-negative")
        if not 0 <= self.start_row < self.end_row:
            raise ValueError("start_row/end_row must describe a non-empty range")
        if self.embedding_dim <= 0 or self.dtype_bytes <= 0:
            raise ValueError("embedding_dim and dtype_bytes must be positive")
        if self.expected_gathers_per_item < 0:
            raise ValueError("expected_gathers_per_item must be non-negative")
        if not 0.0 <= self.coverage <= 1.0 + 1e-9:
            raise ValueError("coverage must be in [0, 1]")

    @property
    def name(self) -> str:
        """Deployment name, e.g. ``RM1-table0-shard1``."""
        return f"{self.model_name}-table{self.table_id}-shard{self.shard_index}"

    @property
    def rows(self) -> int:
        """Rows held by this shard."""
        return self.end_row - self.start_row

    @property
    def capacity_bytes(self) -> int:
        """Bytes of embedding vectors stored by this shard."""
        return self.rows * self.embedding_dim * self.dtype_bytes

    @property
    def is_hottest(self) -> bool:
        """Whether this is the hottest shard of its table."""
        return self.shard_index == 0


@dataclass(frozen=True)
class ShardingPlan:
    """All shards of one workload, as produced by the ElasticRec planner."""

    config: DLRMConfig
    dense_shard: DenseShardSpec
    embedding_shards: tuple[EmbeddingShardSpec, ...]
    table_boundaries: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "embedding_shards", tuple(self.embedding_shards))
        object.__setattr__(
            self, "table_boundaries", tuple(tuple(b) for b in self.table_boundaries)
        )
        if len(self.table_boundaries) != self.config.embedding.num_tables:
            raise ValueError("one boundary list per embedding table is required")
        for table_id, boundaries in enumerate(self.table_boundaries):
            if boundaries[0] != 0 or boundaries[-1] != self.config.embedding.rows_per_table:
                raise ValueError(f"table {table_id} boundaries must cover the whole table")
            shards = self.shards_for_table(table_id)
            if len(shards) != len(boundaries) - 1:
                raise ValueError(
                    f"table {table_id} has {len(shards)} shards but "
                    f"{len(boundaries) - 1} boundary intervals"
                )

    @property
    def num_tables(self) -> int:
        """Number of embedding tables in the workload."""
        return self.config.embedding.num_tables

    @property
    def num_embedding_shards(self) -> int:
        """Total embedding shards across every table."""
        return len(self.embedding_shards)

    def shards_for_table(self, table_id: int) -> list[EmbeddingShardSpec]:
        """Embedding shards of one table, hottest first."""
        shards = [s for s in self.embedding_shards if s.table_id == table_id]
        return sorted(shards, key=lambda s: s.shard_index)

    def shards_per_table(self) -> dict[int, int]:
        """Shard count per table."""
        return {t: len(self.shards_for_table(t)) for t in range(self.num_tables)}

    def bucketizer_for_table(self, table_id: int) -> Bucketizer:
        """The index router matching this table's partitioning."""
        if not 0 <= table_id < self.num_tables:
            raise KeyError(f"unknown table id {table_id}")
        return Bucketizer(self.table_boundaries[table_id])

    def single_copy_embedding_bytes(self) -> int:
        """Bytes of one copy of every embedding shard (no replication)."""
        return sum(s.capacity_bytes for s in self.embedding_shards)

    def summary(self) -> dict[str, float]:
        """Headline structural numbers of the plan."""
        return {
            "num_tables": float(self.num_tables),
            "num_embedding_shards": float(self.num_embedding_shards),
            "dense_parameter_bytes": float(self.dense_shard.parameter_bytes),
            "single_copy_embedding_gb": self.single_copy_embedding_bytes() / 1e9,
        }
