"""Deployment plans: how many replicas of which container serve a workload.

A :class:`DeploymentPlan` is the common output format of the ElasticRec
planner and of the baseline planners; every analysis (memory consumption,
memory utility, server count) and the serving simulator consume plans through
this interface, so ElasticRec and the baselines are always compared on
exactly the same accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.hpa_policy import HPATarget
from repro.core.sharding import EmbeddingShardSpec, ShardingPlan
from repro.hardware.specs import ClusterSpec
from repro.model.configs import DLRMConfig

__all__ = ["ShardDeployment", "DeploymentPlan", "ROLE_DENSE", "ROLE_EMBEDDING", "ROLE_MONOLITHIC"]

ROLE_DENSE = "dense"
ROLE_EMBEDDING = "embedding"
ROLE_MONOLITHIC = "monolithic"

_VALID_ROLES = (ROLE_DENSE, ROLE_EMBEDDING, ROLE_MONOLITHIC)


@dataclass(frozen=True)
class ShardDeployment:
    """One deployment (a container image plus its replica count)."""

    name: str
    role: str
    replicas: int
    per_replica_memory_bytes: float
    cores: int
    gpus: int
    per_replica_qps: float
    startup_s: float
    hpa: HPATarget | None = None
    embedding_shard: EmbeddingShardSpec | None = None

    def __post_init__(self) -> None:
        if self.role not in _VALID_ROLES:
            raise ValueError(f"role must be one of {_VALID_ROLES}, got {self.role!r}")
        if self.replicas <= 0:
            raise ValueError("replicas must be positive")
        if self.per_replica_memory_bytes <= 0:
            raise ValueError("per_replica_memory_bytes must be positive")
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.gpus < 0:
            raise ValueError("gpus must be non-negative")
        if self.per_replica_qps <= 0:
            raise ValueError("per_replica_qps must be positive")
        if self.startup_s < 0:
            raise ValueError("startup_s must be non-negative")
        if self.role == ROLE_EMBEDDING and self.embedding_shard is None:
            raise ValueError("embedding deployments must carry their shard spec")

    @property
    def total_memory_bytes(self) -> float:
        """Memory allocated across every replica of this deployment."""
        return self.replicas * self.per_replica_memory_bytes

    @property
    def total_memory_gb(self) -> float:
        """Memory allocated across replicas, in GB."""
        return self.total_memory_bytes / 1e9

    @property
    def total_cores(self) -> int:
        """Cores requested across every replica."""
        return self.replicas * self.cores

    @property
    def total_gpus(self) -> int:
        """GPUs requested across every replica."""
        return self.replicas * self.gpus

    @property
    def aggregate_qps(self) -> float:
        """Throughput capacity of all replicas combined."""
        return self.replicas * self.per_replica_qps

    def with_replicas(self, replicas: int) -> "ShardDeployment":
        """Copy of this deployment at a different replica count."""
        return replace(self, replicas=replicas)


@dataclass(frozen=True)
class DeploymentPlan:
    """A complete serving deployment for one workload on one cluster."""

    name: str
    strategy: str
    workload: DLRMConfig
    cluster: ClusterSpec
    target_qps: float
    deployments: tuple[ShardDeployment, ...]
    sharding: ShardingPlan | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "deployments", tuple(self.deployments))
        if self.target_qps <= 0:
            raise ValueError("target_qps must be positive")
        if not self.deployments:
            raise ValueError("a plan needs at least one deployment")
        names = [d.name for d in self.deployments]
        if len(names) != len(set(names)):
            raise ValueError("deployment names must be unique")

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def deployments_by_role(self, role: str) -> list[ShardDeployment]:
        """All deployments of one role."""
        return [d for d in self.deployments if d.role == role]

    @property
    def dense_deployments(self) -> list[ShardDeployment]:
        """Dense-shard deployments (empty for the model-wise baseline)."""
        return self.deployments_by_role(ROLE_DENSE)

    @property
    def embedding_deployments(self) -> list[ShardDeployment]:
        """Embedding-shard deployments (empty for the model-wise baseline)."""
        return self.deployments_by_role(ROLE_EMBEDDING)

    @property
    def monolithic_deployments(self) -> list[ShardDeployment]:
        """Monolithic deployments (the model-wise baseline's single deployment)."""
        return self.deployments_by_role(ROLE_MONOLITHIC)

    def embedding_deployments_for_table(self, table_id: int) -> list[ShardDeployment]:
        """Embedding-shard deployments of one table, hottest shard first."""
        shards = [
            d
            for d in self.embedding_deployments
            if d.embedding_shard is not None and d.embedding_shard.table_id == table_id
        ]
        return sorted(shards, key=lambda d: d.embedding_shard.shard_index)

    def get(self, name: str) -> ShardDeployment:
        """Deployment by name."""
        for deployment in self.deployments:
            if deployment.name == name:
                return deployment
        raise KeyError(f"no deployment named {name!r} in plan {self.name!r}")

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_memory_bytes(self) -> float:
        """Memory allocated by every replica of every deployment."""
        return sum(d.total_memory_bytes for d in self.deployments)

    @property
    def total_memory_gb(self) -> float:
        """Total allocated memory in GB (the Figure 12/13/16/20 metric)."""
        return self.total_memory_bytes / 1e9

    @property
    def total_replicas(self) -> int:
        """Container replicas across every deployment."""
        return sum(d.replicas for d in self.deployments)

    @property
    def total_cores(self) -> int:
        """Cores requested across every replica."""
        return sum(d.total_cores for d in self.deployments)

    @property
    def total_gpus(self) -> int:
        """GPUs requested across every replica."""
        return sum(d.total_gpus for d in self.deployments)

    def summary(self) -> dict[str, float]:
        """Headline numbers for reports and experiment tables."""
        return {
            "target_qps": self.target_qps,
            "total_memory_gb": self.total_memory_gb,
            "total_replicas": float(self.total_replicas),
            "total_cores": float(self.total_cores),
            "total_gpus": float(self.total_gpus),
            "num_deployments": float(len(self.deployments)),
        }
