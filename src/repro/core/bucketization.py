"""Bucketization: remapping lookup indices onto partitioned embedding shards.

Section IV-C, Figure 11: once a table is split into shards of consecutive
(sorted) index ranges, the original index/offset arrays of a query can no
longer be used directly.  The bucketizer walks the original arrays, routes
every index to the shard whose range contains it, rebases the index to the
shard's local coordinate system (subtracting the shard's first row) and
rebuilds a per-shard offset array so each shard can run a standard
embedding-bag lookup independently.

Because the pooling reduction is an element-wise sum, the per-shard pooled
outputs simply add up to the monolithic result; :func:`merge_pooled` performs
that reduction and the test suite verifies the round trip exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["BucketizedLookup", "Bucketizer", "merge_pooled"]


@dataclass(frozen=True)
class BucketizedLookup:
    """The index/offset arrays routed to one embedding shard."""

    shard_index: int
    indices: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", np.asarray(self.indices, dtype=np.int64))
        object.__setattr__(self, "offsets", np.asarray(self.offsets, dtype=np.int64))

    @property
    def num_lookups(self) -> int:
        """Vectors gathered from this shard for the query."""
        return int(self.indices.size)

    @property
    def batch_size(self) -> int:
        """Batch elements covered (always the full query batch)."""
        return int(self.offsets.size)


class Bucketizer:
    """Routes lookup indices of one table onto its partitioned shards.

    Parameters
    ----------
    boundaries:
        The partitioning plan's boundary list ``[0, b1, ..., num_rows]``
        expressed over *sorted* row ranks (hottest first), as produced by
        :class:`~repro.core.partitioning.PartitioningResult`.
    rank_of_row:
        Optional mapping from original row id to sorted rank.  Supply it when
        queries address the original (unsorted) table; omit it when indices
        are already sorted ranks (synthetic workloads).
    """

    def __init__(
        self,
        boundaries: Sequence[int],
        rank_of_row: np.ndarray | None = None,
    ) -> None:
        bounds = np.asarray(list(boundaries), dtype=np.int64)
        if bounds.ndim != 1 or bounds.size < 2:
            raise ValueError("boundaries must contain at least [0, num_rows]")
        if bounds[0] != 0 or np.any(np.diff(bounds) <= 0):
            raise ValueError("boundaries must start at 0 and increase strictly")
        self._boundaries = bounds
        self._num_rows = int(bounds[-1])
        if rank_of_row is not None:
            rank_of_row = np.asarray(rank_of_row, dtype=np.int64)
            if rank_of_row.shape != (self._num_rows,):
                raise ValueError("rank_of_row must map every original row id to a rank")
            if not np.array_equal(np.sort(rank_of_row), np.arange(self._num_rows)):
                raise ValueError("rank_of_row must be a permutation of the row ids")
        self._rank_of_row = rank_of_row

    @classmethod
    def from_permutation(
        cls, boundaries: Sequence[int], permutation: np.ndarray
    ) -> "Bucketizer":
        """Build from a sorted-rank -> original-row permutation (preprocessing output)."""
        permutation = np.asarray(permutation, dtype=np.int64)
        rank_of_row = np.empty_like(permutation)
        rank_of_row[permutation] = np.arange(permutation.size)
        return cls(boundaries, rank_of_row=rank_of_row)

    @property
    def num_shards(self) -> int:
        """Number of shards indices are routed to."""
        return int(self._boundaries.size - 1)

    @property
    def num_rows(self) -> int:
        """Rows of the original table."""
        return self._num_rows

    @property
    def boundaries(self) -> np.ndarray:
        """Boundary positions over sorted ranks."""
        return self._boundaries.copy()

    def shard_of(self, indices: np.ndarray) -> np.ndarray:
        """Shard index that will serve each lookup."""
        ranks = self._to_ranks(indices)
        return np.searchsorted(self._boundaries[1:], ranks, side="right")

    def _to_ranks(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self._num_rows):
            raise IndexError("lookup indices out of table range")
        if self._rank_of_row is None:
            return indices
        return self._rank_of_row[indices]

    def bucketize(
        self, indices: np.ndarray, offsets: np.ndarray
    ) -> list[BucketizedLookup]:
        """Split one query's index/offset arrays into per-shard arrays (Figure 11)."""
        indices = np.asarray(indices, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size == 0:
            raise ValueError("offsets must be a non-empty 1-D array")
        if offsets[0] != 0 or np.any(np.diff(offsets) < 0) or offsets[-1] > indices.size:
            raise ValueError("offsets must be non-decreasing, start at 0 and stay in range")
        batch = offsets.size
        ranks = self._to_ranks(indices)
        shard_ids = np.searchsorted(self._boundaries[1:], ranks, side="right")
        lengths = np.diff(np.append(offsets, indices.size))
        sample_ids = np.repeat(np.arange(batch, dtype=np.int64), lengths)

        lookups = []
        for shard in range(self.num_shards):
            mask = shard_ids == shard
            local_indices = ranks[mask] - self._boundaries[shard]
            counts = np.bincount(sample_ids[mask], minlength=batch)
            shard_offsets = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(np.int64)
            lookups.append(
                BucketizedLookup(
                    shard_index=shard, indices=local_indices, offsets=shard_offsets
                )
            )
        return lookups

    def lookups_per_shard(self, indices: np.ndarray) -> np.ndarray:
        """How many of the given lookups land in each shard (load accounting)."""
        shard_ids = self.shard_of(indices)
        return np.bincount(shard_ids, minlength=self.num_shards)


def merge_pooled(pooled_per_shard: Sequence[np.ndarray]) -> np.ndarray:
    """Combine per-shard pooled embeddings into the monolithic pooled result.

    Sum pooling distributes over the shard partition, so the merge is an
    element-wise sum of the per-shard ``(batch, dim)`` outputs.
    """
    if not pooled_per_shard:
        raise ValueError("at least one per-shard pooled output is required")
    arrays = [np.asarray(p, dtype=np.float64) for p in pooled_per_shard]
    shape = arrays[0].shape
    for array in arrays[1:]:
        if array.shape != shape:
            raise ValueError("all per-shard pooled outputs must share the same shape")
    return np.sum(arrays, axis=0)
