"""Per-shard Horizontal Pod Autoscaling targets (Section IV-D).

ElasticRec configures Kubernetes HPA differently per shard type:

* **sparse embedding shards** use a throughput-centric target — the shard's
  stress-tested maximum sustainable QPS (``QPS_max``); exceeding it triggers
  an additional replica;
* **dense DNN shards** use a latency-centric target set to 65% of the SLA so
  that replicas are added before tail latency approaches the SLA;
* the **model-wise baseline** scales the whole monolithic replica on its
  bottleneck-layer throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HPATarget", "build_hpa_target", "DENSE_LATENCY_SLA_FRACTION"]

#: The paper sets the dense shard's latency target to 65% of the SLA.
DENSE_LATENCY_SLA_FRACTION = 0.65

_VALID_METRICS = ("qps", "p95_latency")


@dataclass(frozen=True)
class HPATarget:
    """An autoscaling target for one deployment."""

    metric: str
    target_value: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.metric not in _VALID_METRICS:
            raise ValueError(f"metric must be one of {_VALID_METRICS}, got {self.metric!r}")
        if self.target_value <= 0:
            raise ValueError("target_value must be positive")

    @property
    def is_throughput_target(self) -> bool:
        """True for QPS-based (sparse-shard style) targets."""
        return self.metric == "qps"

    def desired_replicas(self, current_replicas: int, observed_value: float) -> int:
        """Kubernetes HPA scaling rule: ``ceil(current * observed / target)``.

        For throughput targets ``observed_value`` is the average QPS *per
        replica*; for latency targets it is the observed tail latency.
        """
        if current_replicas <= 0:
            raise ValueError("current_replicas must be positive")
        if observed_value < 0:
            raise ValueError("observed_value must be non-negative")
        ratio = observed_value / self.target_value
        desired = int(-(-current_replicas * ratio // 1))  # ceil without math import
        return max(desired, 1)


def build_hpa_target(
    role: str,
    shard_max_qps: float | None = None,
    sla_s: float | None = None,
    latency_fraction: float = DENSE_LATENCY_SLA_FRACTION,
) -> HPATarget:
    """Construct the HPA target for a shard of the given role.

    ``role`` is ``"sparse"``, ``"dense"`` or ``"monolithic"``.  Sparse and
    monolithic deployments need ``shard_max_qps`` (the stress-tested
    ``QPS_max``); dense deployments need the cluster ``sla_s``.
    """
    role = role.lower()
    if role in ("sparse", "embedding", "monolithic", "model-wise"):
        if shard_max_qps is None or shard_max_qps <= 0:
            raise ValueError("a positive shard_max_qps is required for throughput targets")
        return HPATarget(
            metric="qps",
            target_value=shard_max_qps,
            description=f"scale out beyond {shard_max_qps:.1f} queries/s per replica",
        )
    if role == "dense":
        if sla_s is None or sla_s <= 0:
            raise ValueError("a positive sla_s is required for latency targets")
        if not 0 < latency_fraction <= 1:
            raise ValueError("latency_fraction must be in (0, 1]")
        target = sla_s * latency_fraction
        return HPATarget(
            metric="p95_latency",
            target_value=target,
            description=f"scale out when p95 latency exceeds {target * 1000:.0f} ms",
        )
    raise ValueError(f"unknown shard role {role!r}")
