"""Alternative table-partitioning strategies used as ablation baselines.

The paper's contribution is the utility-based DP partitioner (Algorithm 2).
To quantify how much of ElasticRec's benefit comes from the *microservice
decomposition itself* versus from the *quality of the partitioning plan*,
this module provides simpler strategies that plug into the same planner:

* :func:`no_partitioning` — one shard per table (microservices, but the whole
  table is still the replication unit);
* :func:`uniform_partitioning` — equal-row shards, oblivious to hotness (the
  row-wise sharding of prior distributed-inference work such as Lui et al.);
* :func:`threshold_partitioning` — a hot/cold split at a fixed hot fraction
  (a caching-style heuristic: everything in the "top X%" is hot).

Each returns the same :class:`~repro.core.partitioning.PartitioningResult`
shape as Algorithm 2, so all downstream accounting is identical, and the
``fixNN``-style ablation experiment compares their deployed memory directly.
"""

from __future__ import annotations

import math

from repro.core.cost_model import DeploymentCostModel
from repro.core.partitioning import PartitioningResult

__all__ = [
    "no_partitioning",
    "uniform_partitioning",
    "threshold_partitioning",
    "STRATEGIES",
]


def _result_from_boundaries(
    cost_model: DeploymentCostModel, boundaries: list[int]
) -> PartitioningResult:
    estimates = tuple(
        cost_model.estimate(start, end)
        for start, end in zip(boundaries[:-1], boundaries[1:])
    )
    return PartitioningResult(
        boundaries=tuple(boundaries),
        total_cost_bytes=float(sum(e.memory_bytes for e in estimates)),
        shard_estimates=estimates,
    )


def no_partitioning(cost_model: DeploymentCostModel) -> PartitioningResult:
    """Keep the whole table as a single shard."""
    rows = cost_model.table.rows
    return _result_from_boundaries(cost_model, [0, rows])


def uniform_partitioning(
    cost_model: DeploymentCostModel, num_shards: int = 4
) -> PartitioningResult:
    """Split the table into ``num_shards`` equal-row shards, ignoring hotness."""
    rows = cost_model.table.rows
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    num_shards = min(num_shards, rows)
    boundaries = [round(i * rows / num_shards) for i in range(num_shards + 1)]
    boundaries = sorted(set(boundaries))
    boundaries[0], boundaries[-1] = 0, rows
    return _result_from_boundaries(cost_model, boundaries)


def threshold_partitioning(
    cost_model: DeploymentCostModel, hot_fraction: float = 0.1
) -> PartitioningResult:
    """Split into a hot shard (the hottest ``hot_fraction`` of rows) and a cold shard."""
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError("hot_fraction must be in (0, 1)")
    rows = cost_model.table.rows
    cut = min(max(1, math.ceil(hot_fraction * rows)), rows - 1)
    return _result_from_boundaries(cost_model, [0, cut, rows])


#: Name -> callable registry used by the ablation experiment and the CLI.
STRATEGIES = {
    "none": no_partitioning,
    "uniform": uniform_partitioning,
    "threshold": threshold_partitioning,
}
