"""Algorithm 2: dynamic-programming embedding-table partitioning.

``Mem[num_shards][x]`` is the lowest estimated memory cost of partitioning the
``x`` hottest rows of the (hot-sorted) table into ``num_shards`` shards, where
each shard is a contiguous, non-overlapping range of sorted rows.  The
recursion of Algorithm 2 is::

    Mem[1][j]  = COST(0, j)
    Mem[s][j]  = min over i  ( Mem[s-1][i] + COST(i, j) )

and the final plan is the one minimising ``Mem[s][N]`` over all shard counts
``s <= S_max``.

Scalability: evaluated at per-row granularity the recursion is quadratic in
the number of rows, which is infeasible for the paper's 20M-row tables (the
paper's reported 18 s implies a coarser search).  :func:`partition_table`
therefore restricts shard boundaries to ``granularity`` equally spaced
candidate positions (default 512), which keeps the search space dense enough
that the found plan's cost is indistinguishable from the exact optimum for
smooth access CDFs.  :func:`partition_table_exact` runs the same DP at
per-row granularity and :func:`brute_force_partition` enumerates every plan;
both are used by the test suite to validate the bucketed DP.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.cost_model import DeploymentCostModel, ShardCostEstimate

__all__ = [
    "PartitioningResult",
    "partition_table",
    "partition_table_exact",
    "brute_force_partition",
    "candidate_boundaries",
]

DEFAULT_GRANULARITY = 512
DEFAULT_MAX_SHARDS = 16


@dataclass(frozen=True)
class PartitioningResult:
    """The outcome of partitioning one embedding table."""

    boundaries: tuple[int, ...]
    total_cost_bytes: float
    shard_estimates: tuple[ShardCostEstimate, ...]

    def __post_init__(self) -> None:
        bounds = tuple(int(b) for b in self.boundaries)
        object.__setattr__(self, "boundaries", bounds)
        if len(bounds) < 2 or bounds[0] != 0:
            raise ValueError("boundaries must start at 0 and contain at least one shard")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("boundaries must be strictly increasing")
        if len(self.shard_estimates) != self.num_shards:
            raise ValueError("one cost estimate per shard is required")

    @property
    def num_shards(self) -> int:
        """Number of shards the table was split into."""
        return len(self.boundaries) - 1

    @property
    def num_rows(self) -> int:
        """Rows covered by the plan (the whole table)."""
        return self.boundaries[-1]

    def shard_ranges(self) -> list[tuple[int, int]]:
        """Half-open sorted-row ranges, hottest shard first."""
        return list(zip(self.boundaries[:-1], self.boundaries[1:]))

    def shard_rows(self) -> list[int]:
        """Row counts per shard, hottest shard first."""
        return [end - start for start, end in self.shard_ranges()]

    @property
    def total_cost_gb(self) -> float:
        """Estimated deployment memory of the plan in GB."""
        return self.total_cost_bytes / 1e9


def candidate_boundaries(num_rows: int, granularity: int) -> np.ndarray:
    """Candidate shard-boundary positions (always includes 0 and ``num_rows``)."""
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    if num_rows <= granularity:
        return np.arange(num_rows + 1, dtype=np.int64)
    bounds = np.linspace(0, num_rows, granularity + 1)
    return np.unique(np.round(bounds).astype(np.int64))


def _cost_matrix(cost_model: DeploymentCostModel, boundaries: np.ndarray) -> np.ndarray:
    """COST(boundary[i], boundary[j]) for every i < j, vectorised.

    Coverage values are evaluated once per boundary; the cost of every
    candidate shard then follows from Algorithm 1 with simple array math.
    """
    table = cost_model.table
    qps_model = cost_model.qps_model
    num_bounds = boundaries.size
    cdf = np.array([table.distribution.coverage(int(b)) for b in boundaries])
    row_bytes = table.spec.row_bytes
    costs = np.full((num_bounds, num_bounds), np.inf)
    for i in range(num_bounds - 1):
        ends = boundaries[i + 1 :]
        coverage = cdf[i + 1 :] - cdf[i]
        gathers = coverage * table.pooling
        latency = qps_model.intercept_s + qps_model.slope_s_per_gather * gathers
        replicas = cost_model.target_traffic * latency
        capacity = (ends - boundaries[i]).astype(np.float64) * row_bytes
        costs[i, i + 1 :] = replicas * (capacity + cost_model.min_mem_alloc_bytes)
    return costs


def _run_dp(
    costs: np.ndarray,
    max_shards: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Tabulate ``Mem[s][j]`` and the arg-min predecessors over boundary indices."""
    num_bounds = costs.shape[0]
    mem = np.full((max_shards + 1, num_bounds), np.inf)
    parent = np.full((max_shards + 1, num_bounds), -1, dtype=np.int64)
    mem[1, 1:] = costs[0, 1:]
    parent[1, 1:] = 0
    for shards in range(2, max_shards + 1):
        previous = mem[shards - 1]
        # candidate[i, j] = Mem[s-1][i] + COST(i, j)
        candidate = previous[:, None] + costs
        best_prev = np.argmin(candidate, axis=0)
        best_cost = candidate[best_prev, np.arange(num_bounds)]
        mem[shards] = best_cost
        parent[shards] = best_prev
        # A plan with s shards needs at least s boundary intervals.
        mem[shards, :shards] = np.inf
        parent[shards, :shards] = -1
    return mem, parent


def _reconstruct(parent: np.ndarray, num_shards: int, last_index: int) -> list[int]:
    """Walk the predecessor table back to the boundary-index sequence."""
    indices = [last_index]
    shards = num_shards
    index = last_index
    while shards >= 1:
        prev = int(parent[shards, index])
        if prev < 0:
            raise RuntimeError("dynamic-programming table reconstruction failed")
        indices.append(prev)
        index = prev
        shards -= 1
    return list(reversed(indices))


def partition_table(
    cost_model: DeploymentCostModel,
    max_shards: int = DEFAULT_MAX_SHARDS,
    granularity: int = DEFAULT_GRANULARITY,
    num_shards: int | None = None,
) -> PartitioningResult:
    """Find the memory-minimising partitioning plan of a sorted table.

    Parameters
    ----------
    cost_model:
        Algorithm 1 evaluator for the table being partitioned.
    max_shards:
        ``S_max``: the largest shard count explored.
    granularity:
        Number of candidate boundary buckets (see module docstring).
    num_shards:
        When given, return the best plan with *exactly* this many shards
        (used by the Figure 12(d) sweep); otherwise the shard count is chosen
        by the DP.
    """
    if max_shards <= 0:
        raise ValueError("max_shards must be positive")
    table_rows = cost_model.table.rows
    boundaries = candidate_boundaries(table_rows, granularity)
    max_feasible = boundaries.size - 1
    if num_shards is not None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if num_shards > max_feasible:
            raise ValueError(
                f"cannot split {table_rows} rows into {num_shards} shards at this granularity"
            )
        max_shards = num_shards
    max_shards = min(max_shards, max_feasible)

    costs = _cost_matrix(cost_model, boundaries)
    mem, parent = _run_dp(costs, max_shards)
    last_index = boundaries.size - 1

    if num_shards is not None:
        chosen_shards = num_shards
    else:
        final_costs = mem[1 : max_shards + 1, last_index]
        chosen_shards = int(np.argmin(final_costs)) + 1
    total_cost = float(mem[chosen_shards, last_index])
    if not np.isfinite(total_cost):
        raise RuntimeError("no feasible partitioning plan was found")

    boundary_indices = _reconstruct(parent, chosen_shards, last_index)
    plan_boundaries = tuple(int(boundaries[i]) for i in boundary_indices)
    estimates = tuple(
        cost_model.estimate(start, end)
        for start, end in zip(plan_boundaries[:-1], plan_boundaries[1:])
    )
    return PartitioningResult(
        boundaries=plan_boundaries,
        total_cost_bytes=float(sum(e.memory_bytes for e in estimates)),
        shard_estimates=estimates,
    )


def partition_table_exact(
    cost_model: DeploymentCostModel,
    max_shards: int = DEFAULT_MAX_SHARDS,
    num_shards: int | None = None,
) -> PartitioningResult:
    """Per-row-granularity DP (only practical for small tables; used in tests)."""
    rows = cost_model.table.rows
    return partition_table(
        cost_model, max_shards=max_shards, granularity=rows, num_shards=num_shards
    )


def brute_force_partition(
    cost_model: DeploymentCostModel,
    max_shards: int,
    num_shards: int | None = None,
) -> PartitioningResult:
    """Exhaustive search over every contiguous partitioning (tiny tables only).

    Used as the ground-truth oracle in the test suite; the search space grows
    combinatorially, so tables beyond a few dozen rows are rejected.
    """
    rows = cost_model.table.rows
    if rows > 64:
        raise ValueError("brute-force partitioning is limited to tables of at most 64 rows")
    if max_shards <= 0:
        raise ValueError("max_shards must be positive")
    shard_counts = [num_shards] if num_shards is not None else list(range(1, max_shards + 1))
    best: tuple[float, tuple[int, ...]] | None = None
    interior = list(range(1, rows))
    for count in shard_counts:
        if count > rows or count <= 0:
            continue
        for cuts in combinations(interior, count - 1):
            bounds = (0,) + cuts + (rows,)
            cost = sum(
                cost_model.cost(start, end) for start, end in zip(bounds[:-1], bounds[1:])
            )
            if best is None or cost < best[0]:
                best = (cost, bounds)
    if best is None:
        raise RuntimeError("no feasible partitioning plan was found")
    cost, bounds = best
    estimates = tuple(
        cost_model.estimate(start, end) for start, end in zip(bounds[:-1], bounds[1:])
    )
    return PartitioningResult(
        boundaries=bounds,
        total_cost_bytes=float(cost),
        shard_estimates=estimates,
    )
