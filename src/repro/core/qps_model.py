"""Profiling-based QPS regression model (Algorithm 1's ``QPS(x)``).

The paper profiles embedding gather operations over a sweep of gather counts
(Figure 9), stores the measurements in a lookup table and fits a regression
model that estimates the QPS an embedding shard sustains as a function of the
expected number of vectors it gathers per item (``n_s``).

Because a shard's per-query latency is, to first order, affine in the number
of gathers (a fixed overhead plus a per-vector cost), the regression is
performed on *latency* — ``latency(x) = a + b * x`` by least squares — and
``QPS(x) = 1 / latency(x)``.  The model interpolates smoothly between the
profiled points and extrapolates safely (latency is clamped to be positive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.hardware.perf_model import PerfModel
from repro.hardware.profiler import DEFAULT_GATHER_SWEEP, GatherProfiler, ProfilePoint

__all__ = ["QPSRegressionModel"]

_MIN_LATENCY_S = 1e-6


@dataclass(frozen=True)
class QPSRegressionModel:
    """``QPS(x)``: estimated shard throughput as a function of gathers per item."""

    intercept_s: float
    slope_s_per_gather: float

    def __post_init__(self) -> None:
        if self.intercept_s <= 0:
            raise ValueError("the latency intercept must be positive")
        if self.slope_s_per_gather < 0:
            raise ValueError("the latency slope must be non-negative")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, points: Iterable[ProfilePoint]) -> "QPSRegressionModel":
        """Least-squares fit of latency vs gather count over profiled points."""
        points = list(points)
        if len(points) < 2:
            raise ValueError("at least two profile points are required to fit")
        x = np.array([p.num_gathers for p in points], dtype=np.float64)
        y = np.array([p.latency_s for p in points], dtype=np.float64)
        if np.any(y <= 0):
            raise ValueError("profiled latencies must be positive")
        slope, intercept = np.polyfit(x, y, deg=1)
        intercept = max(float(intercept), _MIN_LATENCY_S)
        slope = max(float(slope), 0.0)
        return cls(intercept_s=intercept, slope_s_per_gather=slope)

    @classmethod
    def from_profile(
        cls,
        perf_model: PerfModel,
        embedding_dim: int,
        batch_size: int = 32,
        gather_counts: Sequence[float] = DEFAULT_GATHER_SWEEP,
        dtype_bytes: int = 4,
        cores: int | None = None,
    ) -> "QPSRegressionModel":
        """Run the one-time gather sweep and fit the regression in one step.

        ``cores`` profiles under the core budget of the shard container the
        regression will be used to size (the planner passes the sparse-shard
        core request so the cost model and the deployed shards agree).
        """
        profiler = GatherProfiler(perf_model, batch_size=batch_size)
        points = profiler.profile(
            embedding_dim, gather_counts, dtype_bytes=dtype_bytes, cores=cores
        )
        return cls.fit(points)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_latency(self, gathers_per_item: float) -> float:
        """Estimated per-query latency of a shard gathering ``x`` vectors per item."""
        if gathers_per_item < 0:
            raise ValueError("gathers_per_item must be non-negative")
        latency = self.intercept_s + self.slope_s_per_gather * gathers_per_item
        return max(latency, _MIN_LATENCY_S)

    def predict_qps(self, gathers_per_item: float) -> float:
        """Algorithm 1's ``QPS(x)``."""
        return 1.0 / self.predict_latency(gathers_per_item)

    def residuals(self, points: Iterable[ProfilePoint]) -> np.ndarray:
        """Relative latency prediction errors over a set of profile points."""
        points = list(points)
        predicted = np.array([self.predict_latency(p.num_gathers) for p in points])
        measured = np.array([p.latency_s for p in points])
        return (predicted - measured) / measured
