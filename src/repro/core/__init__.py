"""ElasticRec's contribution: utility-based sharding and elastic deployment planning.

The modules in this subpackage implement Section IV of the paper:

* :mod:`repro.core.preprocessing` — sorting an embedding table by access
  frequency and exposing its access CDF (Figure 8).
* :mod:`repro.core.qps_model` — the profiling-based regression model
  ``QPS(x)`` used by Algorithm 1 (built from the Figure 9 gather sweep).
* :mod:`repro.core.cost_model` — Algorithm 1: the deployment (memory) cost of
  a candidate embedding shard.
* :mod:`repro.core.partitioning` — Algorithm 2: the dynamic-programming table
  partitioner, plus exact and brute-force references used for validation.
* :mod:`repro.core.bucketization` — remapping index/offset arrays onto the
  partitioned shards (Figure 11).
* :mod:`repro.core.sharding` — shard descriptions and the per-model
  :class:`~repro.core.sharding.ShardingPlan`.
* :mod:`repro.core.hpa_policy` — per-shard autoscaling targets (Section IV-D).
* :mod:`repro.core.planner` — the end-to-end ElasticRec deployment planner.
* :mod:`repro.core.baseline` / :mod:`repro.core.gpu_cache` — the model-wise
  baseline and the model-wise + GPU embedding-cache baseline (Section VI-E).
"""

from repro.core.preprocessing import SortedTable, preprocess_table, sort_by_hotness
from repro.core.qps_model import QPSRegressionModel
from repro.core.cost_model import DeploymentCostModel
from repro.core.partitioning import (
    PartitioningResult,
    brute_force_partition,
    partition_table,
    partition_table_exact,
)
from repro.core.alternative_partitioners import (
    no_partitioning,
    threshold_partitioning,
    uniform_partitioning,
)
from repro.core.bucketization import BucketizedLookup, Bucketizer
from repro.core.sharding import DenseShardSpec, EmbeddingShardSpec, ShardingPlan
from repro.core.hpa_policy import HPATarget, build_hpa_target
from repro.core.plan import DeploymentPlan, ShardDeployment
from repro.core.planner import ElasticRecPlanner
from repro.core.baseline import ModelWisePlanner
from repro.core.gpu_cache import CachedModelWisePlanner

__all__ = [
    "SortedTable",
    "preprocess_table",
    "sort_by_hotness",
    "QPSRegressionModel",
    "DeploymentCostModel",
    "PartitioningResult",
    "partition_table",
    "partition_table_exact",
    "brute_force_partition",
    "no_partitioning",
    "uniform_partitioning",
    "threshold_partitioning",
    "Bucketizer",
    "BucketizedLookup",
    "DenseShardSpec",
    "EmbeddingShardSpec",
    "ShardingPlan",
    "HPATarget",
    "build_hpa_target",
    "DeploymentPlan",
    "ShardDeployment",
    "ElasticRecPlanner",
    "ModelWisePlanner",
    "CachedModelWisePlanner",
]
