"""Discrete-event serving simulation.

The paper's dynamic-traffic experiment (Section VI-D, Figure 19) drives the
deployed system with fluctuating query traffic while Kubernetes HPA scales
shard replicas in and out, and reports the achieved QPS, allocated memory and
tail latency over time.  This subpackage provides that serving loop:

* :mod:`repro.serving.traffic` — constant / step / Poisson traffic patterns,
  including the paper's Figure 19 profile.
* :mod:`repro.serving.replica_server` — per-replica FIFO queueing.
* :mod:`repro.serving.rpc` — the cross-shard RPC latency model.
* :mod:`repro.serving.latency` — latency bookkeeping and percentiles.
* :mod:`repro.serving.simulator` — the end-to-end simulator combining a
  deployment plan, a cluster, the autoscaler and a traffic pattern.
* :mod:`repro.serving.stress` — stress testing a single replica to find its
  ``QPS_max`` (used to derive the sparse shards' HPA targets).
"""

from repro.serving.traffic import TrafficPattern, TrafficPhase, paper_dynamic_pattern
from repro.serving.replica_server import ReplicaServer
from repro.serving.rpc import RPCModel
from repro.serving.latency import LatencyTracker
from repro.serving.simulator import ServingSimulator, SimulationResult
from repro.serving.stress import StressTestResult, find_qps_max

__all__ = [
    "TrafficPattern",
    "TrafficPhase",
    "paper_dynamic_pattern",
    "ReplicaServer",
    "RPCModel",
    "LatencyTracker",
    "ServingSimulator",
    "SimulationResult",
    "find_qps_max",
    "StressTestResult",
]
