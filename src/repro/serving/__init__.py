"""Discrete-event serving simulation.

The paper's dynamic-traffic experiment (Section VI-D, Figure 19) drives the
deployed system with fluctuating query traffic while Kubernetes HPA scales
shard replicas in and out, and reports the achieved QPS, allocated memory and
tail latency over time.  This subpackage provides that serving loop as a
discrete-event engine with pluggable policies:

* :mod:`repro.serving.engine` — the event core: a heap of typed events
  (arrival, completion, autoscaler tick, reconcile, sample) driving the
  cluster, plus vectorised series post-processing.  :class:`ServingEngine`
  is the single-plan entry point; :class:`MultiTenantEngine` drives N
  tenants (each a :class:`TenantSpec` with its own traffic, routing, SLA,
  autoscaler and seed) competing for one shared node pool, returning a
  :class:`MultiTenantResult` with per-tenant :class:`SimulationResult`
  series plus cluster-wide memory/utilization/pending-placement series.
* :mod:`repro.serving.routing` — pluggable per-deployment routing policies
  (``least-work``, ``round-robin``, ``power-of-two``, ``ready-only``,
  ``least-outstanding``), built on the generic balancers in
  :mod:`repro.cluster.loadbalancer`.  See :data:`ROUTING_POLICIES` /
  :func:`make_routing_policy`.
* :mod:`repro.serving.scenarios` — a library of named traffic scenarios
  (diurnal, flash crowd, sinusoidal, ramp-and-hold, composable noise)
  layered on :class:`TrafficPattern`.  See :data:`SCENARIOS` /
  :func:`build_scenario`.
* :mod:`repro.serving.traffic` — constant / step / Poisson traffic patterns,
  including the paper's Figure 19 profile.
* :mod:`repro.serving.workload` — per-query cost models
  (``homogeneous``/``skewed``): vectorised, seeded sampling of gather-cost
  multipliers from the data layer's access distributions, normalised so the
  planner's estimates stay the mean.  See :data:`COST_MODELS` /
  :func:`make_cost_model`.
* :mod:`repro.serving.replica_server` — per-replica FIFO *batch* queueing
  (``max_batch``, batching window, batch service times from the hardware
  layer's :class:`~repro.hardware.perf_model.BatchLatencyModel`; the default
  ``max_batch=1`` reproduces single-query queueing bit-for-bit).
* :mod:`repro.serving.replanner` — online re-planning: the threshold-tier
  drift detector and re-plan policy behind the ``replan=`` knob; paired with
  ``drift=`` (see :func:`repro.serving.workload.make_drift_model`), the
  engine re-partitions mid-run against the measured mixture distribution and
  models the shard-copy migration as typed heap events.
* :mod:`repro.serving.faults` — fault injection: scripted and stochastic
  failure/recovery events (replica crash, node drain, straggler windows,
  transient degradation) scheduled as first-class engine events with seeded
  determinism.  See :data:`FAULT_SCENARIOS` / :func:`make_fault_model` and
  the ``faults=`` knob on :class:`ServingEngine` / :class:`TenantSpec`.
* :mod:`repro.serving.sharding` — the sharded run executor:
  :func:`run_sharded` partitions a multi-tenant run by tenant across worker
  processes (bit-exact with the serial run whenever tenants do not contend
  for the pool), :func:`merge_stream` rebuilds results from an on-disk
  spool.
* :mod:`repro.serving.streaming` — the append-only series spool backing
  memory-bounded streamed runs (``StreamConfig``, chunk readers/writers,
  crash-recovery semantics).
* :mod:`repro.serving.rpc` — the cross-shard RPC latency model.
* :mod:`repro.serving.latency` — latency bookkeeping and percentiles.
* :mod:`repro.serving.simulator` — :class:`ServingSimulator`, the historical
  façade over the engine (kept for compatibility; ``least-work`` routing
  reproduces the pre-engine simulator bit-for-bit).
* :mod:`repro.serving.stress` — stress testing a single replica to find its
  ``QPS_max`` (used to derive the sparse shards' HPA targets).

Quick tour::

    from repro.serving import ServingEngine, build_scenario

    engine = ServingEngine(plan, routing="power-of-two", seed=0)
    pattern = build_scenario("flash-crowd", base_qps=20, peak_qps=90,
                             duration_s=900)
    result = engine.run(pattern)
    print(result.summary())
"""

from repro.serving.traffic import TrafficPattern, TrafficPhase, paper_dynamic_pattern
from repro.serving.replica_server import ReplicaServer
from repro.serving.rpc import RPCModel
from repro.serving.latency import LatencyTracker
from repro.serving.engine import (
    ClusterSeries,
    EventKind,
    MultiTenantEngine,
    MultiTenantResult,
    ServingEngine,
    SimulationResult,
    TenantSpec,
)
from repro.serving.routing import (
    ROUTING_POLICIES,
    RoutingPolicy,
    make_routing_policy,
    routing_policy_names,
)
from repro.serving.scenarios import (
    SCENARIOS,
    build_scenario,
    diurnal,
    flash_crowd,
    ramp_and_hold,
    scenario_names,
    sinusoidal,
    with_noise,
)
from repro.serving.faults import (
    FAULT_SCENARIOS,
    FaultModel,
    NodeDrain,
    RandomCrashes,
    ReplicaCrash,
    StragglerSlowdown,
    TransientDegradation,
    fault_scenario_names,
    make_fault_model,
    parse_fault_script,
)
from repro.serving.replanner import (
    DriftDetector,
    ReplanPolicy,
    make_replan_policy,
    parse_replan_spec,
)
from repro.serving.sharding import (
    ShardPlan,
    merge_stream,
    plan_shards,
    run_sharded,
)
from repro.serving.streaming import (
    ShardManifest,
    SpoolError,
    SpoolTruncatedError,
    StreamConfig,
)
from repro.serving.simulator import ServingSimulator
from repro.serving.stress import StressTestResult, find_qps_max
from repro.serving.workload import (
    COST_MODELS,
    DriftSpec,
    HomogeneousCostModel,
    QueryCostModel,
    SkewedCostModel,
    cost_model_names,
    make_cost_model,
    make_drift_model,
    parse_drift_spec,
)

__all__ = [
    "TrafficPattern",
    "TrafficPhase",
    "paper_dynamic_pattern",
    "ReplicaServer",
    "RPCModel",
    "LatencyTracker",
    "EventKind",
    "ServingEngine",
    "ServingSimulator",
    "SimulationResult",
    "TenantSpec",
    "MultiTenantEngine",
    "MultiTenantResult",
    "ClusterSeries",
    "ShardPlan",
    "plan_shards",
    "run_sharded",
    "merge_stream",
    "ShardManifest",
    "StreamConfig",
    "SpoolError",
    "SpoolTruncatedError",
    "RoutingPolicy",
    "ROUTING_POLICIES",
    "make_routing_policy",
    "routing_policy_names",
    "SCENARIOS",
    "build_scenario",
    "scenario_names",
    "diurnal",
    "flash_crowd",
    "sinusoidal",
    "ramp_and_hold",
    "with_noise",
    "find_qps_max",
    "StressTestResult",
    "FaultModel",
    "ReplicaCrash",
    "NodeDrain",
    "StragglerSlowdown",
    "TransientDegradation",
    "RandomCrashes",
    "FAULT_SCENARIOS",
    "fault_scenario_names",
    "make_fault_model",
    "parse_fault_script",
    "QueryCostModel",
    "HomogeneousCostModel",
    "SkewedCostModel",
    "COST_MODELS",
    "make_cost_model",
    "cost_model_names",
    "DriftSpec",
    "parse_drift_spec",
    "make_drift_model",
    "ReplanPolicy",
    "DriftDetector",
    "parse_replan_spec",
    "make_replan_policy",
]
