"""Cross-shard RPC latency model (the gRPC stand-in).

Model shard instances communicate over gRPC (Section IV-A).  The latency of
one call is a fixed per-call overhead (serialisation, scheduling, network
round trip) plus a size-dependent transfer term over the cluster's network.
The calibrated per-query aggregate matches the overheads the paper reports:
about 31 ms of added average latency on the CPU-only cluster and about 60 ms
on the CPU-GPU cluster (Sections VI-B and VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RPCModel"]


@dataclass(frozen=True)
class RPCModel:
    """Latency model for one RPC between model shards."""

    network_gbps: float
    per_call_overhead_s: float = 0.0015

    def __post_init__(self) -> None:
        if self.network_gbps <= 0:
            raise ValueError("network_gbps must be positive")
        if self.per_call_overhead_s < 0:
            raise ValueError("per_call_overhead_s must be non-negative")

    def call_latency(self, payload_bytes: float) -> float:
        """Latency of one RPC carrying ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        transfer_s = payload_bytes * 8.0 / (self.network_gbps * 1e9)
        return self.per_call_overhead_s + transfer_s

    def fanout_latency(self, payload_bytes_per_call: float, num_calls: int) -> float:
        """Latency of a parallel fan-out of identical RPCs (max of the calls).

        Calls are issued concurrently, so the fan-out completes with the last
        call; with identical payloads that is simply one call's latency plus a
        small per-call issue cost on the caller.
        """
        if num_calls < 0:
            raise ValueError("num_calls must be non-negative")
        if num_calls == 0:
            return 0.0
        issue_cost = 0.0001 * (num_calls - 1)
        return self.call_latency(payload_bytes_per_call) + issue_cost

    def query_overhead(
        self,
        num_shards_contacted: int,
        request_bytes: float,
        response_bytes: float,
    ) -> float:
        """Added per-query latency of the dense shard's embedding fan-out."""
        outbound = self.fanout_latency(request_bytes, num_shards_contacted)
        inbound = self.fanout_latency(response_bytes, num_shards_contacted)
        return outbound + inbound
