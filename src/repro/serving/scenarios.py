"""Traffic-scenario library: named, composable load shapes.

Every builder returns a plain :class:`~repro.serving.traffic.TrafficPattern`
(a piecewise-constant rate profile), so scenarios compose with everything the
serving stack already does — Poisson arrival generation, ``expected_queries``
accounting, the engine's target-QPS series — and with each other through
:func:`with_noise`.

Builders:

* :func:`sinusoidal` — rate oscillating around a mean;
* :func:`diurnal` — a day/night cycle (trough at ``t = 0``, peak mid-period);
* :func:`flash_crowd` — steady base load with one sharp spike that ramps up,
  holds, and decays back;
* :func:`ramp_and_hold` — staircase ramp to a peak that is then held to the
  end of the run;
* :func:`with_noise` — multiplicative noise resampling of any pattern.

:data:`SCENARIOS` maps CLI-facing names to builders with a uniform
``(base_qps, peak_qps, duration_s, seed)`` signature; use
:func:`build_scenario` to instantiate one by name.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.serving.traffic import TrafficPattern, paper_dynamic_pattern

__all__ = [
    "sinusoidal",
    "diurnal",
    "flash_crowd",
    "ramp_and_hold",
    "with_noise",
    "SCENARIOS",
    "build_scenario",
    "scenario_names",
    "resolve_scenario_names",
]


def _pattern_from_grid(
    times: np.ndarray, rates: np.ndarray, duration_s: float
) -> TrafficPattern:
    """Build a pattern from a rate grid, merging equal consecutive rates."""
    steps: list[tuple[float, float]] = []
    for time_s, rate in zip(times, rates):
        rate = max(float(rate), 0.0)
        if not steps or rate != steps[-1][1]:
            steps.append((float(time_s), rate))
    return TrafficPattern.from_steps(steps, duration_s=duration_s)


def _resolve_step(duration_s: float, step_s: float | None) -> float:
    """Default to 60 segments per run, but never finer than one second."""
    if step_s is None:
        step_s = max(duration_s / 60.0, 1.0)
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    return min(step_s, duration_s)


def sinusoidal(
    mean_qps: float,
    amplitude_qps: float,
    period_s: float,
    duration_s: float,
    step_s: float | None = None,
) -> TrafficPattern:
    """Rate oscillating sinusoidally around ``mean_qps``.

    The wave starts at its mean and rises first; rates are clamped at zero if
    the amplitude exceeds the mean.
    """
    if mean_qps < 0 or amplitude_qps < 0:
        raise ValueError("mean_qps and amplitude_qps must be non-negative")
    if period_s <= 0 or duration_s <= 0:
        raise ValueError("period_s and duration_s must be positive")
    step_s = _resolve_step(duration_s, step_s)
    times = np.arange(0.0, duration_s, step_s)
    midpoints = times + step_s / 2.0
    rates = mean_qps + amplitude_qps * np.sin(2.0 * np.pi * midpoints / period_s)
    return _pattern_from_grid(times, rates, duration_s)


def diurnal(
    base_qps: float,
    peak_qps: float,
    duration_s: float,
    period_s: float | None = None,
    step_s: float | None = None,
) -> TrafficPattern:
    """A day/night cycle: trough ``base_qps`` at ``t = 0``, peak mid-period.

    ``period_s`` defaults to the run duration, i.e. one full day compressed
    into the simulated window (pass ``86400`` for wall-clock days).
    """
    if peak_qps < base_qps:
        raise ValueError("peak_qps must be at least base_qps")
    if base_qps < 0:
        raise ValueError("base_qps must be non-negative")
    if period_s is None:
        period_s = duration_s
    if period_s <= 0 or duration_s <= 0:
        raise ValueError("period_s and duration_s must be positive")
    step_s = _resolve_step(duration_s, step_s)
    times = np.arange(0.0, duration_s, step_s)
    midpoints = times + step_s / 2.0
    swing = (peak_qps - base_qps) / 2.0
    rates = base_qps + swing * (1.0 - np.cos(2.0 * np.pi * midpoints / period_s))
    return _pattern_from_grid(times, rates, duration_s)


def flash_crowd(
    base_qps: float,
    spike_qps: float,
    duration_s: float,
    spike_start_s: float | None = None,
    spike_duration_s: float | None = None,
    ramp_s: float | None = None,
    ramp_steps: int = 3,
) -> TrafficPattern:
    """Steady base load with one sharp spike (ramp up, hold, decay back).

    Defaults place the spike at 40% of the run, holding for 15% of it, with
    ramps lasting 5% of the run on each side.
    """
    if spike_qps < base_qps:
        raise ValueError("spike_qps must be at least base_qps")
    if base_qps < 0 or duration_s <= 0:
        raise ValueError("need base_qps >= 0 and duration_s > 0")
    if ramp_steps < 1:
        raise ValueError("ramp_steps must be at least 1")
    if spike_start_s is None:
        spike_start_s = 0.4 * duration_s
    if spike_duration_s is None:
        spike_duration_s = 0.15 * duration_s
    if ramp_s is None:
        ramp_s = 0.05 * duration_s
    end_of_decay = spike_start_s + spike_duration_s + 2.0 * ramp_s
    if spike_start_s <= 0 or end_of_decay >= duration_s:
        raise ValueError("the spike (with ramps) must fit strictly inside the run")
    # The staircase spans the full ramp window: still at base_qps at
    # spike_start_s, reaching spike_qps exactly ramp_s later (and back to
    # base_qps exactly at the end of the decay ramp).
    steps: list[tuple[float, float]] = [(0.0, base_qps)]
    rise = (spike_qps - base_qps) / ramp_steps
    for i in range(1, ramp_steps + 1):
        steps.append((spike_start_s + i * ramp_s / ramp_steps, base_qps + i * rise))
    decay_start = spike_start_s + ramp_s + spike_duration_s
    for i in range(1, ramp_steps + 1):
        steps.append((decay_start + i * ramp_s / ramp_steps, spike_qps - i * rise))
    return TrafficPattern.from_steps(steps, duration_s=duration_s)


def ramp_and_hold(
    base_qps: float,
    peak_qps: float,
    duration_s: float,
    ramp_start_s: float | None = None,
    ramp_end_s: float | None = None,
    increments: int = 5,
) -> TrafficPattern:
    """Staircase ramp from ``base_qps`` to ``peak_qps``, held to the end.

    This is the paper's Figure 19 ramp without the final traffic drop; the
    defaults ramp between 20% and 60% of the run.
    """
    if peak_qps <= base_qps:
        raise ValueError("peak_qps must exceed base_qps")
    if increments < 1:
        raise ValueError("increments must be at least 1")
    if ramp_start_s is None:
        ramp_start_s = 0.2 * duration_s
    if ramp_end_s is None:
        ramp_end_s = 0.6 * duration_s
    if not 0 < ramp_start_s < ramp_end_s < duration_s:
        raise ValueError("need 0 < ramp_start_s < ramp_end_s < duration_s")
    steps: list[tuple[float, float]] = [(0.0, base_qps)]
    rise = (peak_qps - base_qps) / increments
    if increments == 1:
        steps.append((ramp_start_s, peak_qps))
    else:
        gap = (ramp_end_s - ramp_start_s) / (increments - 1)
        for i in range(increments):
            steps.append((ramp_start_s + i * gap, base_qps + (i + 1) * rise))
    return TrafficPattern.from_steps(steps, duration_s=duration_s)


def with_noise(
    pattern: TrafficPattern,
    rel_sigma: float = 0.1,
    seed: int = 0,
    step_s: float | None = None,
) -> TrafficPattern:
    """Overlay multiplicative Gaussian noise on any pattern.

    The pattern's rate is resampled on a regular grid and each segment is
    scaled by an independent ``N(1, rel_sigma)`` draw, clamped at zero.  The
    result is a new pattern whose expected rate matches the input, so noise
    composes with every other scenario builder.
    """
    if rel_sigma < 0:
        raise ValueError("rel_sigma must be non-negative")
    step_s = _resolve_step(pattern.duration_s, step_s)
    rng = np.random.default_rng(seed)
    times = np.arange(0.0, pattern.duration_s, step_s)
    rates = np.array([pattern.rate_at(t + step_s / 2.0) for t in times])
    noisy = rates * np.clip(rng.normal(1.0, rel_sigma, size=rates.size), 0.0, None)
    return _pattern_from_grid(times, noisy, pattern.duration_s)


def _constant_scenario(
    base_qps: float, peak_qps: float, duration_s: float, seed: int
) -> TrafficPattern:
    # Steady state at the *provisioned* rate: the CLI plans capacity for
    # base_qps, so "constant" holds there and ignores peak_qps.
    return TrafficPattern.constant(base_qps, duration_s)


#: CLI-facing scenario registry.  Every builder takes
#: ``(base_qps, peak_qps, duration_s, seed)`` and returns a pattern ranging
#: between the two rates — except ``constant``, which holds ``base_qps``.
SCENARIOS: dict[str, Callable[[float, float, float, int], TrafficPattern]] = {
    "paper": lambda base, peak, dur, seed: paper_dynamic_pattern(base, peak, dur),
    "constant": _constant_scenario,
    "diurnal": lambda base, peak, dur, seed: diurnal(base, peak, dur),
    "diurnal-noisy": lambda base, peak, dur, seed: with_noise(
        diurnal(base, peak, dur), rel_sigma=0.15, seed=seed
    ),
    "flash-crowd": lambda base, peak, dur, seed: flash_crowd(base, peak, dur),
    "sinusoidal": lambda base, peak, dur, seed: sinusoidal(
        (base + peak) / 2.0, (peak - base) / 2.0, dur / 3.0, dur
    ),
    "ramp-and-hold": lambda base, peak, dur, seed: ramp_and_hold(base, peak, dur),
}


def scenario_names() -> list[str]:
    """Registered scenario names, in registration order."""
    return list(SCENARIOS)


def resolve_scenario_names(names: str | Sequence[str]) -> list[str]:
    """Normalise a scenario selection to a validated list of registry names.

    Accepts ``"all"``, a comma-separated string, or a sequence of names;
    raises :class:`ValueError` naming the offender and the valid choices.
    """
    if isinstance(names, str):
        names = scenario_names() if names == "all" else [n.strip() for n in names.split(",")]
    resolved = [name for name in names if name]
    if not resolved:
        raise ValueError("at least one scenario name is required")
    for name in resolved:
        if name not in SCENARIOS:
            known = ", ".join(scenario_names())
            raise ValueError(f"unknown scenario {name!r}; choose from {known}")
    return resolved


def build_scenario(
    name: str,
    base_qps: float,
    peak_qps: float,
    duration_s: float,
    seed: int = 0,
) -> TrafficPattern:
    """Instantiate a named scenario from the registry."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ValueError(f"unknown scenario {name!r}; choose from {known}") from None
    return builder(base_qps, peak_qps, duration_s, seed)
