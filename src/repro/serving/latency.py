"""Latency bookkeeping: percentiles and windowed time series."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyTracker", "LatencyWindowPoint"]


@dataclass(frozen=True)
class LatencyWindowPoint:
    """Aggregated latency statistics of one time bucket."""

    time_s: float
    completions: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float


class LatencyTracker:
    """Collects (completion time, latency) samples and aggregates them."""

    def __init__(self) -> None:
        self._completion_times: list[float] = []
        self._latencies: list[float] = []

    def record(self, completion_time: float, latency_s: float) -> None:
        """Record one completed query."""
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        self._completion_times.append(completion_time)
        self._latencies.append(latency_s)

    def sample(self, index: int) -> tuple[float, float]:
        """The ``(completion_time, latency_s)`` pair of one recorded query."""
        if not 0 <= index < len(self._latencies):
            raise IndexError(f"no sample at index {index}")
        return self._completion_times[index], self._latencies[index]

    def update(self, index: int, completion_time: float, latency_s: float) -> None:
        """Rewrite one recorded query in place.

        Fault handling uses this to re-price queries whose replica died
        mid-flight: a re-queued query completes later than first recorded,
        and a dropped one is charged the rejection penalty.
        """
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if not 0 <= index < len(self._latencies):
            raise IndexError(f"no sample at index {index}")
        self._completion_times[index] = completion_time
        self._latencies[index] = latency_s

    @property
    def num_samples(self) -> int:
        """Number of recorded completions."""
        return len(self._latencies)

    @property
    def completion_times(self) -> np.ndarray:
        """Completion timestamps of every recorded query."""
        return np.asarray(self._completion_times, dtype=np.float64)

    @property
    def latencies_s(self) -> np.ndarray:
        """Latencies (seconds) of every recorded query."""
        return np.asarray(self._latencies, dtype=np.float64)

    def percentile(self, percentile: float) -> float:
        """Overall latency percentile in seconds."""
        if not self._latencies:
            raise ValueError("no latency samples recorded")
        return float(np.percentile(self._latencies, percentile))

    def mean(self) -> float:
        """Overall mean latency in seconds."""
        if not self._latencies:
            raise ValueError("no latency samples recorded")
        return float(np.mean(self._latencies))

    def sla_violation_fraction(self, sla_s: float) -> float:
        """Fraction of completions whose latency exceeded the SLA."""
        if sla_s <= 0:
            raise ValueError("sla_s must be positive")
        if not self._latencies:
            return 0.0
        latencies = np.asarray(self._latencies)
        return float(np.mean(latencies > sla_s))

    def windowed(self, duration_s: float, bucket_s: float = 60.0) -> list[LatencyWindowPoint]:
        """Per-bucket percentiles over ``[0, duration_s)`` (empty buckets report zeros)."""
        if bucket_s <= 0 or duration_s <= 0:
            raise ValueError("duration_s and bucket_s must be positive")
        times = np.asarray(self._completion_times)
        latencies = np.asarray(self._latencies) * 1000.0
        points = []
        edges = np.arange(0.0, duration_s + bucket_s, bucket_s)
        for start, end in zip(edges[:-1], edges[1:]):
            mask = (times >= start) & (times < end)
            bucket = latencies[mask]
            if bucket.size:
                points.append(
                    LatencyWindowPoint(
                        time_s=float(start),
                        completions=int(bucket.size),
                        p50_ms=float(np.percentile(bucket, 50)),
                        p95_ms=float(np.percentile(bucket, 95)),
                        p99_ms=float(np.percentile(bucket, 99)),
                        mean_ms=float(bucket.mean()),
                    )
                )
            else:
                points.append(
                    LatencyWindowPoint(
                        time_s=float(start),
                        completions=0,
                        p50_ms=0.0,
                        p95_ms=0.0,
                        p99_ms=0.0,
                        mean_ms=0.0,
                    )
                )
        return points
