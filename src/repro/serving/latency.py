"""Latency bookkeeping: percentiles and windowed time series.

:class:`LatencyTracker` is on the serving engine's per-query hot path, so it
stores samples in pre-allocated numpy buffers with amortized doubling growth
instead of Python lists: a ``record`` is two array stores and an integer
bump, and the aggregate views (``completion_times``, ``latencies_s``) are
buffer slices rather than list-to-array conversions.

Two sort caches keep the post-run aggregations cheap:

* :meth:`completion_order` — one stable argsort of the completion times,
  shared by every windowed series the engine derives (achieved QPS and the
  rolling p95 both consume it, so the run pays for a single sort);
* a sorted copy of the latencies backing :meth:`count_exceeding`, so SLA
  violation counts are one binary search instead of a full boolean scan.

Both caches are versioned: any :meth:`record` or :meth:`update` (fault
handling rewrites samples in place when a replica dies mid-flight)
invalidates them, so a stale sort can never leak into a result.

The numbers produced are bit-for-bit identical to the historical list-based
implementation: the buffers hold the same float64 values the lists did, and
every aggregate runs the same numpy computation over them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyTracker", "LatencyWindowPoint"]

#: Initial per-buffer capacity; doubles whenever the buffer fills.
_INITIAL_CAPACITY = 512


@dataclass(frozen=True)
class LatencyWindowPoint:
    """Aggregated latency statistics of one time bucket."""

    time_s: float
    completions: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float


class LatencyTracker:
    """Collects (completion time, latency) samples and aggregates them."""

    __slots__ = (
        "_times",
        "_lats",
        "_size",
        "_version",
        "_order",
        "_order_version",
        "_sorted_lats",
        "_sorted_lats_version",
    )

    def __init__(self) -> None:
        self._times = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._lats = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._size = 0
        self._version = 0
        self._order: np.ndarray | None = None
        self._order_version = -1
        self._sorted_lats: np.ndarray | None = None
        self._sorted_lats_version = -1

    def _grow(self) -> None:
        capacity = self._times.size * 2
        times = np.empty(capacity, dtype=np.float64)
        lats = np.empty(capacity, dtype=np.float64)
        times[: self._size] = self._times[: self._size]
        lats[: self._size] = self._lats[: self._size]
        self._times = times
        self._lats = lats

    @property
    def capacity(self) -> int:
        """Allocated buffer slots (always at least :attr:`num_samples`)."""
        return int(self._times.size)

    def record(self, completion_time: float, latency_s: float) -> None:
        """Record one completed query."""
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        size = self._size
        if size == self._times.size:
            self._grow()
        self._times[size] = completion_time
        self._lats[size] = latency_s
        self._size = size + 1
        self._version += 1

    def sample(self, index: int) -> tuple[float, float]:
        """The ``(completion_time, latency_s)`` pair of one recorded query."""
        if not 0 <= index < self._size:
            raise IndexError(f"no sample at index {index}")
        return float(self._times[index]), float(self._lats[index])

    def update(self, index: int, completion_time: float, latency_s: float) -> None:
        """Rewrite one recorded query in place.

        Fault handling uses this to re-price queries whose replica died
        mid-flight: a re-queued query completes later than first recorded,
        and a dropped one is charged the rejection penalty.
        """
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if not 0 <= index < self._size:
            raise IndexError(f"no sample at index {index}")
        self._times[index] = completion_time
        self._lats[index] = latency_s
        self._version += 1

    @property
    def num_samples(self) -> int:
        """Number of recorded completions."""
        return self._size

    @property
    def completion_times(self) -> np.ndarray:
        """Completion timestamps of every recorded query (a fresh copy)."""
        return self._times[: self._size].copy()

    @property
    def latencies_s(self) -> np.ndarray:
        """Latencies (seconds) of every recorded query (a fresh copy)."""
        return self._lats[: self._size].copy()

    def completion_order(self) -> np.ndarray:
        """Stable argsort of the completion times, cached until the next write.

        The engine's series assembly sorts the completion times once through
        this method and shares the order between the achieved-QPS and rolling
        p95 series instead of re-sorting per series.
        """
        if self._order_version != self._version:
            self._order = np.argsort(self._times[: self._size], kind="stable")
            self._order_version = self._version
        return self._order

    def _latencies_sorted(self) -> np.ndarray:
        if self._sorted_lats_version != self._version:
            self._sorted_lats = np.sort(self._lats[: self._size])
            self._sorted_lats_version = self._version
        return self._sorted_lats

    def count_exceeding(self, threshold_s: float) -> int:
        """Number of recorded latencies strictly above ``threshold_s``.

        One binary search over the cached sorted latencies — identical to
        ``np.sum(latencies_s > threshold_s)`` but O(log n) per call once the
        sort is cached.
        """
        sorted_lats = self._latencies_sorted()
        return int(self._size - np.searchsorted(sorted_lats, threshold_s, side="right"))

    def percentile(self, percentile: float) -> float:
        """Overall latency percentile in seconds."""
        if not self._size:
            raise ValueError("no latency samples recorded")
        return float(np.percentile(self._latencies_sorted(), percentile))

    def mean(self) -> float:
        """Overall mean latency in seconds."""
        if not self._size:
            raise ValueError("no latency samples recorded")
        return float(np.mean(self._lats[: self._size]))

    def sla_violation_fraction(self, sla_s: float) -> float:
        """Fraction of completions whose latency exceeded the SLA."""
        if sla_s <= 0:
            raise ValueError("sla_s must be positive")
        if not self._size:
            return 0.0
        return self.count_exceeding(sla_s) / self._size

    def windowed(self, duration_s: float, bucket_s: float = 60.0) -> list[LatencyWindowPoint]:
        """Per-bucket percentiles over ``[0, duration_s)`` (empty buckets report zeros)."""
        if bucket_s <= 0 or duration_s <= 0:
            raise ValueError("duration_s and bucket_s must be positive")
        times = self._times[: self._size]
        latencies = self._lats[: self._size] * 1000.0
        points = []
        edges = np.arange(0.0, duration_s + bucket_s, bucket_s)
        for start, end in zip(edges[:-1], edges[1:]):
            mask = (times >= start) & (times < end)
            bucket = latencies[mask]
            if bucket.size:
                points.append(
                    LatencyWindowPoint(
                        time_s=float(start),
                        completions=int(bucket.size),
                        p50_ms=float(np.percentile(bucket, 50)),
                        p95_ms=float(np.percentile(bucket, 95)),
                        p99_ms=float(np.percentile(bucket, 99)),
                        mean_ms=float(bucket.mean()),
                    )
                )
            else:
                points.append(
                    LatencyWindowPoint(
                        time_s=float(start),
                        completions=0,
                        p50_ms=0.0,
                        p95_ms=0.0,
                        p99_ms=0.0,
                        mean_ms=0.0,
                    )
                )
        return points
