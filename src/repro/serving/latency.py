"""Latency bookkeeping: percentiles and windowed time series.

:class:`LatencyTracker` is on the serving engine's per-query hot path, so it
stores samples in pre-allocated numpy buffers with amortized doubling growth
instead of Python lists: a ``record`` is two array stores and an integer
bump, and the aggregate views (``completion_times``, ``latencies_s``) are
buffer slices rather than list-to-array conversions.

Two sort caches keep the post-run aggregations cheap:

* :meth:`completion_order` — one stable argsort of the completion times,
  shared by every windowed series the engine derives (achieved QPS and the
  rolling p95 both consume it, so the run pays for a single sort);
* a sorted copy of the latencies backing :meth:`count_exceeding`, so SLA
  violation counts are one binary search instead of a full boolean scan.

Both caches are versioned: any :meth:`record` or :meth:`update` (fault
handling rewrites samples in place when a replica dies mid-flight)
invalidates them, so a stale sort can never leak into a result.

For memory-bounded streamed runs the tracker can *spill*: :meth:`spill`
hands a settled prefix of the buffers to a sink (the on-disk spool) and
compacts the live buffer, so resident memory stays bounded by the spill
threshold instead of the run length.  Indices stay **absolute**: a sample
keeps the index it was recorded under for its whole life, so the fault
machinery's requeue rewrites (:meth:`update`) keep working across spills —
the engine only ever spills below the oldest still-in-flight sample, and a
spilled index raises :class:`IndexError` rather than silently aliasing.
Whole-run aggregates (percentiles, sorts) are unavailable on a spilled
tracker — the merge step recomputes them from the spool, where the full
arrays live.

The numbers produced are bit-for-bit identical to the historical list-based
implementation: the buffers hold the same float64 values the lists did, and
every aggregate runs the same numpy computation over them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyTracker", "LatencyWindowPoint"]

#: Initial per-buffer capacity; doubles whenever the buffer fills.
_INITIAL_CAPACITY = 512


@dataclass(frozen=True)
class LatencyWindowPoint:
    """Aggregated latency statistics of one time bucket."""

    time_s: float
    completions: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float


class LatencyTracker:
    """Collects (completion time, latency) samples and aggregates them."""

    __slots__ = (
        "_times",
        "_lats",
        "_size",
        "_spilled",
        "_version",
        "_order",
        "_order_version",
        "_sorted_lats",
        "_sorted_lats_version",
    )

    def __init__(self) -> None:
        self._times = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._lats = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._size = 0
        self._spilled = 0
        self._version = 0
        self._order: np.ndarray | None = None
        self._order_version = -1
        self._sorted_lats: np.ndarray | None = None
        self._sorted_lats_version = -1

    @classmethod
    def from_arrays(cls, completion_times, latencies_s) -> "LatencyTracker":
        """Bulk-load a tracker from recorded arrays (the spool merge path).

        The arrays are copied into fresh buffers, so the tracker behaves
        exactly as if every sample had been :meth:`record`-ed in order.
        """
        times = np.ascontiguousarray(completion_times, dtype=np.float64)
        lats = np.ascontiguousarray(latencies_s, dtype=np.float64)
        if times.shape != lats.shape or times.ndim != 1:
            raise ValueError("completion_times and latencies_s must be equal-length 1-D")
        if lats.size and float(lats.min()) < 0:
            raise ValueError("latency_s must be non-negative")
        tracker = cls()
        capacity = max(_INITIAL_CAPACITY, int(times.size))
        tracker._times = np.empty(capacity, dtype=np.float64)
        tracker._lats = np.empty(capacity, dtype=np.float64)
        tracker._times[: times.size] = times
        tracker._lats[: lats.size] = lats
        tracker._size = int(times.size)
        tracker._version = 1
        return tracker

    def _grow(self) -> None:
        capacity = self._times.size * 2
        times = np.empty(capacity, dtype=np.float64)
        lats = np.empty(capacity, dtype=np.float64)
        times[: self._size] = self._times[: self._size]
        lats[: self._size] = self._lats[: self._size]
        self._times = times
        self._lats = lats

    @property
    def capacity(self) -> int:
        """Allocated buffer slots (always at least :attr:`num_samples`)."""
        return int(self._times.size)

    def record(self, completion_time: float, latency_s: float) -> None:
        """Record one completed query."""
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        size = self._size
        if size == self._times.size:
            self._grow()
        self._times[size] = completion_time
        self._lats[size] = latency_s
        self._size = size + 1
        self._version += 1

    def _buffer_index(self, index: int) -> int:
        """Translate an absolute sample index into the live buffer."""
        offset = index - self._spilled
        if offset < 0:
            raise IndexError(
                f"sample {index} was spilled to the spool (spilled up to "
                f"{self._spilled}); only live samples can be read or rewritten"
            )
        if offset >= self._size:
            raise IndexError(f"no sample at index {index}")
        return offset

    def sample(self, index: int) -> tuple[float, float]:
        """The ``(completion_time, latency_s)`` pair of one recorded query."""
        offset = self._buffer_index(index)
        return float(self._times[offset]), float(self._lats[offset])

    def update(self, index: int, completion_time: float, latency_s: float) -> None:
        """Rewrite one recorded query in place.

        Fault handling uses this to re-price queries whose replica died
        mid-flight: a re-queued query completes later than first recorded,
        and a dropped one is charged the rejection penalty.
        """
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        offset = self._buffer_index(index)
        self._times[offset] = completion_time
        self._lats[offset] = latency_s
        self._version += 1

    # ------------------------------------------------------------------
    # Spilling (memory-bounded streamed runs)
    # ------------------------------------------------------------------
    @property
    def spilled_samples(self) -> int:
        """Samples already handed to the spill sink (no longer resident)."""
        return self._spilled

    @property
    def live_samples(self) -> int:
        """Samples still resident in the buffers."""
        return self._size

    def spill(self, up_to: int, sink) -> int:
        """Flush samples ``[spilled_samples, up_to)`` to ``sink`` and compact.

        ``sink(completion_times, latencies_s)`` receives fresh copies of the
        flushed slice.  ``up_to`` is an absolute index; the engine passes the
        oldest still-in-flight sample, so every flushed sample is settled —
        no future :meth:`update` can target it.  Returns the number of
        samples flushed (0 when ``up_to`` is already spilled).
        """
        if up_to > self.num_samples:
            raise IndexError(f"cannot spill to {up_to}: only {self.num_samples} recorded")
        count = up_to - self._spilled
        if count <= 0:
            return 0
        sink(self._times[:count].copy(), self._lats[:count].copy())
        remaining = self._size - count
        # Compact in place: the live tail moves to the front of the buffer.
        self._times[:remaining] = self._times[count : self._size]
        self._lats[:remaining] = self._lats[count : self._size]
        self._size = remaining
        self._spilled = up_to
        self._version += 1
        return count

    def _require_unspilled(self, what: str) -> None:
        if self._spilled:
            raise ValueError(
                f"{what} needs every sample, but {self._spilled} were spilled "
                "to the spool; recompute from the merged spool instead"
            )

    @property
    def num_samples(self) -> int:
        """Number of recorded completions (spilled samples included)."""
        return self._spilled + self._size

    @property
    def completion_times(self) -> np.ndarray:
        """Completion timestamps of every recorded query (a fresh copy)."""
        self._require_unspilled("completion_times")
        return self._times[: self._size].copy()

    @property
    def latencies_s(self) -> np.ndarray:
        """Latencies (seconds) of every recorded query (a fresh copy)."""
        self._require_unspilled("latencies_s")
        return self._lats[: self._size].copy()

    def completion_order(self) -> np.ndarray:
        """Stable argsort of the completion times, cached until the next write.

        The engine's series assembly sorts the completion times once through
        this method and shares the order between the achieved-QPS and rolling
        p95 series instead of re-sorting per series.
        """
        self._require_unspilled("completion_order")
        if self._order_version != self._version:
            self._order = np.argsort(self._times[: self._size], kind="stable")
            self._order_version = self._version
        return self._order

    def _latencies_sorted(self) -> np.ndarray:
        self._require_unspilled("latency aggregation")
        if self._sorted_lats_version != self._version:
            self._sorted_lats = np.sort(self._lats[: self._size])
            self._sorted_lats_version = self._version
        return self._sorted_lats

    def count_exceeding(self, threshold_s: float) -> int:
        """Number of recorded latencies strictly above ``threshold_s``.

        One binary search over the cached sorted latencies — identical to
        ``np.sum(latencies_s > threshold_s)`` but O(log n) per call once the
        sort is cached.
        """
        sorted_lats = self._latencies_sorted()
        return int(self._size - np.searchsorted(sorted_lats, threshold_s, side="right"))

    def percentile(self, percentile: float) -> float:
        """Overall latency percentile in seconds."""
        if not self._size:
            raise ValueError("no latency samples recorded")
        return float(np.percentile(self._latencies_sorted(), percentile))

    def mean(self) -> float:
        """Overall mean latency in seconds."""
        self._require_unspilled("mean")
        if not self._size:
            raise ValueError("no latency samples recorded")
        return float(np.mean(self._lats[: self._size]))

    def sla_violation_fraction(self, sla_s: float) -> float:
        """Fraction of completions whose latency exceeded the SLA."""
        if sla_s <= 0:
            raise ValueError("sla_s must be positive")
        if not self._size:
            return 0.0
        return self.count_exceeding(sla_s) / self._size

    def windowed(self, duration_s: float, bucket_s: float = 60.0) -> list[LatencyWindowPoint]:
        """Per-bucket percentiles over ``[0, duration_s)`` (empty buckets report zeros)."""
        if bucket_s <= 0 or duration_s <= 0:
            raise ValueError("duration_s and bucket_s must be positive")
        self._require_unspilled("windowed")
        times = self._times[: self._size]
        latencies = self._lats[: self._size] * 1000.0
        points = []
        edges = np.arange(0.0, duration_s + bucket_s, bucket_s)
        for start, end in zip(edges[:-1], edges[1:]):
            mask = (times >= start) & (times < end)
            bucket = latencies[mask]
            if bucket.size:
                points.append(
                    LatencyWindowPoint(
                        time_s=float(start),
                        completions=int(bucket.size),
                        p50_ms=float(np.percentile(bucket, 50)),
                        p95_ms=float(np.percentile(bucket, 95)),
                        p99_ms=float(np.percentile(bucket, 99)),
                        mean_ms=float(bucket.mean()),
                    )
                )
            else:
                points.append(
                    LatencyWindowPoint(
                        time_s=float(start),
                        completions=0,
                        p50_ms=0.0,
                        p95_ms=0.0,
                        p99_ms=0.0,
                        mean_ms=0.0,
                    )
                )
        return points
