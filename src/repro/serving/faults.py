"""Fault injection: scripted and stochastic failure/recovery events.

Production recommendation-serving fleets are never fully healthy: replicas
crash, nodes get drained for maintenance, and individual containers turn
into stragglers under noisy neighbours.  This module models those incidents
as *first-class typed events* that the serving engine schedules on its event
heap, so faults interleave deterministically with arrivals, autoscaler ticks
and reconciles.

Fault event types:

* :class:`ReplicaCrash` — one replica dies instantly.  Its in-flight queries
  are re-queued onto surviving replicas (``policy="requeue"``) or dropped and
  charged the rejection penalty (``policy="drop"``).  The cluster notices the
  lost capacity at the next reconcile and re-creates the replica, which must
  sit through its cold start before serving again.
* :class:`NodeDrain` — a whole node is cordoned (the scheduler stops placing
  replicas on it) and every replica on it starts *draining*: routing policies
  stop sending it new queries while its queued work keeps running.  After
  ``grace_s`` seconds the containers are evicted (still-unfinished queries
  are settled per the in-flight policy) and re-placed on the remaining nodes
  by the bin-packing scheduler; with a positive ``duration_s`` the node is
  uncordoned afterwards.
* :class:`StragglerSlowdown` — one replica serves every query ``factor``
  times slower for a window, then recovers.
* :class:`TransientDegradation` — a deployment-wide slowdown window (think
  packet loss or a throttled storage tier) hitting every replica of the
  matched deployments at once.

Stochastic faults are described by :class:`RandomCrashes`, a Poisson crash
process whose event times are sampled — vectorised and from a dedicated seed
stream — when the engine starts a run, so a faulty run is exactly as
deterministic as a healthy one.

A :class:`FaultModel` bundles scripted events plus stochastic processes.
Models come from three places:

* the :data:`FAULT_SCENARIOS` registry (named, duration-relative scenarios
  mirroring :data:`repro.serving.scenarios.SCENARIOS`);
* the compact script syntax parsed by :func:`parse_fault_script`, e.g.
  ``"crash@120:policy=drop;drain@300+60:node=1;straggler@400+90:factor=4"``;
* plain Python construction.

Use :func:`make_fault_model` to resolve any of the three (plus ``None`` /
``"none"`` for the healthy baseline) into a model; an empty model resolves
to ``None`` so the engine's no-fault path stays bit-exact with the
fault-unaware engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Union

import numpy as np

__all__ = [
    "ReplicaCrash",
    "NodeDrain",
    "StragglerSlowdown",
    "TransientDegradation",
    "RandomCrashes",
    "FaultEvent",
    "FaultModel",
    "FAULT_SCENARIOS",
    "fault_scenario_names",
    "parse_fault_script",
    "make_fault_model",
    "validate_fault_spec",
]

#: What happens to a dead replica's in-flight queries.
INFLIGHT_POLICIES = ("requeue", "drop")


def _check_inflight_policy(policy: str) -> None:
    if policy not in INFLIGHT_POLICIES:
        known = ", ".join(INFLIGHT_POLICIES)
        raise ValueError(f"unknown in-flight policy {policy!r}; choose from {known}")


@dataclass(frozen=True)
class ReplicaCrash:
    """One replica dies at ``at_s``.

    ``deployment`` narrows the victim pool to deployments whose name contains
    the given substring (all deployments when ``None``); ``replica`` picks a
    victim by wrapped index over the replicas in creation order instead of
    the fault RNG.  ``policy`` decides the fate of the replica's in-flight
    queries.
    """

    at_s: float
    deployment: str | None = None
    replica: int | None = None
    policy: str = "requeue"

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if self.replica is not None and self.replica < 0:
            raise ValueError("replica must be non-negative")
        _check_inflight_policy(self.policy)


@dataclass(frozen=True)
class NodeDrain:
    """Cordon node ``node`` at ``at_s``, drain its replicas, then evict them.

    At ``at_s`` the node stops taking placements and its replicas start
    draining (no new traffic, queued work keeps running — kubectl drain's
    graceful phase); ``grace_s`` seconds later the containers are evicted
    and their still-unfinished queries settled per ``policy``.  With
    ``duration_s > 0`` the node is uncordoned after the window; with
    ``duration_s == 0`` it stays out of the pool for the rest of the run.
    """

    at_s: float
    node: int = 0
    duration_s: float = 0.0
    policy: str = "requeue"
    grace_s: float = 10.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if self.node < 0:
            raise ValueError("node must be non-negative")
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if self.grace_s < 0:
            raise ValueError("grace_s must be non-negative")
        if 0 < self.duration_s < self.grace_s:
            # Uncordoning before the grace ends would let the scheduler place
            # fresh replicas on a node whose pending eviction then kills them.
            raise ValueError(
                "duration_s (the uncordon window) must be at least grace_s"
            )
        _check_inflight_policy(self.policy)


@dataclass(frozen=True)
class StragglerSlowdown:
    """One replica serves ``factor`` times slower for ``duration_s`` seconds."""

    at_s: float
    duration_s: float = 60.0
    factor: float = 4.0
    deployment: str | None = None
    replica: int | None = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.factor <= 0:
            raise ValueError("factor must be positive")
        if self.replica is not None and self.replica < 0:
            raise ValueError("replica must be non-negative")


@dataclass(frozen=True)
class TransientDegradation:
    """Every replica of the matched deployments slows down for a window."""

    at_s: float
    duration_s: float = 60.0
    factor: float = 2.0
    deployment: str | None = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.factor <= 0:
            raise ValueError("factor must be positive")


#: The concrete fault events a timeline may contain.
FaultEvent = Union[ReplicaCrash, NodeDrain, StragglerSlowdown, TransientDegradation]


@dataclass(frozen=True)
class RandomCrashes:
    """A Poisson crash process: replicas die at ``rate_per_min`` on average.

    Crash times are sampled over ``[start_s, end_s)`` (the whole run when
    ``end_s`` is ``None``) from the engine's dedicated fault seed stream, so
    the process is fully reproducible for a given seed.
    """

    rate_per_min: float
    start_s: float = 0.0
    end_s: float | None = None
    deployment: str | None = None
    policy: str = "requeue"

    def __post_init__(self) -> None:
        if self.rate_per_min <= 0:
            raise ValueError("rate_per_min must be positive")
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ValueError("end_s must exceed start_s")
        _check_inflight_policy(self.policy)


class FaultModel:
    """A composable set of scripted fault events plus stochastic processes."""

    def __init__(
        self,
        events: Sequence[FaultEvent] = (),
        processes: Sequence[RandomCrashes] = (),
        name: str = "custom",
    ) -> None:
        self._events = tuple(events)
        self._processes = tuple(processes)
        self.name = name

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """The scripted events, in construction order."""
        return self._events

    @property
    def processes(self) -> tuple[RandomCrashes, ...]:
        """The stochastic fault processes."""
        return self._processes

    @property
    def is_empty(self) -> bool:
        """Whether the model can never inject anything."""
        return not self._events and not self._processes

    def timeline(
        self, duration_s: float, rng: np.random.Generator
    ) -> list[tuple[float, FaultEvent]]:
        """Materialise the run's fault timeline, sorted by injection time.

        Scripted events landing at or past ``duration_s`` never fire and are
        dropped; stochastic processes are sampled (exponential inter-arrival
        times from ``rng``) up to the run end.  The sort is stable, so ties
        resolve in construction order deterministically.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        timeline: list[tuple[float, FaultEvent]] = [
            (event.at_s, event) for event in self._events if event.at_s < duration_s
        ]
        for process in self._processes:
            end = duration_s if process.end_s is None else min(process.end_s, duration_s)
            mean_gap_s = 60.0 / process.rate_per_min
            at = process.start_s
            while True:
                at += float(rng.exponential(mean_gap_s))
                if at >= end:
                    break
                timeline.append(
                    (
                        at,
                        ReplicaCrash(
                            at_s=at,
                            deployment=process.deployment,
                            policy=process.policy,
                        ),
                    )
                )
        timeline.sort(key=lambda item: item[0])
        return timeline


# ----------------------------------------------------------------------
# Script syntax
# ----------------------------------------------------------------------
_SCRIPT_HINT = (
    "expected 'kind@start[+duration][:key=value,...]' with kinds "
    "crash, drain, straggler, degrade or crashes "
    "(e.g. 'crash@120:policy=drop;drain@300+60:node=1')"
)


def _parse_number(chunk: str, text: str, kind: str = "number") -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"malformed fault spec {chunk!r}: {text!r} is not a valid {kind}"
        ) from None


def _parse_params(chunk: str, text: str) -> dict[str, str]:
    params: dict[str, str] = {}
    for pair in text.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, sep, value = pair.partition("=")
        if not sep or not key.strip() or not value.strip():
            raise ValueError(
                f"malformed fault spec {chunk!r}: bad parameter {pair!r} ({_SCRIPT_HINT})"
            )
        params[key.strip()] = value.strip()
    return params


def _pop_param(
    chunk: str, params: dict[str, str], key: str, convert: Callable | None = None
):
    value = params.pop(key, None)
    if value is None or convert is None:
        return value
    if convert in (int, float):
        number = _parse_number(chunk, value, kind=convert.__name__)
        return convert(number)
    return convert(value)


def parse_fault_script(script: str) -> FaultModel:
    """Parse the compact fault-script syntax into a :class:`FaultModel`.

    Events are separated by ``;``.  Each is ``kind@start[+duration]`` with
    optional ``:key=value,...`` parameters:

    * ``crash@120:deployment=emb,replica=0,policy=drop``
    * ``drain@300+60:node=1`` (drain node 1 at t=300s, uncordon 60s later)
    * ``straggler@200+90:factor=4,deployment=dense``
    * ``degrade@400+30:factor=2``
    * ``crashes@0+600:rate=0.5,policy=requeue`` (Poisson, 0.5 crashes/min)

    Raises a one-line :class:`ValueError` on any malformed chunk.
    """
    events: list[FaultEvent] = []
    processes: list[RandomCrashes] = []
    chunks = [chunk.strip() for chunk in script.split(";") if chunk.strip()]
    if not chunks:
        raise ValueError(f"empty fault script {script!r}: {_SCRIPT_HINT}")
    for chunk in chunks:
        head, _, params_text = chunk.partition(":")
        kind, at_sep, when = head.strip().partition("@")
        kind = kind.strip().lower()
        if not at_sep or not when.strip():
            raise ValueError(f"malformed fault spec {chunk!r}: {_SCRIPT_HINT}")
        start_text, duration_sep, duration_text = when.partition("+")
        start = _parse_number(chunk, start_text.strip(), kind="start time")
        duration = (
            _parse_number(chunk, duration_text.strip(), kind="duration")
            if duration_sep
            else None
        )
        params = _parse_params(chunk, params_text)
        try:
            if kind == "crash":
                if duration is not None:
                    raise ValueError(
                        "a crash is instantaneous and takes no '+duration' "
                        "(did you mean 'drain' or 'straggler'?)"
                    )
                events.append(
                    ReplicaCrash(
                        at_s=start,
                        deployment=_pop_param(chunk, params, "deployment"),
                        replica=_pop_param(chunk, params, "replica", int),
                        policy=_pop_param(chunk, params, "policy") or "requeue",
                    )
                )
            elif kind == "drain":
                grace = _pop_param(chunk, params, "grace", float)
                events.append(
                    NodeDrain(
                        at_s=start,
                        node=_pop_param(chunk, params, "node", int) or 0,
                        duration_s=duration if duration is not None else 0.0,
                        policy=_pop_param(chunk, params, "policy") or "requeue",
                        grace_s=grace if grace is not None else 10.0,
                    )
                )
            elif kind == "straggler":
                factor = _pop_param(chunk, params, "factor", float)
                events.append(
                    StragglerSlowdown(
                        at_s=start,
                        duration_s=duration if duration is not None else 60.0,
                        factor=factor if factor is not None else 4.0,
                        deployment=_pop_param(chunk, params, "deployment"),
                        replica=_pop_param(chunk, params, "replica", int),
                    )
                )
            elif kind == "degrade":
                factor = _pop_param(chunk, params, "factor", float)
                events.append(
                    TransientDegradation(
                        at_s=start,
                        duration_s=duration if duration is not None else 60.0,
                        factor=factor if factor is not None else 2.0,
                        deployment=_pop_param(chunk, params, "deployment"),
                    )
                )
            elif kind == "crashes":
                rate = _pop_param(chunk, params, "rate", float)
                if rate is None:
                    raise ValueError("a crashes process needs rate=<per minute>")
                processes.append(
                    RandomCrashes(
                        rate_per_min=rate,
                        start_s=start,
                        end_s=start + duration if duration is not None else None,
                        deployment=_pop_param(chunk, params, "deployment"),
                        policy=_pop_param(chunk, params, "policy") or "requeue",
                    )
                )
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        except ValueError as error:
            message = str(error)
            if not message.startswith("malformed fault spec"):
                message = f"malformed fault spec {chunk!r}: {message}"
            raise ValueError(message) from None
        if params:
            unknown = ", ".join(sorted(params))
            raise ValueError(
                f"malformed fault spec {chunk!r}: unknown parameter(s) {unknown}"
            )
    return FaultModel(events=events, processes=processes, name="script")


# ----------------------------------------------------------------------
# Named fault scenarios (duration-relative, mirroring SCENARIOS)
# ----------------------------------------------------------------------
def _single_crash(duration_s: float) -> FaultModel:
    return FaultModel(
        events=[ReplicaCrash(at_s=0.4 * duration_s)], name="single-crash"
    )


def _crash_storm(duration_s: float) -> FaultModel:
    # ~8 expected crashes regardless of run length.
    return FaultModel(
        processes=[RandomCrashes(rate_per_min=480.0 / duration_s)],
        name="crash-storm",
    )


def _rolling_drain(duration_s: float) -> FaultModel:
    window = 0.2 * duration_s
    # Short runs shrink the uncordon window below the default grace period;
    # keep the grace strictly inside the window so the scenario stays valid
    # at any duration.
    grace = min(10.0, 0.5 * window)
    return FaultModel(
        events=[
            NodeDrain(at_s=0.3 * duration_s, node=0, duration_s=window, grace_s=grace),
            NodeDrain(at_s=0.6 * duration_s, node=1, duration_s=window, grace_s=grace),
        ],
        name="rolling-drain",
    )


def _stragglers(duration_s: float) -> FaultModel:
    window = 0.15 * duration_s
    return FaultModel(
        events=[
            StragglerSlowdown(at_s=0.25 * duration_s, duration_s=window, factor=4.0),
            StragglerSlowdown(at_s=0.55 * duration_s, duration_s=window, factor=4.0),
        ],
        name="stragglers",
    )


def _brownout(duration_s: float) -> FaultModel:
    return FaultModel(
        events=[
            TransientDegradation(
                at_s=0.4 * duration_s, duration_s=0.2 * duration_s, factor=2.5
            )
        ],
        name="brownout",
    )


#: CLI-facing fault-scenario registry; every builder takes the run duration
#: and returns a duration-relative :class:`FaultModel`.
FAULT_SCENARIOS: dict[str, Callable[[float], FaultModel]] = {
    "none": lambda duration_s: FaultModel(name="none"),
    "single-crash": _single_crash,
    "crash-storm": _crash_storm,
    "rolling-drain": _rolling_drain,
    "stragglers": _stragglers,
    "brownout": _brownout,
}


def fault_scenario_names() -> list[str]:
    """Registered fault-scenario names, in registration order."""
    return list(FAULT_SCENARIOS)


def make_fault_model(
    spec: "str | FaultModel | None", duration_s: float
) -> FaultModel | None:
    """Resolve a fault spec into a model, or ``None`` for a healthy run.

    ``spec`` may be ``None``, a :class:`FaultModel`, a registered scenario
    name, or a fault script (recognised by the ``@`` in its first event).
    Empty models resolve to ``None`` so the engine's no-fault path is taken.
    """
    if spec is None:
        return None
    if isinstance(spec, FaultModel):
        return None if spec.is_empty else spec
    name = spec.strip()
    if name in FAULT_SCENARIOS:
        model = FAULT_SCENARIOS[name](duration_s)
    elif "@" in name:
        model = parse_fault_script(name)
    else:
        known = ", ".join(fault_scenario_names())
        raise ValueError(
            f"unknown fault scenario {name!r}; choose from {known} or pass a "
            "script like 'crash@120;drain@300+60:node=1'"
        )
    return None if model.is_empty else model


def validate_fault_spec(spec: "str | FaultModel | None") -> None:
    """Fail fast (one-line :class:`ValueError`) on an unresolvable spec.

    Registry scenarios are duration-relative, so validation instantiates them
    against a nominal duration; scripts are fully parsed.
    """
    make_fault_model(spec, duration_s=600.0)
