"""Sharded multi-process engine runs: plan, worker entrypoint, merge.

A :class:`~repro.serving.engine.MultiTenantEngine` run is *shardable by
tenant*: every tenant draws its arrivals, costs and faults from dedicated
``SeedSequence`` streams keyed only by its own seed, so a worker simulating
a subset of tenants against its own slice of the node pool produces — query
for query, sample for sample — the bytes the serial run produces for those
tenants.  :func:`run_sharded` exploits that: it partitions the tenant list
across worker processes (:func:`repro.parallel.partition_indices`, fork
preferred / spawn fallback via :func:`repro.parallel.pool_context`), runs
one engine per shard, and merges the shards back into one
:class:`~repro.serving.engine.MultiTenantResult` in the original tenant
order.  ``SimulationResult.digest()`` equality between the sharded and
serial runs is the gated contract (see
``tests/serving/test_sharded_equivalence.py``).

When sharding is bit-exact — and when it is not
-----------------------------------------------

Exactness holds when the tenants do not *interact* through the shared pool:

* the pool has capacity headroom, so no tenant's placement ever queues
  behind another tenant's replicas (true of every stock configuration —
  pending placements are visible in :class:`ClusterSeries` if not);
* no tenant injects **node-drain** faults: a drain cordons a *shared* node
  and evicts every tenant's replicas on it, which cannot be reproduced from
  inside a single shard.  :func:`plan_shards` rejects such runs with a
  one-line error rather than silently diverging.

Per-tenant replica crashes, stragglers and degradations are tenant-local
(dedicated ``[seed, 3]`` fault RNG) and shard exactly.  The merged
:class:`ClusterSeries` sums per-shard pool series; the memory series is an
exact sum, while ``nodes_in_use`` may exceed the serial value (the serial
scheduler can pack two tenants onto one node where shards cannot).

Streaming: pass ``stream_dir`` and each worker flushes its series and
latency samples to an on-disk spool (:mod:`repro.serving.streaming`)
instead of holding whole-run arrays; :func:`merge_stream` rebuilds the
exact in-memory result from the spool afterwards.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.hardware.specs import ClusterSpec
from repro.parallel import partition_indices, peak_rss_mb, pool_context
from repro.serving.engine import (
    ClusterSeries,
    MultiTenantEngine,
    MultiTenantResult,
    SimulationResult,
    TenantSpec,
    _metric_series,
)
from repro.serving.faults import NodeDrain, make_fault_model
from repro.serving.latency import LatencyTracker
from repro.serving.streaming import (
    ShardManifest,
    SpoolError,
    SpoolWriter,
    StreamConfig,
    iter_chunks,
    read_meta,
)
from repro.serving.watchdog import WATCHDOG_SERIES_KEYS

__all__ = ["ShardPlan", "plan_shards", "run_sharded", "merge_stream"]


@dataclass(frozen=True)
class ShardPlan:
    """How a tenant list maps onto worker processes and node-pool slices."""

    #: Per shard: the indices (into the original tenant list) it simulates.
    tenant_indices: tuple[tuple[int, ...], ...]
    #: Per shard: how many nodes of the pool it owns (sums to the pool size).
    node_counts: tuple[int, ...]

    @property
    def num_shards(self) -> int:
        return len(self.tenant_indices)


def _drains_nodes(tenant: TenantSpec) -> bool:
    """Whether the tenant's fault spec schedules any node-drain event.

    Drains come only from scripted events, so materialising the timeline
    with a throwaway RNG (stochastic processes emit replica crashes, never
    drains) answers this without touching the tenant's real fault stream.
    """
    model = make_fault_model(tenant.faults, tenant.pattern.duration_s)
    if model is None:
        return False
    timeline = model.timeline(tenant.pattern.duration_s, np.random.default_rng(0))
    return any(isinstance(event, NodeDrain) for _, event in timeline)


def _proportional_split(total: int, weights: Sequence[int]) -> list[int]:
    """Split ``total`` into ``len(weights)`` positive parts ∝ ``weights``.

    Largest-remainder rounding (ties toward earlier parts), then a fix-up
    pass taking from the largest part so every part gets at least one —
    deterministic, so every host plans the same node slices.
    """
    denominator = sum(weights)
    ideals = [total * weight / denominator for weight in weights]
    counts = [int(ideal) for ideal in ideals]
    remainders = sorted(
        range(len(weights)), key=lambda i: (-(ideals[i] - counts[i]), i)
    )
    for index in remainders[: total - sum(counts)]:
        counts[index] += 1
    for index, count in enumerate(counts):
        while counts[index] == 0:
            donor = max(range(len(counts)), key=lambda i: counts[i])
            counts[donor] -= 1
            counts[index] += 1
    return counts


def plan_shards(
    tenants: Sequence[TenantSpec],
    workers: int,
    cluster_spec: ClusterSpec | None = None,
) -> ShardPlan:
    """Partition a multi-tenant run across ``workers`` processes.

    Tenants are split contiguously and near-evenly
    (:func:`repro.parallel.partition_indices` — ``workers`` is clamped to
    the tenant count), and the node pool is sliced proportionally to each
    shard's tenant count.  Raises a one-line :class:`ValueError` for runs
    that cannot shard exactly: node-drain fault specs (cross-tenant by
    construction) and pools with fewer nodes than shards.
    """
    tenants = list(tenants)
    if not tenants:
        raise ValueError("at least one tenant is required")
    spec = cluster_spec if cluster_spec is not None else tenants[0].plan.cluster
    parts = partition_indices(len(tenants), workers)
    if len(parts) > 1:
        for tenant in tenants:
            if _drains_nodes(tenant):
                raise ValueError(
                    f"tenant {tenant.name!r} injects node drains, which hit the "
                    "shared node pool across tenant boundaries; node-drain "
                    "faults need a single-process run (--shard-workers 1)"
                )
        if spec.num_nodes < len(parts):
            raise ValueError(
                f"cannot slice a {spec.num_nodes}-node pool across "
                f"{len(parts)} workers; use at most {spec.num_nodes} workers"
            )
    if len(parts) == 1:
        node_counts = [spec.num_nodes]
    else:
        node_counts = _proportional_split(spec.num_nodes, [len(p) for p in parts])
    return ShardPlan(
        tenant_indices=tuple(tuple(part) for part in parts),
        node_counts=tuple(node_counts),
    )


def _run_shard(args: tuple) -> tuple:
    """Worker entrypoint: simulate one shard's tenants on its pool slice.

    Module-level (not a closure) so it pickles under both fork and spawn.
    Returns ``(shard_index, MultiTenantResult | ShardManifest, capacity_gb,
    peak_rss_mb)`` — the RSS is sampled here, inside the worker, so each
    shard reports its own high-water mark rather than the parent's.
    """
    (
        shard_index,
        tenants,
        shard_spec,
        warm_start,
        namespace,
        stream_dir,
        spill_threshold,
        flush_series_every,
    ) = args
    stream = (
        StreamConfig(
            directory=Path(stream_dir),
            spill_threshold=spill_threshold,
            flush_series_every=flush_series_every,
        )
        if stream_dir is not None
        else None
    )
    engine = MultiTenantEngine(
        tenants,
        cluster_spec=shard_spec,
        warm_start=warm_start,
        namespace=namespace,
        stream=stream,
    )
    capacity_gb = engine.cluster.memory_capacity_gb
    outcome = engine.run()
    rss_mb = peak_rss_mb()
    if isinstance(outcome, ShardManifest):
        outcome.peak_rss_mb = rss_mb
    return shard_index, outcome, capacity_gb, rss_mb


def _merge_cluster_series(
    parts: Sequence[ClusterSeries], capacities: Sequence[float]
) -> ClusterSeries:
    """Sum per-shard pool series into one cluster-wide series.

    Memory and pending placements are exact sums; utilization is the summed
    memory over the summed capacity.  Requires every shard to sample on the
    same grid (true whenever the tenants share one ``sample_interval_s``).
    """
    if len(parts) == 1:
        return parts[0]
    times = parts[0].sample_times
    for part in parts[1:]:
        if not np.array_equal(part.sample_times, times):
            raise ValueError(
                "shards sampled on different time grids (mixed per-tenant "
                "sample intervals); merge needs a uniform grid — run "
                "single-process instead"
            )
    memory = np.sum([part.memory_gb for part in parts], axis=0)
    total_capacity = float(sum(capacities))
    return ClusterSeries(
        sample_times=times,
        memory_gb=memory,
        memory_utilization=(
            memory / total_capacity if total_capacity > 0 else np.zeros_like(memory)
        ),
        pending_placements=np.sum(
            [part.pending_placements for part in parts], axis=0, dtype=np.int64
        ),
        nodes_in_use=np.sum(
            [part.nodes_in_use for part in parts], axis=0, dtype=np.int64
        ),
    )


def run_sharded(
    tenants: Sequence[TenantSpec],
    cluster_spec: ClusterSpec | None = None,
    *,
    workers: int = 1,
    stream_dir: str | Path | None = None,
    warm_start: bool = True,
    spill_threshold: int = StreamConfig.spill_threshold,
    flush_series_every: int = StreamConfig.flush_series_every,
) -> MultiTenantResult:
    """Run a multi-tenant simulation sharded across worker processes.

    With ``workers=1`` and no ``stream_dir`` this is exactly
    ``MultiTenantEngine(tenants, cluster_spec).run()`` (same process, same
    bytes).  With more workers, each shard simulates its tenants on its
    node-pool slice in its own process; with ``stream_dir``, workers spool
    series and latency samples to disk (memory-bounded at any horizon) and
    the merge rebuilds the exact in-memory result.  The returned result
    carries a ``sharding_stats`` dict: worker count, shard membership,
    per-worker peak RSS (MB), wall time, and the host's CPU count (so a
    recorded speedup can be judged against the cores that were available).
    """
    tenants = list(tenants)
    spec = cluster_spec if cluster_spec is not None else (
        tenants[0].plan.cluster if tenants else None
    )
    plan = plan_shards(tenants, workers, spec)
    namespace = len(tenants) > 1
    stream_root = Path(stream_dir) if stream_dir is not None else None
    shard_names = [f"shard-{index:03d}" for index in range(plan.num_shards)]
    shard_args = []
    for shard_index, indices in enumerate(plan.tenant_indices):
        shard_args.append(
            (
                shard_index,
                [tenants[i] for i in indices],
                spec.with_nodes(plan.node_counts[shard_index]),
                warm_start,
                namespace,
                str(stream_root / shard_names[shard_index]) if stream_root else None,
                spill_threshold,
                flush_series_every,
            )
        )
    started = time.perf_counter()
    if plan.num_shards == 1:
        outcomes = [_run_shard(shard_args[0])]
    else:
        with pool_context().Pool(processes=plan.num_shards) as pool:
            outcomes = pool.map(_run_shard, shard_args, chunksize=1)
    wall_s = time.perf_counter() - started
    outcomes.sort(key=lambda item: item[0])
    capacities = [outcome[2] for outcome in outcomes]

    if stream_root is not None:
        SpoolWriter(stream_root).write_meta(
            {
                "schema": 1,
                "status": "complete",
                "shards": shard_names,
                "tenants": [tenant.name for tenant in tenants],
                "workers": plan.num_shards,
            }
        )
        result = merge_stream(stream_root)
    else:
        merged: dict[str, SimulationResult] = {}
        for _, outcome, _, _ in outcomes:
            merged.update(outcome.tenants)
        result = MultiTenantResult(
            tenants={tenant.name: merged[tenant.name] for tenant in tenants},
            cluster_series=_merge_cluster_series(
                [outcome[1].cluster_series for outcome in outcomes], capacities
            ),
        )
    result.sharding_stats = {
        "workers": plan.num_shards,
        "requested_workers": workers,
        "shards": [
            [tenants[i].name for i in indices] for indices in plan.tenant_indices
        ],
        "node_counts": list(plan.node_counts),
        "peak_rss_mb": [outcome[3] for outcome in outcomes],
        "wall_s": wall_s,
        "streamed": stream_root is not None,
        "cpu_count": os.cpu_count() or 1,
    }
    return result


# ----------------------------------------------------------------------
# Spool merge
# ----------------------------------------------------------------------
def _merge_tenant(tenant_dir: Path) -> SimulationResult:
    """Rebuild one tenant's exact :class:`SimulationResult` from its spool."""
    meta = read_meta(tenant_dir, "tenant spool")
    query_chunks = list(iter_chunks(tenant_dir, "queries"))
    if query_chunks:
        completion_times = np.concatenate([c["completion_times"] for c in query_chunks])
        latencies_s = np.concatenate([c["latencies_s"] for c in query_chunks])
    else:
        completion_times = np.empty(0, dtype=np.float64)
        latencies_s = np.empty(0, dtype=np.float64)
    if completion_times.size != meta["num_samples"]:
        raise SpoolError(
            f"{tenant_dir}: manifest records {meta['num_samples']} samples but "
            f"the query chunks hold {completion_times.size}"
        )
    tracker = LatencyTracker.from_arrays(completion_times, latencies_s)

    deployments = meta["deployments"]
    # Cached runs stream one extra series whose rows follow the manifest's
    # cached-deployment order; pre-cache spools have neither key.
    cached_deployments = meta.get("cached_deployments", [])
    cache_hit_rate: dict[str, np.ndarray] = {}
    # Watchdog runs stream one extra series whose rows follow
    # WATCHDOG_SERIES_KEYS order; watchdog-off spools have neither key.
    slo = meta.get("slo", "none")
    watchdog_series: dict[str, np.ndarray] = {}
    series_chunks = list(iter_chunks(tenant_dir, "series"))
    if series_chunks:
        sample_times = np.concatenate([c["sample_times"] for c in series_chunks])
        target_qps = np.concatenate([c["target_qps"] for c in series_chunks])
        memory_gb = np.concatenate([c["memory_gb"] for c in series_chunks])
        stacked = {
            name: np.concatenate([c[name] for c in series_chunks], axis=1)
            for name in (
                "replica_counts",
                "utilization",
                "availability",
                "requeues",
                "batch_occupancy",
            )
        }
        per_lane = {
            name: {
                deployment: stacked[name][row]
                for row, deployment in enumerate(deployments)
            }
            for name in stacked
        }
        if cached_deployments:
            hit_rows = np.concatenate(
                [c["cache_hit_rate"] for c in series_chunks], axis=1
            )
            cache_hit_rate = {
                deployment: hit_rows[row]
                for row, deployment in enumerate(cached_deployments)
            }
        if slo != "none":
            watchdog_rows = np.concatenate(
                [c["watchdog"] for c in series_chunks], axis=1
            )
            watchdog_series = {
                key: watchdog_rows[row]
                for row, key in enumerate(WATCHDOG_SERIES_KEYS)
            }
    else:
        sample_times = np.empty(0, dtype=np.float64)
        target_qps = np.empty(0, dtype=np.float64)
        memory_gb = np.empty(0, dtype=np.float64)
        per_lane = {
            name: {
                deployment: np.empty(0, dtype=dtype)
                for deployment in deployments
            }
            for name, dtype in (
                ("replica_counts", np.float64),
                ("utilization", np.float64),
                ("availability", np.float64),
                ("requeues", np.int64),
                ("batch_occupancy", np.float64),
            )
        }
        cache_hit_rate = {
            deployment: np.empty(0, dtype=np.float64)
            for deployment in cached_deployments
        }
        if slo != "none":
            watchdog_series = {
                key: np.empty(0, dtype=np.float64) for key in WATCHDOG_SERIES_KEYS
            }
    achieved_qps, p95_latency_ms = _metric_series(
        tracker, sample_times, float(meta["sample_interval_s"])
    )
    return SimulationResult(
        plan_name=meta["plan_name"],
        strategy=meta["strategy"],
        sla_s=float(meta["sla_s"]),
        sample_times=sample_times,
        target_qps=target_qps,
        achieved_qps=achieved_qps,
        memory_gb=memory_gb,
        p95_latency_ms=p95_latency_ms,
        replica_counts=per_lane["replica_counts"],
        tracker=tracker,
        routing=meta["routing"],
        tenant=meta["tenant"],
        utilization=per_lane["utilization"],
        cost_model=meta["cost_model"],
        max_batch=int(meta["max_batch"]),
        batch_occupancy=per_lane["batch_occupancy"],
        faults=meta["faults"],
        availability=per_lane["availability"],
        requeues=per_lane["requeues"],
        rejected_queries=int(meta["rejected_queries"]),
        dropped_queries=int(meta["dropped_queries"]),
        requeued_queries=int(meta["requeued_queries"]),
        faults_injected=int(meta["faults_injected"]),
        cache_hit_rate=cache_hit_rate,
        cache_mb=float(meta.get("cache_mb", 0.0)),
        drift=meta.get("drift", "none"),
        replan=meta.get("replan", "none"),
        replans_applied=int(meta.get("replans_applied", 0)),
        slo=slo,
        timeout_queries=int(meta.get("timeout_queries", 0)),
        degraded_queries=int(meta.get("degraded_queries", 0)),
        shed_queries=int(meta.get("shed_queries", 0)),
        retried_queries=int(meta.get("retried_queries", 0)),
        slo_tier1_breaches=int(meta.get("slo_tier1_breaches", 0)),
        slo_tier2_flags=int(meta.get("slo_tier2_flags", 0)),
        slo_escalations=int(meta.get("slo_escalations", 0)),
        slo_recoveries=int(meta.get("slo_recoveries", 0)),
        watchdog_series=watchdog_series,
    )


def _read_cluster_series(shard_dir: Path) -> ClusterSeries:
    chunks = list(iter_chunks(shard_dir, "cluster"))
    fields = (
        "sample_times",
        "memory_gb",
        "memory_utilization",
        "pending_placements",
        "nodes_in_use",
    )
    if chunks:
        merged = {name: np.concatenate([c[name] for c in chunks]) for name in fields}
    else:
        merged = {
            name: np.empty(0, dtype=np.int64 if name in ("pending_placements", "nodes_in_use") else np.float64)
            for name in fields
        }
    return ClusterSeries(**merged)


def merge_stream(stream_dir: str | Path) -> MultiTenantResult:
    """Rebuild a :class:`MultiTenantResult` from a streamed run's spool.

    Reads one tenant at a time, so peak memory is bounded by the largest
    single tenant, not the whole run.  Raises
    :class:`~repro.serving.streaming.SpoolError` /
    :class:`~repro.serving.streaming.SpoolTruncatedError` on incomplete or
    corrupt spools (a crashed worker never writes its commit-marker
    ``meta.json``).
    """
    stream_dir = Path(stream_dir)
    run_meta = read_meta(stream_dir, "run manifest")
    tenant_results: dict[str, SimulationResult] = {}
    cluster_parts: list[ClusterSeries] = []
    capacities: list[float] = []
    for shard_name in run_meta["shards"]:
        shard_dir = stream_dir / shard_name
        shard_meta = read_meta(shard_dir, "shard manifest")
        capacities.append(float(shard_meta["capacity_gb"]))
        cluster_parts.append(_read_cluster_series(shard_dir))
        for tenant_name, tenant_dir in zip(
            shard_meta["tenants"], shard_meta["tenant_dirs"]
        ):
            result = _merge_tenant(shard_dir / tenant_dir)
            if result.tenant != tenant_name:
                raise SpoolError(
                    f"{shard_dir / tenant_dir}: manifest names tenant "
                    f"{result.tenant!r} but the shard expected {tenant_name!r}"
                )
            tenant_results[result.tenant] = result
    missing = [name for name in run_meta["tenants"] if name not in tenant_results]
    if missing:
        raise SpoolError(f"{stream_dir}: spool is missing tenants {missing}")
    return MultiTenantResult(
        tenants={name: tenant_results[name] for name in run_meta["tenants"]},
        cluster_series=_merge_cluster_series(cluster_parts, capacities),
    )
