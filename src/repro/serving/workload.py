"""Per-query cost models: the serve-time face of the access-skew data layer.

ElasticRec's planning regression is fit over heterogeneous per-query costs:
gather latency scales with the pooling factor and with where in the
hot-sorted access distribution a query's lookups land (Figures 6 and 9 of
the paper).  The serving engine historically collapsed every query to the
deployment's mean service time; the models here put the heterogeneity back
while keeping the planner's estimates as the *mean* of the sampled costs.

A :class:`QueryCostModel` pre-samples one cost *multiplier* per query of a
run, vectorised and seeded, so runs stay deterministic and the sampling adds
O(num_queries) work, not O(num_queries * pooling):

* :class:`HomogeneousCostModel` — the degenerate compatibility mode: every
  multiplier is exactly ``1.0`` and the RNG is never touched, so an engine
  run reproduces the pre-cost-model behaviour bit-for-bit.
* :class:`SkewedCostModel` — samples per-query gather counts from an
  :class:`~repro.data.distributions.AccessDistribution`: each query draws
  ``pooling`` lookups, duplicate rows within one pooled lookup coalesce into
  a single gather, and gathers that land in the hot prefix (cache-resident
  rows) cost a fraction of a cold DRAM gather.  A pool of ``num_profiles``
  query profiles is sampled exactly and queries draw from the pool, keeping
  a 100k-query run within a few percent of the homogeneous engine's
  wall-clock (``benchmarks/bench_query_costs.py`` tracks this).

Multipliers are normalised to mean 1.0 over the profile pool, so the
deployment's planned service time stays the mean service time for any skew.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.distributions import (
    DEFAULT_TOP_FRACTION,
    AccessDistribution,
    hot_prefix_rows,
)
from repro.model.configs import DLRMConfig

__all__ = [
    "QueryCostModel",
    "HomogeneousCostModel",
    "SkewedCostModel",
    "COST_MODELS",
    "make_cost_model",
    "cost_model_names",
    "resolve_cost_model_name",
]


class QueryCostModel:
    """Base class: pre-samples one service-cost multiplier per query."""

    #: Registry name of the model.
    name: str = ""

    @property
    def is_homogeneous(self) -> bool:
        """Whether every multiplier is exactly 1.0 (the compatibility mode)."""
        return False

    @property
    def supports_gather_splits(self) -> bool:
        """Whether :meth:`sample_with_gathers` exposes hot/cold gather counts."""
        return False

    def sample(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``num_queries`` cost multipliers (float64, mean ~1.0)."""
        raise NotImplementedError

    def sample_with_gathers(
        self, num_queries: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`sample`, plus per-query distinct hot/cold gather counts.

        Only models with ``supports_gather_splits`` implement this; the
        serving engine's embedding-cache tier needs the split to drive
        per-replica hit rates.
        """
        raise NotImplementedError(
            f"cost model {self.name!r} does not expose per-query gather splits"
        )

    def sample_priced(
        self, num_queries: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`sample_with_gathers`, plus per-query gather totals.

        The totals are summed once per *profile* and broadcast through the
        assignment, so pre-pricing a run costs O(num_profiles) adds instead
        of O(num_queries) — and each total is the identical ``hot + cold``
        IEEE-754 sum the engine would compute per query.  Consumes the RNG
        exactly like :meth:`sample` / :meth:`sample_with_gathers`.
        """
        raise NotImplementedError(
            f"cost model {self.name!r} does not expose per-query gather splits"
        )


class HomogeneousCostModel(QueryCostModel):
    """Every query costs exactly the planner's mean estimate.

    ``sample`` never touches the RNG, so adding a cost model to an engine in
    this mode cannot perturb any other random stream of the run.
    """

    name = "homogeneous"

    @property
    def is_homogeneous(self) -> bool:
        return True

    def sample(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        return np.ones(num_queries, dtype=np.float64)


class SkewedCostModel(QueryCostModel):
    """Per-query gather counts and pooling factors from an access-skew distribution.

    Two sources of heterogeneity, both rooted in the data layer's
    distribution:

    * **Gather counts** — each profile draws ``pooling`` lookups from
      ``distribution``; duplicates coalesce (one gather per distinct row per
      query) and distinct rows inside the hottest ``hot_fraction`` of the
      table cost ``hot_cost_fraction`` of a cold gather.
    * **Pooling factors** — multi-hot feature lengths in production
      recommendation traces are heavy-tailed (the same user-activity power
      law that skews the table's accesses), so each profile also draws a
      mean-one log-normal pooling factor whose coefficient of variation is
      ``pooling_spread`` — by default the distribution's locality ``P``, so
      a more skewed table also serves a wider spread of query sizes.

    Together they reproduce the Figure 9 heterogeneity the planner's QPS
    regression is fit over: under high skew, most queries coalesce into
    cheap, hot, short gathers while a tail of long cold-row queries costs
    several times the mean.
    """

    name = "skewed"

    def __init__(
        self,
        distribution: AccessDistribution,
        pooling: int,
        num_profiles: int = 2048,
        hot_fraction: float = DEFAULT_TOP_FRACTION,
        hot_cost_fraction: float = 0.25,
        pooling_spread: float | None = None,
    ) -> None:
        if pooling <= 0:
            raise ValueError("pooling must be positive")
        if num_profiles <= 0:
            raise ValueError("num_profiles must be positive")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= hot_cost_fraction <= 1.0:
            raise ValueError("hot_cost_fraction must be in [0, 1]")
        if pooling_spread is not None and pooling_spread < 0:
            raise ValueError("pooling_spread must be non-negative")
        self._distribution = distribution
        self._pooling = int(pooling)
        self._num_profiles = int(num_profiles)
        self._hot_fraction = float(hot_fraction)
        self._hot_cost_fraction = float(hot_cost_fraction)
        self._pooling_spread = (
            float(pooling_spread)
            if pooling_spread is not None
            else distribution.locality(hot_fraction)
        )
        self._hot_rank_limit = hot_prefix_rows(distribution, row_fraction=hot_fraction)

    @property
    def distribution(self) -> AccessDistribution:
        """The access-skew distribution the gather counts are drawn from."""
        return self._distribution

    @property
    def supports_gather_splits(self) -> bool:
        return True

    @property
    def num_profiles(self) -> int:
        """Size of the pre-sampled query-profile pool."""
        return self._num_profiles

    @property
    def hot_fraction(self) -> float:
        """Fraction of hot-sorted rows forming the hot prefix."""
        return self._hot_fraction

    @property
    def hot_cost_fraction(self) -> float:
        """Cost of a hot-prefix gather relative to a cold DRAM gather."""
        return self._hot_cost_fraction

    @property
    def hot_rank_limit(self) -> int:
        """Rows in the hot prefix (shared ``hot_prefix_rows`` definition)."""
        return self._hot_rank_limit

    @property
    def pooling(self) -> int:
        """Mean lookups per query (the paper's pooling factor)."""
        return self._pooling

    @property
    def pooling_spread(self) -> float:
        """Coefficient of variation of the per-query pooling factors."""
        return self._pooling_spread

    def profile_splits(
        self, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-profile distinct hot and cold gather counts.

        One row of each result is one query profile: ``pooling`` lookups are
        drawn, duplicates coalesce (one gather per distinct row), and each
        distinct row counts as hot or cold by the shared hot-prefix
        definition.  The split is what the serve-time embedding cache needs:
        hot gathers are the cache-admissible ones.
        """
        ranks = self._distribution.sample(self._num_profiles * self._pooling, rng)
        ranks = np.sort(ranks.reshape(self._num_profiles, self._pooling), axis=1)
        # A rank is a distinct gather where it differs from its predecessor.
        distinct = np.ones_like(ranks, dtype=bool)
        distinct[:, 1:] = ranks[:, 1:] != ranks[:, :-1]
        hot = ranks < self._hot_rank_limit
        hot_gathers = np.sum(distinct & hot, axis=1, dtype=np.float64)
        cold_gathers = np.sum(distinct & ~hot, axis=1, dtype=np.float64)
        return hot_gathers, cold_gathers

    def profile_gathers(self, rng: np.random.Generator) -> np.ndarray:
        """Per-profile effective gather counts (before normalisation).

        One row of the result is one query profile's cost in cold-gather
        units: distinct cold rows plus ``hot_cost_fraction`` per distinct hot
        row.
        """
        hot_gathers, cold_gathers = self.profile_splits(rng)
        return cold_gathers + self._hot_cost_fraction * hot_gathers

    def _sample_profiles(
        self, num_queries: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray, np.ndarray]:
        """Shared sampling core: (costs, assignment, hot, cold) per profile.

        Consumes the RNG identically for every caller, so multipliers from
        :meth:`sample` and :meth:`sample_with_gathers` are bit-identical for
        the same seed.  ``assignment`` is ``None`` on the degenerate
        every-gather-free path, which returns before drawing it (matching the
        historical stream).
        """
        hot_gathers, cold_gathers = self.profile_splits(rng)
        costs = cold_gathers + self._hot_cost_fraction * hot_gathers
        if self._pooling_spread > 0:
            # Mean-one log-normal pooling factor: sigma chosen so the factor's
            # coefficient of variation equals pooling_spread.
            sigma = math.sqrt(math.log1p(self._pooling_spread**2))
            pooling_factors = np.exp(
                rng.normal(-0.5 * sigma * sigma, sigma, size=self._num_profiles)
            )
            costs = costs * pooling_factors
        mean = float(costs.mean())
        if mean <= 0:
            # Every gather free (hot_cost_fraction == 0 and all-hot table).
            return np.ones(self._num_profiles, dtype=np.float64), None, hot_gathers, cold_gathers
        assignment = rng.integers(0, self._num_profiles, size=num_queries)
        return costs / mean, assignment, hot_gathers, cold_gathers

    def sample(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        if num_queries == 0:
            # Nothing to draw: return before any RNG use so an idle tenant
            # leaves the shared cost stream untouched (matching the
            # homogeneous model's guarantee).
            return np.empty(0, dtype=np.float64)
        multipliers, assignment, _, _ = self._sample_profiles(num_queries, rng)
        if assignment is None:
            return np.ones(num_queries, dtype=np.float64)
        return multipliers[assignment]

    def sample_with_gathers(
        self, num_queries: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        empty = np.empty(0, dtype=np.float64)
        if num_queries == 0:
            return empty, empty, empty
        multipliers, assignment, hot, cold = self._sample_profiles(num_queries, rng)
        if assignment is None:
            zeros = np.zeros(num_queries, dtype=np.float64)
            return np.ones(num_queries, dtype=np.float64), zeros, zeros
        return multipliers[assignment], hot[assignment], cold[assignment]

    def sample_priced(
        self, num_queries: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        empty = np.empty(0, dtype=np.float64)
        if num_queries == 0:
            return empty, empty, empty, empty
        multipliers, assignment, hot, cold = self._sample_profiles(num_queries, rng)
        if assignment is None:
            zeros = np.zeros(num_queries, dtype=np.float64)
            ones = np.ones(num_queries, dtype=np.float64)
            return ones, zeros, zeros, zeros
        # Per-profile sums broadcast through the assignment: elementwise
        # (hot + cold)[assignment] == hot[assignment] + cold[assignment],
        # so the totals match a per-query sum bit-for-bit.
        totals = hot + cold
        return (
            multipliers[assignment],
            hot[assignment],
            cold[assignment],
            totals[assignment],
        )


#: Registry of query-cost models by CLI-facing name.
COST_MODELS: dict[str, type[QueryCostModel]] = {
    model.name: model for model in (HomogeneousCostModel, SkewedCostModel)
}


def cost_model_names() -> list[str]:
    """Registered cost-model names, in registration order."""
    return list(COST_MODELS)


def resolve_cost_model_name(name: str) -> str:
    """Validate a cost-model name, raising :class:`ValueError` with the choices."""
    if name not in COST_MODELS:
        known = ", ".join(cost_model_names())
        raise ValueError(f"unknown cost model {name!r}; choose from {known}")
    return name


def make_cost_model(
    model: str | QueryCostModel,
    workload: DLRMConfig | None = None,
    *,
    num_profiles: int | None = None,
    hot_fraction: float | None = None,
    hot_cost_fraction: float | None = None,
    pooling_spread: float | None = None,
) -> QueryCostModel:
    """Resolve a cost-model name against a workload (or pass an instance through).

    ``"homogeneous"`` needs no workload; ``"skewed"`` derives its access
    distribution and pooling factor from ``workload.embedding``.  The keyword
    overrides forward to :class:`SkewedCostModel`'s matching tuning knobs and
    are rejected for models that have none.
    """
    overrides = {
        name: value
        for name, value in (
            ("num_profiles", num_profiles),
            ("hot_fraction", hot_fraction),
            ("hot_cost_fraction", hot_cost_fraction),
            ("pooling_spread", pooling_spread),
        )
        if value is not None
    }
    if isinstance(model, QueryCostModel):
        if overrides:
            raise ValueError(
                "cost-model overrides only apply when building from a name; "
                "pass the knobs to the model's constructor instead"
            )
        return model
    resolve_cost_model_name(model)
    if model == HomogeneousCostModel.name:
        if overrides:
            raise ValueError(
                "the homogeneous cost model has no skew knobs; "
                "use --cost-model skewed to tune "
                + ", ".join(sorted(overrides))
            )
        return HomogeneousCostModel()
    if workload is None:
        raise ValueError("the skewed cost model needs a workload to derive its skew from")
    embedding = workload.embedding
    return SkewedCostModel(
        distribution=embedding.access_distribution(),
        pooling=embedding.pooling,
        **overrides,
    )
