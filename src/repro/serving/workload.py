"""Per-query cost models: the serve-time face of the access-skew data layer.

ElasticRec's planning regression is fit over heterogeneous per-query costs:
gather latency scales with the pooling factor and with where in the
hot-sorted access distribution a query's lookups land (Figures 6 and 9 of
the paper).  The serving engine historically collapsed every query to the
deployment's mean service time; the models here put the heterogeneity back
while keeping the planner's estimates as the *mean* of the sampled costs.

A :class:`QueryCostModel` pre-samples one cost *multiplier* per query of a
run, vectorised and seeded, so runs stay deterministic and the sampling adds
O(num_queries) work, not O(num_queries * pooling):

* :class:`HomogeneousCostModel` — the degenerate compatibility mode: every
  multiplier is exactly ``1.0`` and the RNG is never touched, so an engine
  run reproduces the pre-cost-model behaviour bit-for-bit.
* :class:`SkewedCostModel` — samples per-query gather counts from an
  :class:`~repro.data.distributions.AccessDistribution`: each query draws
  ``pooling`` lookups, duplicate rows within one pooled lookup coalesce into
  a single gather, and gathers that land in the hot prefix (cache-resident
  rows) cost a fraction of a cold DRAM gather.  A pool of ``num_profiles``
  query profiles is sampled exactly and queries draw from the pool, keeping
  a 100k-query run within a few percent of the homogeneous engine's
  wall-clock (``benchmarks/bench_query_costs.py`` tracks this).

Multipliers are normalised to mean 1.0 over the profile pool, so the
deployment's planned service time stays the mean service time for any skew.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.distributions import (
    DEFAULT_TOP_FRACTION,
    DRIFT_SCHEDULES,
    AccessDistribution,
    DriftingDistribution,
    ZipfDistribution,
    hot_prefix_rows,
)
from repro.model.configs import DLRMConfig

__all__ = [
    "QueryCostModel",
    "HomogeneousCostModel",
    "SkewedCostModel",
    "COST_MODELS",
    "make_cost_model",
    "cost_model_names",
    "resolve_cost_model_name",
    "DriftSpec",
    "parse_drift_spec",
    "make_drift_model",
    "validate_drift_spec",
    "drift_endpoint_model",
    "sample_drifting_priced",
    "degraded_gather_multiplier",
]


def degraded_gather_multiplier(
    multiplier: float, hot: float, cold: float, hot_cost_fraction: float
) -> float:
    """Cache-hot-only price of a query under watchdog quality fallback.

    A degraded gather serves only the query's hot rows (cache-resident, at
    ``hot_cost_fraction`` per row) and skips the cold rows entirely, so the
    full-price ``multiplier`` scales by the hot share of the priced work:
    ``hot_cost_fraction * hot / (hot_cost_fraction * hot + cold)``.  A query
    with no priced work keeps its multiplier unchanged (nothing to shed).
    """
    hot_cost = hot_cost_fraction * hot
    denominator = hot_cost + cold
    if denominator <= 0.0:
        return multiplier
    return multiplier * (hot_cost / denominator)


class QueryCostModel:
    """Base class: pre-samples one service-cost multiplier per query."""

    #: Registry name of the model.
    name: str = ""

    @property
    def is_homogeneous(self) -> bool:
        """Whether every multiplier is exactly 1.0 (the compatibility mode)."""
        return False

    @property
    def supports_gather_splits(self) -> bool:
        """Whether :meth:`sample_with_gathers` exposes hot/cold gather counts."""
        return False

    def sample(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``num_queries`` cost multipliers (float64, mean ~1.0)."""
        raise NotImplementedError

    def sample_with_gathers(
        self, num_queries: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`sample`, plus per-query distinct hot/cold gather counts.

        Only models with ``supports_gather_splits`` implement this; the
        serving engine's embedding-cache tier needs the split to drive
        per-replica hit rates.
        """
        raise NotImplementedError(
            f"cost model {self.name!r} does not expose per-query gather splits"
        )

    def sample_priced(
        self, num_queries: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`sample_with_gathers`, plus per-query gather totals.

        The totals are summed once per *profile* and broadcast through the
        assignment, so pre-pricing a run costs O(num_profiles) adds instead
        of O(num_queries) — and each total is the identical ``hot + cold``
        IEEE-754 sum the engine would compute per query.  Consumes the RNG
        exactly like :meth:`sample` / :meth:`sample_with_gathers`.
        """
        raise NotImplementedError(
            f"cost model {self.name!r} does not expose per-query gather splits"
        )


class HomogeneousCostModel(QueryCostModel):
    """Every query costs exactly the planner's mean estimate.

    ``sample`` never touches the RNG, so adding a cost model to an engine in
    this mode cannot perturb any other random stream of the run.
    """

    name = "homogeneous"

    @property
    def is_homogeneous(self) -> bool:
        return True

    def sample(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        return np.ones(num_queries, dtype=np.float64)


class SkewedCostModel(QueryCostModel):
    """Per-query gather counts and pooling factors from an access-skew distribution.

    Two sources of heterogeneity, both rooted in the data layer's
    distribution:

    * **Gather counts** — each profile draws ``pooling`` lookups from
      ``distribution``; duplicates coalesce (one gather per distinct row per
      query) and distinct rows inside the hottest ``hot_fraction`` of the
      table cost ``hot_cost_fraction`` of a cold gather.
    * **Pooling factors** — multi-hot feature lengths in production
      recommendation traces are heavy-tailed (the same user-activity power
      law that skews the table's accesses), so each profile also draws a
      mean-one log-normal pooling factor whose coefficient of variation is
      ``pooling_spread`` — by default the distribution's locality ``P``, so
      a more skewed table also serves a wider spread of query sizes.

    Together they reproduce the Figure 9 heterogeneity the planner's QPS
    regression is fit over: under high skew, most queries coalesce into
    cheap, hot, short gathers while a tail of long cold-row queries costs
    several times the mean.
    """

    name = "skewed"

    def __init__(
        self,
        distribution: AccessDistribution,
        pooling: int,
        num_profiles: int = 2048,
        hot_fraction: float = DEFAULT_TOP_FRACTION,
        hot_cost_fraction: float = 0.25,
        pooling_spread: float | None = None,
    ) -> None:
        if pooling <= 0:
            raise ValueError("pooling must be positive")
        if num_profiles <= 0:
            raise ValueError("num_profiles must be positive")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= hot_cost_fraction <= 1.0:
            raise ValueError("hot_cost_fraction must be in [0, 1]")
        if pooling_spread is not None and pooling_spread < 0:
            raise ValueError("pooling_spread must be non-negative")
        self._distribution = distribution
        self._pooling = int(pooling)
        self._num_profiles = int(num_profiles)
        self._hot_fraction = float(hot_fraction)
        self._hot_cost_fraction = float(hot_cost_fraction)
        self._pooling_spread = (
            float(pooling_spread)
            if pooling_spread is not None
            else distribution.locality(hot_fraction)
        )
        self._hot_rank_limit = hot_prefix_rows(distribution, row_fraction=hot_fraction)

    @property
    def distribution(self) -> AccessDistribution:
        """The access-skew distribution the gather counts are drawn from."""
        return self._distribution

    @property
    def supports_gather_splits(self) -> bool:
        return True

    @property
    def num_profiles(self) -> int:
        """Size of the pre-sampled query-profile pool."""
        return self._num_profiles

    @property
    def hot_fraction(self) -> float:
        """Fraction of hot-sorted rows forming the hot prefix."""
        return self._hot_fraction

    @property
    def hot_cost_fraction(self) -> float:
        """Cost of a hot-prefix gather relative to a cold DRAM gather."""
        return self._hot_cost_fraction

    @property
    def hot_rank_limit(self) -> int:
        """Rows in the hot prefix (shared ``hot_prefix_rows`` definition)."""
        return self._hot_rank_limit

    @property
    def pooling(self) -> int:
        """Mean lookups per query (the paper's pooling factor)."""
        return self._pooling

    @property
    def pooling_spread(self) -> float:
        """Coefficient of variation of the per-query pooling factors."""
        return self._pooling_spread

    def profile_splits(
        self, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-profile distinct hot and cold gather counts.

        One row of each result is one query profile: ``pooling`` lookups are
        drawn, duplicates coalesce (one gather per distinct row), and each
        distinct row counts as hot or cold by the shared hot-prefix
        definition.  The split is what the serve-time embedding cache needs:
        hot gathers are the cache-admissible ones.
        """
        ranks = self._distribution.sample(self._num_profiles * self._pooling, rng)
        ranks = np.sort(ranks.reshape(self._num_profiles, self._pooling), axis=1)
        # A rank is a distinct gather where it differs from its predecessor.
        distinct = np.ones_like(ranks, dtype=bool)
        distinct[:, 1:] = ranks[:, 1:] != ranks[:, :-1]
        hot = ranks < self._hot_rank_limit
        hot_gathers = np.sum(distinct & hot, axis=1, dtype=np.float64)
        cold_gathers = np.sum(distinct & ~hot, axis=1, dtype=np.float64)
        return hot_gathers, cold_gathers

    def profile_gathers(self, rng: np.random.Generator) -> np.ndarray:
        """Per-profile effective gather counts (before normalisation).

        One row of the result is one query profile's cost in cold-gather
        units: distinct cold rows plus ``hot_cost_fraction`` per distinct hot
        row.
        """
        hot_gathers, cold_gathers = self.profile_splits(rng)
        return cold_gathers + self._hot_cost_fraction * hot_gathers

    def _raw_pool(
        self, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Un-normalised profile pool: (costs, hot, cold) in cold-gather units.

        One draw of the full pool — gather splits then pooling factors — in
        the exact RNG order every sampling path shares.
        """
        hot_gathers, cold_gathers = self.profile_splits(rng)
        costs = cold_gathers + self._hot_cost_fraction * hot_gathers
        if self._pooling_spread > 0:
            # Mean-one log-normal pooling factor: sigma chosen so the factor's
            # coefficient of variation equals pooling_spread.
            sigma = math.sqrt(math.log1p(self._pooling_spread**2))
            pooling_factors = np.exp(
                rng.normal(-0.5 * sigma * sigma, sigma, size=self._num_profiles)
            )
            costs = costs * pooling_factors
        return costs, hot_gathers, cold_gathers

    def _sample_profiles(
        self, num_queries: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray, np.ndarray]:
        """Shared sampling core: (costs, assignment, hot, cold) per profile.

        Consumes the RNG identically for every caller, so multipliers from
        :meth:`sample` and :meth:`sample_with_gathers` are bit-identical for
        the same seed.  ``assignment`` is ``None`` on the degenerate
        every-gather-free path, which returns before drawing it (matching the
        historical stream).
        """
        costs, hot_gathers, cold_gathers = self._raw_pool(rng)
        mean = float(costs.mean())
        if mean <= 0:
            # Every gather free (hot_cost_fraction == 0 and all-hot table).
            return np.ones(self._num_profiles, dtype=np.float64), None, hot_gathers, cold_gathers
        assignment = rng.integers(0, self._num_profiles, size=num_queries)
        return costs / mean, assignment, hot_gathers, cold_gathers

    def sample(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        if num_queries == 0:
            # Nothing to draw: return before any RNG use so an idle tenant
            # leaves the shared cost stream untouched (matching the
            # homogeneous model's guarantee).
            return np.empty(0, dtype=np.float64)
        multipliers, assignment, _, _ = self._sample_profiles(num_queries, rng)
        if assignment is None:
            return np.ones(num_queries, dtype=np.float64)
        return multipliers[assignment]

    def sample_with_gathers(
        self, num_queries: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        empty = np.empty(0, dtype=np.float64)
        if num_queries == 0:
            return empty, empty, empty
        multipliers, assignment, hot, cold = self._sample_profiles(num_queries, rng)
        if assignment is None:
            zeros = np.zeros(num_queries, dtype=np.float64)
            return np.ones(num_queries, dtype=np.float64), zeros, zeros
        return multipliers[assignment], hot[assignment], cold[assignment]

    def sample_priced(
        self, num_queries: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        empty = np.empty(0, dtype=np.float64)
        if num_queries == 0:
            return empty, empty, empty, empty
        multipliers, assignment, hot, cold = self._sample_profiles(num_queries, rng)
        if assignment is None:
            zeros = np.zeros(num_queries, dtype=np.float64)
            ones = np.ones(num_queries, dtype=np.float64)
            return ones, zeros, zeros, zeros
        # Per-profile sums broadcast through the assignment: elementwise
        # (hot + cold)[assignment] == hot[assignment] + cold[assignment],
        # so the totals match a per-query sum bit-for-bit.
        totals = hot + cold
        return (
            multipliers[assignment],
            hot[assignment],
            cold[assignment],
            totals[assignment],
        )


# ---------------------------------------------------------------------------
# Access-skew drift: spec grammar and the drift-aware priced sampler
# ---------------------------------------------------------------------------

_DRIFT_HINT = (
    "expected 'schedule@start[+duration][:key=value,...]' with a schedule from "
    "step, linear, oscillate and a required to=<locality> "
    "(e.g. 'linear@60+300:to=0.2' or 'step@300:to=0.5,from=0.9')"
)


def _drift_number(chunk: str, text: str, kind: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"malformed drift spec {chunk!r}: bad {kind} {text!r}; {_DRIFT_HINT}"
        ) from None


@dataclass(frozen=True)
class DriftSpec:
    """Parsed ``--drift`` spec: a schedule over two locality endpoints.

    The start endpoint defaults to the workload's own access distribution
    (``from_locality is None``); the end endpoint is always a Zipf
    distribution solved for ``to_locality``.  :meth:`build` materialises the
    :class:`~repro.data.distributions.DriftingDistribution` once the table
    size is known.
    """

    schedule: str
    at_s: float
    duration_s: float
    to_locality: float
    from_locality: float | None = None

    def __post_init__(self) -> None:
        if self.schedule not in DRIFT_SCHEDULES:
            known = ", ".join(DRIFT_SCHEDULES)
            raise ValueError(
                f"unknown drift schedule {self.schedule!r}; choose from {known}"
            )
        if self.at_s < 0.0:
            raise ValueError(f"drift start must be non-negative, got {self.at_s}")
        if self.schedule != "step" and self.duration_s <= 0.0:
            raise ValueError(
                f"{self.schedule} drift needs a positive duration, got {self.duration_s}"
            )
        for label, value in (("to", self.to_locality), ("from", self.from_locality)):
            if value is not None and not 0.0 < value <= 1.0:
                raise ValueError(
                    f"drift {label}= locality must be in (0, 1], got {value}"
                )

    def build(self, distribution: AccessDistribution) -> DriftingDistribution:
        """Materialise the drift against a workload's access distribution."""
        num_items = distribution.num_items
        start = (
            distribution
            if self.from_locality is None
            else ZipfDistribution.from_locality(num_items, self.from_locality)
        )
        end = ZipfDistribution.from_locality(num_items, self.to_locality)
        return DriftingDistribution(
            start, end, schedule=self.schedule, at_s=self.at_s, duration_s=self.duration_s
        )


def parse_drift_spec(spec: str) -> DriftSpec:
    """Parse a ``schedule@start[+duration][:key=value,...]`` drift spec.

    The grammar mirrors the fault-script grammar: ``@`` anchors the start
    time, ``+`` an optional duration, and ``:`` introduces comma-separated
    parameters.  ``to=<locality>`` is required; ``from=<locality>`` overrides
    the start endpoint (default: the workload's own distribution).
    """
    chunk = spec.strip()
    if not chunk:
        raise ValueError(f"malformed drift spec {spec!r}: empty spec; {_DRIFT_HINT}")
    head, _, param_text = chunk.partition(":")
    schedule, at_sign, when = head.partition("@")
    schedule = schedule.strip()
    if not at_sign:
        raise ValueError(
            f"malformed drift spec {chunk!r}: missing '@<start>'; {_DRIFT_HINT}"
        )
    when, plus, duration_text = when.partition("+")
    at_s = _drift_number(chunk, when.strip(), "start time")
    duration_s = (
        _drift_number(chunk, duration_text.strip(), "duration") if plus else 0.0
    )
    params: dict[str, str] = {}
    if param_text.strip():
        for pair in param_text.split(","):
            key, eq, value = pair.partition("=")
            if not eq or not key.strip() or not value.strip():
                raise ValueError(
                    f"malformed drift spec {chunk!r}: bad parameter {pair!r}; {_DRIFT_HINT}"
                )
            params[key.strip()] = value.strip()
    if "to" not in params:
        raise ValueError(
            f"malformed drift spec {chunk!r}: missing required to=<locality>; {_DRIFT_HINT}"
        )
    to_locality = _drift_number(chunk, params.pop("to"), "to= locality")
    from_locality = (
        _drift_number(chunk, params.pop("from"), "from= locality")
        if "from" in params
        else None
    )
    if params:
        unknown = ", ".join(sorted(params))
        raise ValueError(
            f"malformed drift spec {chunk!r}: unknown parameter(s) {unknown}; {_DRIFT_HINT}"
        )
    if schedule == "step" and plus:
        raise ValueError(
            f"malformed drift spec {chunk!r}: step takes no duration; {_DRIFT_HINT}"
        )
    try:
        return DriftSpec(
            schedule=schedule,
            at_s=at_s,
            duration_s=duration_s,
            to_locality=to_locality,
            from_locality=from_locality,
        )
    except ValueError as error:
        raise ValueError(f"malformed drift spec {chunk!r}: {error}") from None


def make_drift_model(
    spec: str | DriftSpec | DriftingDistribution | None,
    distribution: AccessDistribution | None = None,
) -> DriftingDistribution | None:
    """Resolve a drift knob into a :class:`DriftingDistribution` (or ``None``).

    Accepts ``None`` / ``"none"`` / ``""`` (drift off), an already-built
    :class:`DriftingDistribution` (passed through), a :class:`DriftSpec`, or
    a spec string.  Building from a spec needs the workload's access
    ``distribution`` for the table size and default start endpoint.
    """
    if spec is None or isinstance(spec, DriftingDistribution):
        return spec
    if isinstance(spec, str):
        if spec.strip().lower() in ("", "none"):
            return None
        spec = parse_drift_spec(spec)
    if distribution is None:
        raise ValueError("building a drift model from a spec needs a distribution")
    return spec.build(distribution)


def validate_drift_spec(spec: str | DriftSpec | DriftingDistribution | None) -> None:
    """Validate a drift knob eagerly (grammar only; no table size needed)."""
    if isinstance(spec, str) and spec.strip().lower() not in ("", "none"):
        parse_drift_spec(spec)


def drift_endpoint_model(
    model: "SkewedCostModel", endpoint: AccessDistribution
) -> "SkewedCostModel":
    """A cost model's twin over a drift endpoint distribution.

    Shares ``pooling``, ``num_profiles``, ``hot_fraction`` and
    ``hot_cost_fraction`` with the start model — equal table sizes then give
    equal ``hot_rank_limit``, so the cache tier's pricing grids stay valid
    for profiles drawn from either endpoint.  ``pooling_spread`` re-derives
    from the endpoint's own locality (a more skewed endpoint also serves a
    wider spread of query sizes).
    """
    if endpoint.num_items != model.distribution.num_items:
        raise ValueError(
            "drift endpoint must cover the same table as the cost model: "
            f"{endpoint.num_items} vs {model.distribution.num_items} rows"
        )
    return SkewedCostModel(
        distribution=endpoint,
        pooling=model.pooling,
        num_profiles=model.num_profiles,
        hot_fraction=model.hot_fraction,
        hot_cost_fraction=model.hot_cost_fraction,
    )


def sample_drifting_priced(
    start_model: "SkewedCostModel",
    end_model: "SkewedCostModel",
    weights: np.ndarray,
    cost_rng: np.random.Generator,
    drift_rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float, float]:
    """Priced per-query costs under access-skew drift.

    ``weights[i]`` is the drift weight at query ``i``'s arrival time: the
    probability its gather set is drawn from the end endpoint's profile pool
    instead of the start endpoint's.  Returns
    ``(multipliers, hot, cold, total, start_mean, end_mean)`` where the pool
    means are in cold-gather units (the multiplier normaliser and, at
    re-plan cutover, the renormaliser).

    RNG contract (the satellite-3 isolation lock): ``cost_rng`` — the
    engine's ``[seed, 2]`` stream — is consumed *exactly* as the drift-free
    :meth:`SkewedCostModel.sample_priced` path consumes it (start pool, then
    per-query assignment), and everything drift-specific (end pool, per-query
    endpoint choice) draws only from ``drift_rng`` (``[seed, 4]``).  A drift
    whose weight is identically zero therefore reproduces the drift-free
    multipliers bit-for-bit.
    """
    weights = np.asarray(weights, dtype=np.float64)
    num_queries = weights.size
    empty = np.empty(0, dtype=np.float64)
    if num_queries == 0:
        # Nothing to draw: leave both streams untouched, like sample().
        return empty, empty, empty, empty, 1.0, 1.0
    costs_a, hot_a, cold_a = start_model._raw_pool(cost_rng)
    start_mean = float(costs_a.mean())
    if start_mean <= 0:
        # Degenerate every-gather-free start pool: mirror the drift-free
        # degenerate path (all-ones multipliers, assignment never drawn)
        # without touching drift_rng.
        zeros = np.zeros(num_queries, dtype=np.float64)
        return np.ones(num_queries, dtype=np.float64), zeros, zeros, zeros, 1.0, 1.0
    assignment = cost_rng.integers(0, start_model.num_profiles, size=num_queries)
    # Normalising the start pool *then* indexing is elementwise-identical to
    # indexing then dividing, so weight-zero queries reproduce the drift-free
    # multipliers bit-for-bit.  The end pool normalises by the *start* mean:
    # a drift toward a costlier distribution raises the mean offered load a
    # stale plan sees, which is the whole point.
    norm_a = costs_a / start_mean
    totals_a = hot_a + cold_a
    costs_b, hot_b, cold_b = end_model._raw_pool(drift_rng)
    end_mean = float(costs_b.mean())
    norm_b = costs_b / start_mean
    totals_b = hot_b + cold_b
    use_end = drift_rng.random(num_queries) < weights
    multipliers = np.where(use_end, norm_b[assignment], norm_a[assignment])
    hot = np.where(use_end, hot_b[assignment], hot_a[assignment])
    cold = np.where(use_end, cold_b[assignment], cold_a[assignment])
    total = np.where(use_end, totals_b[assignment], totals_a[assignment])
    return multipliers, hot, cold, total, start_mean, end_mean


#: Registry of query-cost models by CLI-facing name.
COST_MODELS: dict[str, type[QueryCostModel]] = {
    model.name: model for model in (HomogeneousCostModel, SkewedCostModel)
}


def cost_model_names() -> list[str]:
    """Registered cost-model names, in registration order."""
    return list(COST_MODELS)


def resolve_cost_model_name(name: str) -> str:
    """Validate a cost-model name, raising :class:`ValueError` with the choices."""
    if name not in COST_MODELS:
        known = ", ".join(cost_model_names())
        raise ValueError(f"unknown cost model {name!r}; choose from {known}")
    return name


def make_cost_model(
    model: str | QueryCostModel,
    workload: DLRMConfig | None = None,
    *,
    num_profiles: int | None = None,
    hot_fraction: float | None = None,
    hot_cost_fraction: float | None = None,
    pooling_spread: float | None = None,
) -> QueryCostModel:
    """Resolve a cost-model name against a workload (or pass an instance through).

    ``"homogeneous"`` needs no workload; ``"skewed"`` derives its access
    distribution and pooling factor from ``workload.embedding``.  The keyword
    overrides forward to :class:`SkewedCostModel`'s matching tuning knobs and
    are rejected for models that have none.
    """
    overrides = {
        name: value
        for name, value in (
            ("num_profiles", num_profiles),
            ("hot_fraction", hot_fraction),
            ("hot_cost_fraction", hot_cost_fraction),
            ("pooling_spread", pooling_spread),
        )
        if value is not None
    }
    if isinstance(model, QueryCostModel):
        if overrides:
            raise ValueError(
                "cost-model overrides only apply when building from a name; "
                "pass the knobs to the model's constructor instead"
            )
        return model
    resolve_cost_model_name(model)
    if model == HomogeneousCostModel.name:
        if overrides:
            raise ValueError(
                "the homogeneous cost model has no skew knobs; "
                "use --cost-model skewed to tune "
                + ", ".join(sorted(overrides))
            )
        return HomogeneousCostModel()
    if workload is None:
        raise ValueError("the skewed cost model needs a workload to derive its skew from")
    embedding = workload.embedding
    return SkewedCostModel(
        distribution=embedding.access_distribution(),
        pooling=embedding.pooling,
        **overrides,
    )
