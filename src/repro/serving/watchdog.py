"""Self-healing SLO control plane: tiered watchdog + graceful degradation.

ROADMAP item 5, shaped by SNIPPETS.md's Choi-vs-L2 analysis: a *tiered
hybrid* regression detector over the engine's live latency/availability
series.  Tier 1 is the explainable rule layer — p95/p99 against SLA betas,
an availability floor and a rejection-rate ceiling, each checked every
sample tick with the same strict-breach semantics as the re-planner's
``DriftDetector`` (a series sitting exactly at a threshold never fires).
Tier 2 is the statistical layer: windowed Mann-Whitney U and
Kolmogorov-Smirnov tests comparing the live latency distribution against a
warm baseline window, catching tail-shape shifts (a straggler window that
moves p99 but not the mean) that threshold rules miss.

Breaches climb a degradation ladder instead of letting the tail blow up:

* level 1 — probabilistic load shedding at ``shed`` fraction (admission
  control; voluntary, so it is excluded from the availability signal);
* level 2 — per-query deadlines with timeout events and budgeted retries
  under exponential backoff + jitter (a retry-storm guard caps the live
  retry fraction; retries respect the remaining deadline);
* level 3 — quality fallback: cache-hot-only gathers at a reduced cost
  multiplier, counted as ``degraded`` completions;
* beyond — escalation to the PR-9 re-planner.

Recovery walks the ladder back down one level at a time, but only once
tier 2 reports the live and baseline distributions reconciled.

``--slo`` specs use the fault-script grammar:
``p95@<beta>[:key=value,...]`` — the beta is a multiple of the tenant's
SLA, e.g. ``p95@1.5:p99=2.5,shed=0.1,retries=2``.

Everything here is numpy + stdlib (no scipy): the U statistic uses the
normal approximation with tie correction, the two-sample KS p-value the
asymptotic Kolmogorov series with the Stephens small-sample correction.
The same :func:`detect_shift` runs offline in ``scripts/bench_report.py``
as the distribution-aware CI perf gate.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = [
    "SloPolicy",
    "SloWatchdog",
    "ShiftVerdict",
    "parse_slo_spec",
    "make_slo_policy",
    "validate_slo_spec",
    "mann_whitney_u",
    "ks_2samp",
    "detect_shift",
    "retry_allowed",
    "MAX_LEVEL",
    "MIN_TIER2_SAMPLES",
    "TICK_SAMPLE_CAP",
    "WATCHDOG_SERIES_KEYS",
]

_SLO_HINT = (
    "expected 'p95@<beta>[:key=value,...]' with the beta a multiple of the "
    "SLA and optional keys p99, availability, reject, patience, window, "
    "baseline, alpha, shed, deadline, timeout, retries, backoff, jitter, "
    "storm, recover, escalate, quality "
    "(e.g. 'p95@1.5:p99=2.5,shed=0.1,retries=2')"
)

#: Degradation-ladder ceiling: 1 shed, 2 +deadlines/retries, 3 +fallback.
MAX_LEVEL = 3

#: Below this many samples on either side, tier-2 tests abstain (p = 1.0):
#: the asymptotic p-values are meaningless on a handful of points, and an
#: abstention can never fire a degrade (mirrors the strict-breach rule).
MIN_TIER2_SAMPLES = 8

#: At most this many latencies feed the tier-2 windows per sample tick,
#: taken at a deterministic stride (no RNG) so a hot tick cannot make the
#: watchdog's own bookkeeping the bottleneck.
TICK_SAMPLE_CAP = 512

#: Row order of the per-interval watchdog series in streamed spool chunks.
WATCHDOG_SERIES_KEYS = ("level", "shed", "timeouts", "degraded")


@dataclass(frozen=True)
class SloPolicy:
    """Tier-1 thresholds, tier-2 windows and the degradation-ladder knobs.

    All latency knobs are multiples of the tenant's SLA; every tier-1 rule
    uses strict comparisons, so a signal sitting exactly at its threshold
    never counts as a breach.  ``availability_floor=0`` and
    ``reject_ceiling=1`` disable those rules; ``alpha=0`` disables tier 2.
    """

    #: Interval p95 must exceed ``p95_beta * sla_s`` strictly to breach.
    p95_beta: float = 1.5
    #: Interval p99 must exceed ``p99_beta * sla_s`` strictly to breach.
    p99_beta: float = 2.5
    #: Interval availability (involuntary failures over admitted queries)
    #: must drop strictly below this to breach.
    availability_floor: float = 0.99
    #: Interval rejection rate must exceed this strictly to breach.
    reject_ceiling: float = 0.05
    #: Consecutive breached ticks before the ladder degrades one level.
    patience: int = 2
    #: Live tier-2 window, in sample ticks.
    window: int = 4
    #: Warm baseline window, in (non-idle) sample ticks.
    baseline: int = 4
    #: Tier-2 significance: a shift needs ``min(p_mw, p_ks) < alpha``.
    alpha: float = 0.01
    #: Fraction of arrivals shed at ladder level >= 1.
    shed_fraction: float = 0.1
    #: Per-query hard deadline, as a multiple of the SLA.
    deadline_beta: float = 4.0
    #: Per-attempt timeout, as a multiple of the SLA (<= deadline_beta).
    timeout_beta: float = 2.0
    #: Retry budget per query (0 disables retries).
    retries: int = 2
    #: Base backoff before the first retry; doubles per attempt.
    backoff_s: float = 0.05
    #: Jitter factor: each backoff is stretched by ``1 + jitter * U[0,1)``.
    jitter: float = 0.5
    #: Retry-storm guard: live retries may not reach this fraction of the
    #: live in-flight queries (0 disables retries outright).
    storm: float = 0.25
    #: Consecutive clean *and reconciled* ticks before recovering a level.
    recover_patience: int = 2
    #: Consecutive breached ticks at the top level before escalating to
    #: the re-planner.
    escalate_patience: int = 4
    #: Fallback cost fraction for cost models without gather splits (the
    #: skewed model prices its cache-hot-only gathers exactly instead).
    quality: float = 0.25

    def __post_init__(self) -> None:
        if self.p95_beta <= 0.0:
            raise ValueError(f"p95 beta must be positive, got {self.p95_beta}")
        if self.p99_beta <= 0.0:
            raise ValueError(f"p99 beta must be positive, got {self.p99_beta}")
        if not 0.0 <= self.availability_floor <= 1.0:
            raise ValueError(
                f"availability must be in [0, 1], got {self.availability_floor}"
            )
        if not 0.0 <= self.reject_ceiling <= 1.0:
            raise ValueError(f"reject must be in [0, 1], got {self.reject_ceiling}")
        if self.patience < 1:
            raise ValueError(f"patience must be at least 1, got {self.patience}")
        if self.window < 1:
            raise ValueError(f"window must be at least 1, got {self.window}")
        if self.baseline < 1:
            raise ValueError(f"baseline must be at least 1, got {self.baseline}")
        if not 0.0 <= self.alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {self.alpha}")
        if not 0.0 <= self.shed_fraction <= 1.0:
            raise ValueError(f"shed must be in [0, 1], got {self.shed_fraction}")
        if self.deadline_beta <= 0.0:
            raise ValueError(f"deadline must be positive, got {self.deadline_beta}")
        if self.timeout_beta <= 0.0:
            raise ValueError(f"timeout must be positive, got {self.timeout_beta}")
        if self.timeout_beta > self.deadline_beta:
            raise ValueError(
                f"timeout ({self.timeout_beta}) must not exceed the deadline "
                f"({self.deadline_beta})"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries}")
        if self.backoff_s < 0.0:
            raise ValueError(f"backoff must be non-negative, got {self.backoff_s}")
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")
        if not 0.0 <= self.storm <= 1.0:
            raise ValueError(f"storm must be in [0, 1], got {self.storm}")
        if self.recover_patience < 1:
            raise ValueError(
                f"recover must be at least 1, got {self.recover_patience}"
            )
        if self.escalate_patience < 1:
            raise ValueError(
                f"escalate must be at least 1, got {self.escalate_patience}"
            )
        if not 0.0 <= self.quality <= 1.0:
            raise ValueError(f"quality must be in [0, 1], got {self.quality}")


def _slo_number(chunk: str, text: str, kind: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"malformed slo spec {chunk!r}: bad {kind} {text!r}; {_SLO_HINT}"
        ) from None


def parse_slo_spec(spec: str) -> SloPolicy:
    """Parse a ``p95@<beta>[:key=value,...]`` SLO spec."""
    chunk = spec.strip()
    if not chunk:
        raise ValueError(f"malformed slo spec {spec!r}: empty spec; {_SLO_HINT}")
    head, _, param_text = chunk.partition(":")
    kind, at_sign, beta_text = head.partition("@")
    kind = kind.strip()
    if kind != "p95":
        raise ValueError(
            f"unknown slo rule {kind!r}; the tier-1 anchor is 'p95' ({_SLO_HINT})"
        )
    if not at_sign:
        raise ValueError(
            f"malformed slo spec {chunk!r}: missing '@<beta>'; {_SLO_HINT}"
        )
    p95_beta = _slo_number(chunk, beta_text.strip(), "beta")
    values = {
        "p99": 2.5,
        "availability": 0.99,
        "reject": 0.05,
        "patience": 2.0,
        "window": 4.0,
        "baseline": 4.0,
        "alpha": 0.01,
        "shed": 0.1,
        "deadline": 4.0,
        "timeout": 2.0,
        "retries": 2.0,
        "backoff": 0.05,
        "jitter": 0.5,
        "storm": 0.25,
        "recover": 2.0,
        "escalate": 4.0,
        "quality": 0.25,
    }
    if param_text.strip():
        for pair in param_text.split(","):
            key, eq, value = pair.partition("=")
            key = key.strip()
            if not eq or not key or not value.strip():
                raise ValueError(
                    f"malformed slo spec {chunk!r}: bad parameter {pair!r}; "
                    f"{_SLO_HINT}"
                )
            if key not in values:
                known = ", ".join(sorted(values))
                raise ValueError(
                    f"malformed slo spec {chunk!r}: unknown parameter {key!r} "
                    f"(choose from {known}); {_SLO_HINT}"
                )
            values[key] = _slo_number(chunk, value.strip(), key)
    try:
        return SloPolicy(
            p95_beta=p95_beta,
            p99_beta=values["p99"],
            availability_floor=values["availability"],
            reject_ceiling=values["reject"],
            patience=int(values["patience"]),
            window=int(values["window"]),
            baseline=int(values["baseline"]),
            alpha=values["alpha"],
            shed_fraction=values["shed"],
            deadline_beta=values["deadline"],
            timeout_beta=values["timeout"],
            retries=int(values["retries"]),
            backoff_s=values["backoff"],
            jitter=values["jitter"],
            storm=values["storm"],
            recover_patience=int(values["recover"]),
            escalate_patience=int(values["escalate"]),
            quality=values["quality"],
        )
    except ValueError as error:
        raise ValueError(f"malformed slo spec {chunk!r}: {error}") from None


def make_slo_policy(spec: str | SloPolicy | None) -> SloPolicy | None:
    """Resolve an SLO knob: ``None``/``"none"`` off, instance or spec string."""
    if spec is None or isinstance(spec, SloPolicy):
        return spec
    if spec.strip().lower() in ("", "none"):
        return None
    return parse_slo_spec(spec)


def validate_slo_spec(spec: str | SloPolicy | None) -> None:
    """Validate an SLO knob eagerly, raising the one-line grammar error."""
    make_slo_policy(spec)


# ----------------------------------------------------------------------
# Tier-2 distribution tests (numpy + stdlib; no scipy dependency)
# ----------------------------------------------------------------------
def mann_whitney_u(
    a: np.ndarray, b: np.ndarray, alternative: str = "greater"
) -> tuple[float, float]:
    """Mann-Whitney U of ``a`` against ``b``: ``(U1, p)``.

    Normal approximation with tie correction and continuity correction.
    ``alternative="greater"`` tests whether ``a`` is stochastically greater
    than ``b`` (one-sided); ``"two-sided"`` tests any shift.  Degenerate
    inputs (either side empty, or all values tied) return ``p = 1.0``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n1, n2 = a.size, b.size
    if n1 == 0 or n2 == 0:
        return 0.0, 1.0
    combined = np.concatenate([a, b])
    _, inverse, counts = np.unique(combined, return_inverse=True, return_counts=True)
    # Average rank of each unique value = cumulative count minus half its
    # tie-run (1-based midrank), broadcast back through the inverse map.
    avg_ranks = np.cumsum(counts) - (counts - 1) / 2.0
    ranks = avg_ranks[inverse]
    u1 = float(np.sum(ranks[:n1])) - n1 * (n1 + 1) / 2.0
    n = n1 + n2
    mean = n1 * n2 / 2.0
    tie_term = float(np.sum(counts.astype(np.float64) ** 3 - counts))
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0.0:
        return u1, 1.0
    sigma = math.sqrt(variance)
    if alternative == "greater":
        z = (u1 - mean - 0.5) / sigma
        p = 0.5 * math.erfc(z / math.sqrt(2.0))
    elif alternative == "two-sided":
        z = max(abs(u1 - mean) - 0.5, 0.0) / sigma
        p = math.erfc(z / math.sqrt(2.0))
    else:
        raise ValueError(f"unknown alternative {alternative!r}")
    return u1, min(max(p, 0.0), 1.0)


def ks_2samp(
    a: np.ndarray, b: np.ndarray, alternative: str = "greater"
) -> tuple[float, float]:
    """Two-sample Kolmogorov-Smirnov of ``a`` against ``b``: ``(D, p)``.

    Asymptotic p-value with the Stephens small-sample correction
    (``en + 0.12 + 0.11/en``).  ``alternative="greater"`` tests whether
    ``a`` is stochastically greater than ``b`` — i.e. its empirical CDF
    runs *below* ``b``'s — via the one-sided statistic ``D+``.
    """
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    n1, n2 = a.size, b.size
    if n1 == 0 or n2 == 0:
        return 0.0, 1.0
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / n1
    cdf_b = np.searchsorted(b, grid, side="right") / n2
    if alternative == "greater":
        d = max(float(np.max(cdf_b - cdf_a)), 0.0)
    elif alternative == "two-sided":
        d = float(np.max(np.abs(cdf_a - cdf_b)))
    else:
        raise ValueError(f"unknown alternative {alternative!r}")
    en = math.sqrt(n1 * n2 / (n1 + n2))
    arg = (en + 0.12 + 0.11 / en) * d
    if alternative == "greater":
        p = math.exp(-2.0 * arg * arg)
    else:
        p = 2.0 * sum(
            (-1.0) ** (k - 1) * math.exp(-2.0 * (k * arg) ** 2) for k in range(1, 101)
        )
    return d, min(max(p, 0.0), 1.0)


@dataclass(frozen=True)
class ShiftVerdict:
    """One tier-2 comparison: did the live window shift off the baseline?"""

    shifted: bool
    mw_p: float
    ks_p: float
    samples: tuple[int, int]


def detect_shift(
    live: np.ndarray,
    baseline: np.ndarray,
    alpha: float = 0.01,
    min_samples: int = MIN_TIER2_SAMPLES,
    alternative: str = "greater",
) -> ShiftVerdict:
    """Tier-2 verdict: is ``live`` stochastically worse than ``baseline``?

    Runs both tests and flags a shift when *either* rejects at ``alpha``
    (strictly: ``p < alpha``, so ``alpha = 0`` never flags).  With fewer
    than ``min_samples`` on either side the tests abstain (``p = 1.0``) —
    the minimum-window contract the boundary tests lock.
    """
    live = np.asarray(live, dtype=np.float64)
    baseline = np.asarray(baseline, dtype=np.float64)
    sizes = (int(live.size), int(baseline.size))
    if min(sizes) < min_samples:
        return ShiftVerdict(False, 1.0, 1.0, sizes)
    _, mw_p = mann_whitney_u(live, baseline, alternative=alternative)
    _, ks_p = ks_2samp(live, baseline, alternative=alternative)
    return ShiftVerdict(min(mw_p, ks_p) < alpha, mw_p, ks_p, sizes)


def retry_allowed(retries_live: int, inflight_live: int, storm: float) -> bool:
    """Retry-storm guard: may one more retry launch right now?

    The cap is ``max(1, storm * inflight_live)`` — at least one retry may
    always be live when the guard is enabled, and a retry exactly *at* the
    cap never launches (strict ``<``, mirroring the tier-1 rules).
    ``storm <= 0`` disables retries outright.
    """
    if storm <= 0.0:
        return False
    cap = max(1.0, storm * float(inflight_live))
    return float(retries_live) < cap


def _cap_tick(latencies_s: list[float]) -> np.ndarray:
    """One tick's tier-2 contribution, strided down to ``TICK_SAMPLE_CAP``."""
    tick = np.asarray(latencies_s, dtype=np.float64)
    if tick.size > TICK_SAMPLE_CAP:
        # Deterministic even-stride thinning; no RNG, so a watchdog that
        # never actuates still never perturbs any random stream.
        indices = np.linspace(0, tick.size - 1, TICK_SAMPLE_CAP).astype(np.int64)
        tick = tick[indices]
    return tick


class SloWatchdog:
    """Per-tenant ladder state machine fed one observation per sample tick.

    :meth:`observe` takes the interval's end-to-end latencies, availability
    and rejection rate, updates both detection tiers, and returns the
    actions the engine must apply as typed WATCHDOG heap events: at most
    one of ``("degrade", level)``, ``("recover", level)``, ``("escalate",)``.

    The watchdog itself draws no randomness — only the engine's shedding
    decisions and retry jitter touch the dedicated ``[seed, 5]`` stream.
    """

    def __init__(self, policy: SloPolicy, sla_s: float) -> None:
        if sla_s <= 0.0:
            raise ValueError(f"sla_s must be positive, got {sla_s}")
        self.policy = policy
        self.sla_s = float(sla_s)
        self.level = 0
        self.tier1_breaches = 0
        self.tier2_flags = 0
        self.escalations = 0
        self.recoveries = 0
        #: Human-readable rule breaches of the last tick (explainability).
        self.last_breaches: list[str] = []
        self.last_verdict: ShiftVerdict | None = None
        self._streak = 0
        self._clean_streak = 0
        self._escalate_streak = 0
        self._baseline_ticks: list[np.ndarray] = []
        self._baseline_count = 0
        self._baseline: np.ndarray | None = None
        self._live: deque[np.ndarray] = deque(maxlen=policy.window)

    @property
    def baseline_warm(self) -> bool:
        """Whether the warm baseline window is fully collected."""
        return self._baseline is not None

    def _tier1(
        self, tick: np.ndarray, availability: float, reject_rate: float
    ) -> list[str]:
        policy = self.policy
        sla = self.sla_s
        breaches: list[str] = []
        if tick.size:
            p95 = float(np.percentile(tick, 95))
            if p95 > policy.p95_beta * sla:
                breaches.append(
                    f"p95 {p95 * 1e3:.0f}ms > {policy.p95_beta:g}x SLA"
                )
            p99 = float(np.percentile(tick, 99))
            if p99 > policy.p99_beta * sla:
                breaches.append(
                    f"p99 {p99 * 1e3:.0f}ms > {policy.p99_beta:g}x SLA"
                )
        if availability < policy.availability_floor:
            breaches.append(
                f"availability {availability:.3f} < {policy.availability_floor:g}"
            )
        if reject_rate > policy.reject_ceiling:
            breaches.append(
                f"reject rate {reject_rate:.3f} > {policy.reject_ceiling:g}"
            )
        return breaches

    def _tier2(self, tick: np.ndarray) -> bool:
        policy = self.policy
        if self._baseline is None:
            # Still warming the baseline: idle ticks do not count toward it
            # (an empty baseline would make every later window a "shift").
            if tick.size:
                self._baseline_ticks.append(tick)
                self._baseline_count += 1
                if self._baseline_count >= policy.baseline:
                    self._baseline = np.concatenate(self._baseline_ticks)
                    self._baseline_ticks = []
            self.last_verdict = None
            return False
        if tick.size:
            self._live.append(tick)
        if not self._live:
            self.last_verdict = None
            return False
        live = np.concatenate(list(self._live))
        verdict = detect_shift(live, self._baseline, alpha=policy.alpha)
        self.last_verdict = verdict
        return verdict.shifted

    def observe(
        self,
        now: float,
        latencies_s: list[float],
        availability: float,
        reject_rate: float,
    ) -> list[tuple]:
        """Advance both tiers one tick; return the ladder actions (if any)."""
        policy = self.policy
        tick = _cap_tick(latencies_s)
        breaches = self._tier1(tick, availability, reject_rate)
        self.last_breaches = breaches
        tier1 = bool(breaches)
        if tier1:
            self.tier1_breaches += 1
        tier2 = self._tier2(tick)
        if tier2:
            self.tier2_flags += 1
        actions: list[tuple] = []
        if tier1 or tier2:
            self._clean_streak = 0
            self._streak += 1
            if self.level >= MAX_LEVEL:
                self._escalate_streak += 1
                if self._escalate_streak >= policy.escalate_patience:
                    self._escalate_streak = 0
                    self.escalations += 1
                    actions.append(("escalate",))
            elif self._streak >= policy.patience:
                self._streak = 0
                self.level += 1
                actions.append(("degrade", self.level))
        else:
            # A clean tick is also a *reconciled* one: tier 2 just reported
            # no live/baseline shift (or abstained for lack of signal).
            self._streak = 0
            self._escalate_streak = 0
            if self.level > 0:
                self._clean_streak += 1
                if self._clean_streak >= policy.recover_patience:
                    self._clean_streak = 0
                    self.level -= 1
                    self.recoveries += 1
                    actions.append(("recover", self.level))
            else:
                self._clean_streak = 0
        return actions
