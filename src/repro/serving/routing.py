"""Pluggable per-deployment routing policies for the serving engine.

Each policy answers one question: given the replica servers of a deployment
and the current simulation time, which replica should serve the next query?
Policies are stateful (round-robin cursors, in-flight counters, private RNG)
and are reset by the engine at the start of every run, so one policy instance
can be reused across runs deterministically.

The selection mechanics are shared with :mod:`repro.cluster.loadbalancer`
(the generic Linkerd stand-in): the policies here adapt those balancers to
the :class:`~repro.serving.replica_server.ReplicaServer` queue model, adding
readiness filtering and the engine's tie-breaking conventions.

Policies receive an optional *cost hint* — the query's mean service seconds
on the deployment plus its sampled cost multiplier — so cost-aware policies
can weigh expensive queries differently from cheap ones.  Policies that do
not care simply ignore the hint.

Available policies (see :data:`ROUTING_POLICIES`):

``least-work``
    Route to the replica whose queue drains first, preferring ready replicas
    but falling back to still-starting ones when nothing is ready.  This is
    the historical simulator behaviour and the default.
``round-robin``
    Cycle through the ready replicas (falling back to all replicas).
``power-of-two``
    Sample two random replicas and keep the one with less pending work.
``ready-only``
    Strict variant of least-work that refuses to queue on replicas that have
    not finished starting; with no ready replica the query is dropped and
    counted as a full SLA violation.
``least-outstanding``
    Route to the replica with the fewest in-flight queries (completion events
    feed the counters), breaking ties by pending work.
``cost-weighted``
    Batch- and cost-aware least-work: route to the replica with the earliest
    *predicted completion* for this specific query, using the cost hint and
    each replica's forming batch (a replica with a joinable batch finishes an
    extra query earlier than its queue-drain time suggests).
``recovery-aware``
    Least-work with a cold-replica penalty: a replica that (re)joined the
    pool within the warm-up window looks ``warmup`` seconds busier than its
    queue says, so traffic shifts back onto recently-recovered replicas
    gradually instead of stampeding them while their caches are cold.

Every policy excludes dead and draining replicas: a replica killed or
cordoned by the fault layer (:mod:`repro.serving.faults`) never receives new
traffic, even when the selection happens in the same event-loop step as the
failure.

Two selection paths
-------------------

Each policy exposes the historical *scalar* path — :meth:`RoutingPolicy.select`
over a list of replica servers — and a *vectorized* path,
:meth:`RoutingPolicy.select_index` over a :class:`ReplicaPool`: per-deployment
numpy state arrays (queue-drain times, readiness, availability mask) kept in
sync by the engine with dirty-flag invalidation, so the hot policies pick
replicas via an ``argmin`` over arrays instead of a Python loop.  The two
paths are bit-exact: identical pools, identical tie-breaking (first replica in
creation order) and identical RNG consumption, locked by the equivalence
suite in ``tests/serving/test_vectorized_equivalence.py``.  Policies that do
not override the vectorized path (``least-outstanding``) transparently fall
back to their scalar implementation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.loadbalancer import (
    LeastOutstandingBalancer,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
)
from repro.serving.replica_server import ReplicaServer

__all__ = [
    "ReplicaPool",
    "RoutingPolicy",
    "LeastWorkPolicy",
    "RoundRobinPolicy",
    "PowerOfTwoPolicy",
    "ReadyOnlyPolicy",
    "LeastOutstandingPolicy",
    "CostWeightedPolicy",
    "RecoveryAwarePolicy",
    "ROUTING_POLICIES",
    "make_routing_policy",
    "routing_policy_names",
    "resolve_routing_names",
]


def _queue_drain_time(server: ReplicaServer) -> float:
    """When a query submitted now would start service on ``server``."""
    return max(server.busy_until, server.ready_at)


def _ready_pool(
    servers: Sequence[ReplicaServer], now: float
) -> Sequence[ReplicaServer]:
    """Routable replicas: available ones, else still-starting live ones.

    Preference order mirrors the historical behaviour — ready replicas first,
    falling back to replicas that have not finished starting — but dead and
    draining replicas are excluded outright: an empty result means every
    replica is gone and the query must be rejected.
    """
    ready = [s for s in servers if s.is_available(now)]
    if ready:
        return ready
    return [s for s in servers if not s.failed and not s.draining]


class ReplicaPool:
    """Vectorized routing state of one deployment's replica servers.

    The pool mirrors a deployment's ``name -> ReplicaServer`` dict (insertion
    order, i.e. replica creation order) into parallel numpy arrays so routing
    policies can rank every replica with one array expression:

    * ``busy`` — each replica's queue-drain time.  ``ReplicaServer``
      guarantees ``busy_until >= ready_at`` from construction onward, so this
      single array *is* the least-work key ``max(busy_until, ready_at)``;
    * ``ready`` — each replica's ``ready_at``;
    * ``blocked`` — replicas that are failed or draining (never routable).

    The arrays are rebuilt lazily: the engine calls :meth:`invalidate` on any
    membership or flag change (reconcile adds/removes, crashes, drains) and
    :meth:`note_submit` after every accepted query, so between changes a
    selection costs one argmin rather than a Python pass over the servers.

    ``refresh`` also caches two fast-path facts: whether any replica is
    blocked, and the latest ``ready_at`` — once ``now`` passes it on an
    unblocked pool, every replica is routable and policies skip the masking
    entirely.
    """

    __slots__ = (
        "_source",
        "_dirty",
        "servers",
        "busy",
        "ready",
        "blocked",
        "size",
        "index_of",
        "has_blocked",
        "ready_threshold",
        "single_batch",
        "has_caches",
        "fill_rows",
        "cache_capacity",
        "cache_inv_capacity",
        "cache_warm",
    )

    def __init__(self, source: dict[str, ReplicaServer]) -> None:
        self._source = source
        self.servers: list[ReplicaServer] = []
        self.busy = np.empty(0, dtype=np.float64)
        self.ready = np.empty(0, dtype=np.float64)
        self.blocked = np.empty(0, dtype=bool)
        self.size = 0
        self.index_of: dict[str, int] = {}
        self.has_blocked = False
        self.ready_threshold = 0.0
        self.single_batch = True
        self.has_caches = False
        # Array-backed cache state (``None`` on cache-less pools): one fill
        # value per replica, plus the shared spec's capacity and its cached
        # reciprocal.  The scalar ``ReplicaCache`` objects stay the reference
        # implementation — ``_rebuild`` writes the fills back to them before
        # re-mirroring, so membership changes round-trip fills exactly.
        self.fill_rows: list[float] | None = None
        self.cache_capacity = 0.0
        self.cache_inv_capacity = 0.0
        # True only while *every* mirrored fill is pinned at the capacity.
        # Fills are monotonic between invalidations (admission only adds
        # rows), so once set the flag stays valid until ``reset_fills`` or a
        # membership change; the engine's cached hot path uses it to skip
        # the per-query fill read entirely in the steady state.
        self.cache_warm = False
        self._dirty = True

    def invalidate(self) -> None:
        """Mark the arrays stale (membership or failed/draining flag change)."""
        self._dirty = True

    def refresh(self) -> "ReplicaPool":
        """Rebuild the arrays from the source dict if they are stale."""
        if self._dirty:
            self._rebuild()
        return self

    def _rebuild(self) -> None:
        # Write the fill array back to the (old) servers' caches first, so a
        # membership change never loses fills served since the last rebuild:
        # survivors reload their exact values below, departed replicas keep
        # theirs for post-run inspection, and fresh replicas mirror in cold.
        self.flush_fills()
        servers = list(self._source.values())
        self.servers = servers
        size = len(servers)
        self.size = size
        busy = np.empty(size, dtype=np.float64)
        ready = np.empty(size, dtype=np.float64)
        blocked = np.empty(size, dtype=bool)
        single_batch = True
        has_caches = False
        model = None
        for index, server in enumerate(servers):
            busy[index] = server.busy_until
            ready[index] = server.ready_at
            blocked[index] = server.failed or server.draining
            if server.max_batch != 1:
                single_batch = False
            if server.cache is not None:
                has_caches = True
            if index == 0:
                model = server.batch_model
            elif server.batch_model is not model:
                single_batch = False
        self.busy = busy
        self.ready = ready
        self.blocked = blocked
        self.index_of = {server.name: index for index, server in enumerate(servers)}
        self.has_blocked = bool(blocked.any())
        if size and not self.has_blocked:
            self.ready_threshold = float(ready.max())
        else:
            self.ready_threshold = np.inf
        # Cost-weighted routing vectorizes only the uniform single-query-batch
        # configuration (every replica max_batch == 1, one shared model): the
        # unit-batch service time is then one shared scalar.
        self.single_batch = single_batch
        # Cached lanes drive the recovery-aware cold penalty off actual cache
        # fill; the flag routes those pools around the time-window fast path.
        self.has_caches = has_caches
        if has_caches:
            # A plain Python list, not a numpy array: the engine's cached hot
            # path reads and writes one scalar fill per query, and float list
            # indexing is several times cheaper than numpy scalar boxing.
            # The recovery-aware policy (which wants the whole vector at
            # once) converts with ``np.asarray`` at its call site.
            fills = [0.0] * size
            spec = None
            for index, server in enumerate(servers):
                cache = server.cache
                if cache is not None:
                    fills[index] = cache.fill_rows
                    if spec is None:
                        spec = cache.spec
            self.fill_rows = fills
            self.cache_capacity = float(spec.capacity_eff)
            self.cache_inv_capacity = spec.inv_capacity_eff
            self.cache_warm = bool(size and min(fills) >= self.cache_capacity)
        else:
            self.fill_rows = None
            self.cache_warm = False
        self._dirty = False

    def note_submit(self, index: int, busy_until: float) -> None:
        """Record a replica's new queue-drain time after an accepted query."""
        self.busy[index] = busy_until

    def flush_fills(self) -> None:
        """Write the fill array back into the mirrored replicas' caches.

        No-op on cache-less pools (and in the scalar engine path, where the
        array is never built and the ``ReplicaCache`` objects stay
        authoritative throughout).
        """
        fills = self.fill_rows
        if fills is None:
            return
        for index, server in enumerate(self.servers):
            cache = server.cache
            if cache is not None:
                cache.fill_rows = fills[index]

    def reset_fills(self) -> None:
        """Drop every mirrored fill to zero (cache invalidation)."""
        if self.fill_rows is not None:
            self.fill_rows = [0.0] * self.size
            self.cache_warm = False

    def cache_serve(self, index: int, hot_gathers: float, cold_gathers: float) -> float:
        """Serve one query's gathers through the indexed replica's cache.

        Syncs the array entry through the scalar :class:`ReplicaCache`
        reference (read-modify-write), so the rare paths that use it — crash
        requeues repricing in-flight queries — admit rows with the exact same
        rule as the engine's inline hot path and the scalar engine.
        """
        cache = self.servers[index].cache
        if cache is None:
            return 0.0
        fills = self.fill_rows
        if fills is not None:
            cache.fill_rows = fills[index]
        rate = cache.serve(hot_gathers, cold_gathers)
        if fills is not None:
            fills[index] = cache.fill_rows
            if (
                not self.cache_warm
                and cache.fill_rows >= self.cache_capacity
                and min(fills) >= self.cache_capacity
            ):
                self.cache_warm = True
        return rate

    def all_ready(self, now: float) -> bool:
        """Fast-path test: every replica routable and past its ready time."""
        return now >= self.ready_threshold

    def routable_mask(self, now: float) -> np.ndarray | None:
        """Boolean mask of the scalar path's ``_ready_pool`` over the arrays.

        Available replicas first; if none, live-but-starting replicas;
        ``None`` when nothing is routable (the query must be rejected).
        """
        ready_now = self.ready <= now
        if self.has_blocked:
            live = ~self.blocked
            available = ready_now & live
        else:
            live = None
            available = ready_now
        if available.any():
            return available
        if live is None:
            # Nothing blocked, nothing ready: every replica is still starting.
            return np.ones(self.size, dtype=bool) if self.size else None
        if live.any():
            return live
        return None


def _masked_argmin(keys: np.ndarray, mask: np.ndarray) -> int:
    """Index of the first minimal key among the masked entries."""
    return int(np.where(mask, keys, np.inf).argmin())


class RoutingPolicy:
    """Base class for per-deployment replica selection."""

    #: Registry name of the policy.
    name: str = ""
    #: Whether the engine must schedule completion events for this policy.
    needs_completion_events: bool = False

    def reset(self, rng: np.random.Generator) -> None:
        """Clear per-run state; called by the engine before each run."""

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        """Pick the serving replica, or ``None`` to drop the query.

        ``cost``, when given, is the query's cost hint: ``(service_s,
        multiplier)`` — the deployment's mean per-query service seconds and
        this query's sampled cost multiplier.  Policies may ignore it.
        """
        raise NotImplementedError

    def select_index(
        self,
        deployment_name: str,
        pool: ReplicaPool,
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> int | None:
        """Vectorized selection: the chosen replica's pool index, or ``None``.

        The default implementation delegates to the scalar :meth:`select`
        over the pool's server list, so policies without a vectorized path
        behave identically on both engine code paths.
        """
        pool.refresh()
        server = self.select(deployment_name, pool.servers, now, cost)
        if server is None:
            return None
        return pool.index_of[server.name]

    def on_submit(self, deployment_name: str, server: ReplicaServer) -> None:
        """Notification that a query was enqueued on ``server``."""

    def on_complete(self, deployment_name: str, server_name: str) -> None:
        """Notification that a query finished on the named replica."""


class LeastWorkPolicy(RoutingPolicy):
    """Route to the replica whose queue drains first (the seed behaviour)."""

    name = "least-work"

    def __init__(self) -> None:
        self._balancer = LeastOutstandingBalancer(_queue_drain_time)

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        pool = _ready_pool(servers, now)
        if not pool:
            return None
        return self._balancer.pick(deployment_name, pool)

    def select_index(
        self,
        deployment_name: str,
        pool: ReplicaPool,
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> int | None:
        # The engine's default policy: one call per query per deployment, so
        # refresh() and all_ready() are inlined (identical logic, two fewer
        # method calls on the hottest path in the package).
        if pool._dirty:
            pool._rebuild()
        if not pool.size:
            return None
        if now >= pool.ready_threshold:
            return int(pool.busy.argmin())
        # Masked path, fused: one np.where + argmin instead of building the
        # routable mask, reducing it with any(), and masking again.  A finite
        # key at the winner proves some replica was routable; the chosen
        # index is identical to ``_masked_argmin(busy, routable_mask(now))``
        # because both pick the first minimal finite key in pool order.
        available = pool.ready <= now
        if pool.has_blocked:
            available &= ~pool.blocked
        keys = np.where(available, pool.busy, np.inf)
        best = int(keys.argmin())
        if keys[best] != np.inf:
            return best
        mask = pool.routable_mask(now)
        if mask is None:
            return None
        return _masked_argmin(pool.busy, mask)


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through ready replicas regardless of their load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._balancer = RoundRobinBalancer()

    def reset(self, rng: np.random.Generator) -> None:
        self._balancer.reset()

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        pool = _ready_pool(servers, now)
        if not pool:
            return None
        return self._balancer.pick(deployment_name, pool)

    def select_index(
        self,
        deployment_name: str,
        pool: ReplicaPool,
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> int | None:
        pool.refresh()
        if not pool.size:
            return None
        if pool.all_ready(now):
            return self._balancer.pick_index(deployment_name, pool.size)
        mask = pool.routable_mask(now)
        if mask is None:
            return None
        candidates = np.flatnonzero(mask)
        return int(candidates[self._balancer.pick_index(deployment_name, candidates.size)])


class PowerOfTwoPolicy(RoutingPolicy):
    """Sample two random replicas, keep the one with less pending work."""

    name = "power-of-two"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._balancer = PowerOfTwoBalancer(_queue_drain_time, rng=rng)

    def reset(self, rng: np.random.Generator) -> None:
        self._balancer.reset(rng)

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        pool = _ready_pool(servers, now)
        if not pool:
            return None
        return self._balancer.pick(deployment_name, pool)

    def select_index(
        self,
        deployment_name: str,
        pool: ReplicaPool,
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> int | None:
        pool.refresh()
        if not pool.size:
            return None
        busy = pool.busy
        if pool.all_ready(now):
            if pool.size == 1:
                return 0
            first, second = self._balancer.pick_pair(pool.size)
            return first if busy[first] <= busy[second] else second
        mask = pool.routable_mask(now)
        if mask is None:
            return None
        candidates = np.flatnonzero(mask)
        if candidates.size == 1:
            return int(candidates[0])
        first, second = self._balancer.pick_pair(candidates.size)
        a, b = int(candidates[first]), int(candidates[second])
        return a if busy[a] <= busy[b] else b


class ReadyOnlyPolicy(RoutingPolicy):
    """Least-work over ready replicas only; drop if nothing is ready."""

    name = "ready-only"

    def __init__(self) -> None:
        self._balancer = LeastOutstandingBalancer(_queue_drain_time)

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        ready = [s for s in servers if s.is_available(now)]
        if not ready:
            return None
        return self._balancer.pick(deployment_name, ready)

    def select_index(
        self,
        deployment_name: str,
        pool: ReplicaPool,
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> int | None:
        pool.refresh()
        if not pool.size:
            return None
        if pool.all_ready(now):
            return int(pool.busy.argmin())
        available = pool.ready <= now
        if pool.has_blocked:
            available &= ~pool.blocked
        if not available.any():
            return None
        return _masked_argmin(pool.busy, available)


class LeastOutstandingPolicy(RoutingPolicy):
    """Route to the replica with the fewest in-flight queries.

    In-flight counts are maintained from the engine's submit/completion
    events; ties break toward less pending work, then toward the replica
    listed first (deterministic given the engine's stable server ordering).
    """

    name = "least-outstanding"
    needs_completion_events = True

    def __init__(self) -> None:
        self._in_flight: dict[tuple[str, str], int] = {}
        self._deployment = ""
        self._balancer = LeastOutstandingBalancer(self._load_key)

    def reset(self, rng: np.random.Generator) -> None:
        self._in_flight.clear()

    def _load_key(self, server: ReplicaServer) -> tuple[float, float]:
        count = self._in_flight.get((self._deployment, server.name), 0)
        return (float(count), _queue_drain_time(server))

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        pool = _ready_pool(servers, now)
        if not pool:
            return None
        self._deployment = deployment_name
        return self._balancer.pick(deployment_name, pool)

    def on_submit(self, deployment_name: str, server: ReplicaServer) -> None:
        key = (deployment_name, server.name)
        self._in_flight[key] = self._in_flight.get(key, 0) + 1

    def on_complete(self, deployment_name: str, server_name: str) -> None:
        key = (deployment_name, server_name)
        remaining = self._in_flight.get(key, 0) - 1
        if remaining > 0:
            self._in_flight[key] = remaining
        else:
            self._in_flight.pop(key, None)


class CostWeightedPolicy(RoutingPolicy):
    """Route to the replica with the earliest predicted completion.

    Unlike least-work — which orders replicas by queue-drain time regardless
    of what is being routed — this policy asks every ready replica what *this
    query* would cost there, via
    :meth:`~repro.serving.replica_server.ReplicaServer.predicted_completion`:
    the prediction folds in the query's cost hint and the replica's forming
    batch, so a cheap query prefers a replica it can batch into while an
    expensive one prefers the emptiest queue.  Without a cost hint it
    degenerates to least-work ordering.  Ties resolve to the replica listed
    first (deterministic given the engine's stable server ordering).
    """

    name = "cost-weighted"

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        pool = _ready_pool(servers, now)
        if not pool:
            return None
        if cost is None:
            return min(pool, key=_queue_drain_time)
        service_s, multiplier = cost
        return min(
            pool, key=lambda s: s.predicted_completion(now, service_s, multiplier)
        )

    def select_index(
        self,
        deployment_name: str,
        pool: ReplicaPool,
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> int | None:
        pool.refresh()
        if not pool.size:
            return None
        if cost is None or not pool.single_batch:
            # Batch-forming replicas need the per-server prediction (batch
            # join state is replica-local); fall back to the scalar ranking
            # over the routable subset.
            mask = pool.routable_mask(now)
            if mask is None:
                return None
            servers = pool.servers
            candidates = np.flatnonzero(mask)
            if cost is None:
                key = _queue_drain_time
            else:
                service_s, multiplier = cost

                def key(server: ReplicaServer) -> float:
                    return server.predicted_completion(now, service_s, multiplier)

            return int(min((int(i) for i in candidates), key=lambda i: key(servers[i])))
        # Uniform single-query batches: the prediction decomposes into
        # max(arrival, busy_until) plus one shared unit-batch service time,
        # so the whole pool ranks with one array expression.
        service_s, multiplier = cost
        unit = pool.servers[0].unit_service(service_s, multiplier)
        keys = np.maximum(pool.busy, now) + unit
        if pool.all_ready(now):
            return int(keys.argmin())
        mask = pool.routable_mask(now)
        if mask is None:
            return None
        return _masked_argmin(keys, mask)


class RecoveryAwarePolicy(RoutingPolicy):
    """Least-work with a penalty on recently-recovered cold replicas.

    A replica that just (re)joined the pool — the replacement for a crashed
    replica, a re-placed drain victim, or a fresh scale-up — starts with cold
    caches, so stampeding the whole backlog onto it the moment it turns ready
    re-creates the very tail spike the recovery was meant to end.  This
    policy makes a cold replica look a few *queries* busier than its queue
    says: the penalty is ``cold_penalty_queries`` service times, scaled by
    the fraction of the warm-up window still remaining, using the engine's
    cost hint for the service time.  The penalty therefore fades linearly
    over ``warmup_s`` and is proportional to real work — a cold replica is
    deprioritised, not quarantined, so a long queue on the warm replicas
    still overflows onto it.  Replicas ready for longer than ``warmup_s``
    (and all replicas when no cost hint is supplied) rank exactly as under
    least-work; ties resolve to the replica listed first.

    When the engine's embedding-cache tier is on, replicas carry actual
    cache state and the fixed wall-clock window is replaced by the real
    thing: the cold fraction is ``1 - fill_fraction`` of the replica's
    cache, so the penalty fades exactly as fast as the cache warms (and
    reappears in full if the cache is invalidated by a re-shard).
    Cache-less pools rank bit-identically to the historical time-window
    policy.
    """

    name = "recovery-aware"

    def __init__(self, warmup_s: float = 60.0, cold_penalty_queries: float = 4.0) -> None:
        if warmup_s <= 0:
            raise ValueError("warmup_s must be positive")
        if cold_penalty_queries < 0:
            raise ValueError("cold_penalty_queries must be non-negative")
        self.warmup_s = float(warmup_s)
        self.cold_penalty_queries = float(cold_penalty_queries)

    def _cold_fraction(self, server: ReplicaServer, now: float) -> float:
        cache = server.cache
        if cache is not None:
            return 1.0 - cache.fill_fraction
        return max(0.0, (server.ready_at + self.warmup_s - now)) / self.warmup_s

    def _key(self, server: ReplicaServer, now: float, service_s: float) -> float:
        penalty = (
            self.cold_penalty_queries * service_s * self._cold_fraction(server, now)
        )
        return _queue_drain_time(server) + penalty

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        pool = _ready_pool(servers, now)
        if not pool:
            return None
        service_s = cost[0] * cost[1] if cost is not None else 0.0
        return min(pool, key=lambda s: self._key(s, now, service_s))

    def select_index(
        self,
        deployment_name: str,
        pool: ReplicaPool,
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> int | None:
        pool.refresh()
        if not pool.size:
            return None
        if pool.has_caches:
            # Cache-fill-driven penalty: a cache can be cold at any wall-clock
            # time (fresh replacement, re-shard invalidation), so the warm
            # time-window fast path does not apply; the cold fractions come
            # from each replica's actual fill.
            service_s = cost[0] * cost[1] if cost is not None else 0.0
            if pool.fill_rows is not None:
                # Elementwise mirror of the scalar ``1 - fill_fraction`` —
                # including the full-cache == exactly-1.0 special case — so
                # both paths rank replicas bit-identically.  The pool keeps
                # its fills as a Python list for the engine's scalar hot
                # path; this per-query conversion stays off the benchmark's
                # default least-work route.
                fills = np.asarray(pool.fill_rows)
                remaining = 1.0 - np.where(
                    fills >= pool.cache_capacity,
                    1.0,
                    fills * pool.cache_inv_capacity,
                )
            else:
                remaining = np.array(
                    [self._cold_fraction(server, now) for server in pool.servers]
                )
            keys = pool.busy + (self.cold_penalty_queries * service_s) * remaining
            if pool.all_ready(now):
                return int(keys.argmin())
            mask = pool.routable_mask(now)
            if mask is None:
                return None
            return _masked_argmin(keys, mask)
        if pool.all_ready(now) and now >= pool.ready_threshold + self.warmup_s:
            # Every replica is warm: the penalty term is exactly zero and the
            # ranking degenerates to least-work.
            return int(pool.busy.argmin())
        service_s = cost[0] * cost[1] if cost is not None else 0.0
        remaining = np.maximum(0.0, (pool.ready + self.warmup_s) - now) / self.warmup_s
        keys = pool.busy + (self.cold_penalty_queries * service_s) * remaining
        if pool.all_ready(now):
            return int(keys.argmin())
        mask = pool.routable_mask(now)
        if mask is None:
            return None
        return _masked_argmin(keys, mask)


#: Registry of routing policies by CLI-facing name.
ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {
    policy.name: policy
    for policy in (
        LeastWorkPolicy,
        RoundRobinPolicy,
        PowerOfTwoPolicy,
        ReadyOnlyPolicy,
        LeastOutstandingPolicy,
        CostWeightedPolicy,
        RecoveryAwarePolicy,
    )
}


def routing_policy_names() -> list[str]:
    """Registered policy names, in registration order."""
    return list(ROUTING_POLICIES)


def resolve_routing_names(names: str | Sequence[str]) -> list[str]:
    """Normalise a routing-policy selection to a validated list of names.

    Accepts ``"all"``, a comma-separated string, or a sequence of names;
    raises :class:`ValueError` naming the offender and the valid choices.
    """
    if isinstance(names, str):
        names = (
            routing_policy_names() if names == "all" else [n.strip() for n in names.split(",")]
        )
    resolved = [name for name in names if name]
    if not resolved:
        raise ValueError("at least one routing policy name is required")
    for name in resolved:
        if name not in ROUTING_POLICIES:
            known = ", ".join(routing_policy_names())
            raise ValueError(f"unknown routing policy {name!r}; choose from {known}")
    return resolved


def make_routing_policy(policy: str | RoutingPolicy) -> RoutingPolicy:
    """Resolve a policy name (or pass through an instance)."""
    if isinstance(policy, RoutingPolicy):
        return policy
    try:
        return ROUTING_POLICIES[policy]()
    except KeyError:
        known = ", ".join(routing_policy_names())
        raise ValueError(f"unknown routing policy {policy!r}; choose from {known}") from None
