"""Pluggable per-deployment routing policies for the serving engine.

Each policy answers one question: given the replica servers of a deployment
and the current simulation time, which replica should serve the next query?
Policies are stateful (round-robin cursors, in-flight counters, private RNG)
and are reset by the engine at the start of every run, so one policy instance
can be reused across runs deterministically.

The selection mechanics are shared with :mod:`repro.cluster.loadbalancer`
(the generic Linkerd stand-in): the policies here adapt those balancers to
the :class:`~repro.serving.replica_server.ReplicaServer` queue model, adding
readiness filtering and the engine's tie-breaking conventions.

Policies receive an optional *cost hint* — the query's mean service seconds
on the deployment plus its sampled cost multiplier — so cost-aware policies
can weigh expensive queries differently from cheap ones.  Policies that do
not care simply ignore the hint.

Available policies (see :data:`ROUTING_POLICIES`):

``least-work``
    Route to the replica whose queue drains first, preferring ready replicas
    but falling back to still-starting ones when nothing is ready.  This is
    the historical simulator behaviour and the default.
``round-robin``
    Cycle through the ready replicas (falling back to all replicas).
``power-of-two``
    Sample two random replicas and keep the one with less pending work.
``ready-only``
    Strict variant of least-work that refuses to queue on replicas that have
    not finished starting; with no ready replica the query is dropped and
    counted as a full SLA violation.
``least-outstanding``
    Route to the replica with the fewest in-flight queries (completion events
    feed the counters), breaking ties by pending work.
``cost-weighted``
    Batch- and cost-aware least-work: route to the replica with the earliest
    *predicted completion* for this specific query, using the cost hint and
    each replica's forming batch (a replica with a joinable batch finishes an
    extra query earlier than its queue-drain time suggests).
``recovery-aware``
    Least-work with a cold-replica penalty: a replica that (re)joined the
    pool within the warm-up window looks ``warmup`` seconds busier than its
    queue says, so traffic shifts back onto recently-recovered replicas
    gradually instead of stampeding them while their caches are cold.

Every policy excludes dead and draining replicas: a replica killed or
cordoned by the fault layer (:mod:`repro.serving.faults`) never receives new
traffic, even when the selection happens in the same event-loop step as the
failure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.loadbalancer import (
    LeastOutstandingBalancer,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
)
from repro.serving.replica_server import ReplicaServer

__all__ = [
    "RoutingPolicy",
    "LeastWorkPolicy",
    "RoundRobinPolicy",
    "PowerOfTwoPolicy",
    "ReadyOnlyPolicy",
    "LeastOutstandingPolicy",
    "CostWeightedPolicy",
    "RecoveryAwarePolicy",
    "ROUTING_POLICIES",
    "make_routing_policy",
    "routing_policy_names",
    "resolve_routing_names",
]


def _queue_drain_time(server: ReplicaServer) -> float:
    """When a query submitted now would start service on ``server``."""
    return max(server.busy_until, server.ready_at)


def _ready_pool(
    servers: Sequence[ReplicaServer], now: float
) -> Sequence[ReplicaServer]:
    """Routable replicas: available ones, else still-starting live ones.

    Preference order mirrors the historical behaviour — ready replicas first,
    falling back to replicas that have not finished starting — but dead and
    draining replicas are excluded outright: an empty result means every
    replica is gone and the query must be rejected.
    """
    ready = [s for s in servers if s.is_available(now)]
    if ready:
        return ready
    return [s for s in servers if not s.failed and not s.draining]


class RoutingPolicy:
    """Base class for per-deployment replica selection."""

    #: Registry name of the policy.
    name: str = ""
    #: Whether the engine must schedule completion events for this policy.
    needs_completion_events: bool = False

    def reset(self, rng: np.random.Generator) -> None:
        """Clear per-run state; called by the engine before each run."""

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        """Pick the serving replica, or ``None`` to drop the query.

        ``cost``, when given, is the query's cost hint: ``(service_s,
        multiplier)`` — the deployment's mean per-query service seconds and
        this query's sampled cost multiplier.  Policies may ignore it.
        """
        raise NotImplementedError

    def on_submit(self, deployment_name: str, server: ReplicaServer) -> None:
        """Notification that a query was enqueued on ``server``."""

    def on_complete(self, deployment_name: str, server_name: str) -> None:
        """Notification that a query finished on the named replica."""


class LeastWorkPolicy(RoutingPolicy):
    """Route to the replica whose queue drains first (the seed behaviour)."""

    name = "least-work"

    def __init__(self) -> None:
        self._balancer = LeastOutstandingBalancer(_queue_drain_time)

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        pool = _ready_pool(servers, now)
        if not pool:
            return None
        return self._balancer.pick(deployment_name, pool)


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through ready replicas regardless of their load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._balancer = RoundRobinBalancer()

    def reset(self, rng: np.random.Generator) -> None:
        self._balancer.reset()

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        pool = _ready_pool(servers, now)
        if not pool:
            return None
        return self._balancer.pick(deployment_name, pool)


class PowerOfTwoPolicy(RoutingPolicy):
    """Sample two random replicas, keep the one with less pending work."""

    name = "power-of-two"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._balancer = PowerOfTwoBalancer(_queue_drain_time, rng=rng)

    def reset(self, rng: np.random.Generator) -> None:
        self._balancer.reset(rng)

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        pool = _ready_pool(servers, now)
        if not pool:
            return None
        return self._balancer.pick(deployment_name, pool)


class ReadyOnlyPolicy(RoutingPolicy):
    """Least-work over ready replicas only; drop if nothing is ready."""

    name = "ready-only"

    def __init__(self) -> None:
        self._balancer = LeastOutstandingBalancer(_queue_drain_time)

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        ready = [s for s in servers if s.is_available(now)]
        if not ready:
            return None
        return self._balancer.pick(deployment_name, ready)


class LeastOutstandingPolicy(RoutingPolicy):
    """Route to the replica with the fewest in-flight queries.

    In-flight counts are maintained from the engine's submit/completion
    events; ties break toward less pending work, then toward the replica
    listed first (deterministic given the engine's stable server ordering).
    """

    name = "least-outstanding"
    needs_completion_events = True

    def __init__(self) -> None:
        self._in_flight: dict[tuple[str, str], int] = {}
        self._deployment = ""
        self._balancer = LeastOutstandingBalancer(self._load_key)

    def reset(self, rng: np.random.Generator) -> None:
        self._in_flight.clear()

    def _load_key(self, server: ReplicaServer) -> tuple[float, float]:
        count = self._in_flight.get((self._deployment, server.name), 0)
        return (float(count), _queue_drain_time(server))

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        pool = _ready_pool(servers, now)
        if not pool:
            return None
        self._deployment = deployment_name
        return self._balancer.pick(deployment_name, pool)

    def on_submit(self, deployment_name: str, server: ReplicaServer) -> None:
        key = (deployment_name, server.name)
        self._in_flight[key] = self._in_flight.get(key, 0) + 1

    def on_complete(self, deployment_name: str, server_name: str) -> None:
        key = (deployment_name, server_name)
        remaining = self._in_flight.get(key, 0) - 1
        if remaining > 0:
            self._in_flight[key] = remaining
        else:
            self._in_flight.pop(key, None)


class CostWeightedPolicy(RoutingPolicy):
    """Route to the replica with the earliest predicted completion.

    Unlike least-work — which orders replicas by queue-drain time regardless
    of what is being routed — this policy asks every ready replica what *this
    query* would cost there, via
    :meth:`~repro.serving.replica_server.ReplicaServer.predicted_completion`:
    the prediction folds in the query's cost hint and the replica's forming
    batch, so a cheap query prefers a replica it can batch into while an
    expensive one prefers the emptiest queue.  Without a cost hint it
    degenerates to least-work ordering.  Ties resolve to the replica listed
    first (deterministic given the engine's stable server ordering).
    """

    name = "cost-weighted"

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        pool = _ready_pool(servers, now)
        if not pool:
            return None
        if cost is None:
            return min(pool, key=_queue_drain_time)
        service_s, multiplier = cost
        return min(
            pool, key=lambda s: s.predicted_completion(now, service_s, multiplier)
        )


class RecoveryAwarePolicy(RoutingPolicy):
    """Least-work with a penalty on recently-recovered cold replicas.

    A replica that just (re)joined the pool — the replacement for a crashed
    replica, a re-placed drain victim, or a fresh scale-up — starts with cold
    caches, so stampeding the whole backlog onto it the moment it turns ready
    re-creates the very tail spike the recovery was meant to end.  This
    policy makes a cold replica look a few *queries* busier than its queue
    says: the penalty is ``cold_penalty_queries`` service times, scaled by
    the fraction of the warm-up window still remaining, using the engine's
    cost hint for the service time.  The penalty therefore fades linearly
    over ``warmup_s`` and is proportional to real work — a cold replica is
    deprioritised, not quarantined, so a long queue on the warm replicas
    still overflows onto it.  Replicas ready for longer than ``warmup_s``
    (and all replicas when no cost hint is supplied) rank exactly as under
    least-work; ties resolve to the replica listed first.
    """

    name = "recovery-aware"

    def __init__(self, warmup_s: float = 60.0, cold_penalty_queries: float = 4.0) -> None:
        if warmup_s <= 0:
            raise ValueError("warmup_s must be positive")
        if cold_penalty_queries < 0:
            raise ValueError("cold_penalty_queries must be non-negative")
        self.warmup_s = float(warmup_s)
        self.cold_penalty_queries = float(cold_penalty_queries)

    def _key(self, server: ReplicaServer, now: float, service_s: float) -> float:
        remaining_fraction = max(0.0, (server.ready_at + self.warmup_s - now)) / self.warmup_s
        penalty = self.cold_penalty_queries * service_s * remaining_fraction
        return _queue_drain_time(server) + penalty

    def select(
        self,
        deployment_name: str,
        servers: Sequence[ReplicaServer],
        now: float,
        cost: tuple[float, float] | None = None,
    ) -> ReplicaServer | None:
        pool = _ready_pool(servers, now)
        if not pool:
            return None
        service_s = cost[0] * cost[1] if cost is not None else 0.0
        return min(pool, key=lambda s: self._key(s, now, service_s))


#: Registry of routing policies by CLI-facing name.
ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {
    policy.name: policy
    for policy in (
        LeastWorkPolicy,
        RoundRobinPolicy,
        PowerOfTwoPolicy,
        ReadyOnlyPolicy,
        LeastOutstandingPolicy,
        CostWeightedPolicy,
        RecoveryAwarePolicy,
    )
}


def routing_policy_names() -> list[str]:
    """Registered policy names, in registration order."""
    return list(ROUTING_POLICIES)


def resolve_routing_names(names: str | Sequence[str]) -> list[str]:
    """Normalise a routing-policy selection to a validated list of names.

    Accepts ``"all"``, a comma-separated string, or a sequence of names;
    raises :class:`ValueError` naming the offender and the valid choices.
    """
    if isinstance(names, str):
        names = (
            routing_policy_names() if names == "all" else [n.strip() for n in names.split(",")]
        )
    resolved = [name for name in names if name]
    if not resolved:
        raise ValueError("at least one routing policy name is required")
    for name in resolved:
        if name not in ROUTING_POLICIES:
            known = ", ".join(routing_policy_names())
            raise ValueError(f"unknown routing policy {name!r}; choose from {known}")
    return resolved


def make_routing_policy(policy: str | RoutingPolicy) -> RoutingPolicy:
    """Resolve a policy name (or pass through an instance)."""
    if isinstance(policy, RoutingPolicy):
        return policy
    try:
        return ROUTING_POLICIES[policy]()
    except KeyError:
        known = ", ".join(routing_policy_names())
        raise ValueError(f"unknown routing policy {policy!r}; choose from {known}") from None
