"""End-to-end serving simulation of a deployment plan under query traffic.

The simulator reproduces the serving loop of Section VI-D: Poisson query
traffic arrives following a (possibly fluctuating) target-rate pattern, every
query is routed to one replica of each deployment it needs — the dense shard
plus every embedding shard for ElasticRec, or the single monolithic replica
for the model-wise baseline — queues at the replicas, and completes after the
slowest shard's response plus the cross-shard RPC overhead.  Every control
interval the Kubernetes-style autoscaler inspects the recorded metrics and
scales deployments in or out; newly created replicas only start serving after
their container cold-start time, which is where the model-wise baseline's
sluggish reaction to traffic changes comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.autoscaler import HorizontalPodAutoscaler
from repro.cluster.cluster import Cluster
from repro.cluster.container import ContainerState
from repro.cluster.deployment import Deployment
from repro.core.plan import DeploymentPlan, ROLE_DENSE, ROLE_MONOLITHIC
from repro.hardware.perf_model import PerfModel
from repro.serving.latency import LatencyTracker
from repro.serving.replica_server import ReplicaServer
from repro.serving.traffic import TrafficPattern

__all__ = ["ServingSimulator", "SimulationResult"]


@dataclass
class SimulationResult:
    """Time series and aggregates produced by one simulation run."""

    plan_name: str
    strategy: str
    sla_s: float
    sample_times: np.ndarray
    target_qps: np.ndarray
    achieved_qps: np.ndarray
    memory_gb: np.ndarray
    p95_latency_ms: np.ndarray
    replica_counts: dict[str, np.ndarray]
    tracker: LatencyTracker = field(repr=False, default_factory=LatencyTracker)

    @property
    def peak_memory_gb(self) -> float:
        """Highest allocated memory observed."""
        return float(self.memory_gb.max()) if self.memory_gb.size else 0.0

    @property
    def mean_latency_ms(self) -> float:
        """Mean end-to-end latency over the whole run."""
        return self.tracker.mean() * 1000.0

    @property
    def overall_p95_latency_ms(self) -> float:
        """p95 end-to-end latency over the whole run."""
        return self.tracker.percentile(95.0) * 1000.0

    def sla_violation_fraction(self) -> float:
        """Fraction of queries whose latency exceeded the SLA."""
        return self.tracker.sla_violation_fraction(self.sla_s)

    def summary(self) -> dict[str, float]:
        """Headline aggregates of the run."""
        return {
            "peak_memory_gb": self.peak_memory_gb,
            "mean_latency_ms": self.mean_latency_ms,
            "p95_latency_ms": self.overall_p95_latency_ms,
            "sla_violation_fraction": self.sla_violation_fraction(),
            "total_queries": float(self.tracker.num_samples),
        }


class ServingSimulator:
    """Simulates one deployment plan under a traffic pattern."""

    def __init__(
        self,
        plan: DeploymentPlan,
        autoscale: bool = True,
        autoscaler: HorizontalPodAutoscaler | None = None,
        initial_replicas: int | None = None,
        warm_start: bool = True,
        max_replicas: int = 256,
        sample_interval_s: float = 15.0,
        seed: int = 0,
    ) -> None:
        self._plan = plan
        self._autoscale = autoscale
        self._autoscaler = autoscaler or HorizontalPodAutoscaler()
        self._sample_interval_s = float(sample_interval_s)
        if self._sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self._rng = np.random.default_rng(seed)
        self._perf_model = PerfModel(plan.cluster)
        self._cluster = Cluster.from_plan(
            plan, initial_replicas=initial_replicas, max_replicas=max_replicas
        )
        self._servers: dict[str, dict[str, ReplicaServer]] = {
            d.name: {} for d in self._cluster.deployments
        }
        self._service_times = {d.name: 1.0 / d.per_replica_qps for d in plan.deployments}
        self._is_monolithic = plan.strategy != "elasticrec"
        self._rpc_overhead_s = 0.0 if self._is_monolithic else self._perf_model.rpc_overhead_s()
        self._cluster.reconcile(0.0)
        if warm_start:
            self._force_ready(0.0)
        self._sync_servers(0.0)

    # ------------------------------------------------------------------
    # Cluster/replica bookkeeping
    # ------------------------------------------------------------------
    @property
    def cluster(self) -> Cluster:
        """The simulated cluster."""
        return self._cluster

    def _force_ready(self, now: float) -> None:
        for deployment in self._cluster.deployments:
            for container in deployment.replicas:
                if container.state is ContainerState.STARTING:
                    container.ready_at = now
                    container.maybe_become_ready(now)

    def _sync_servers(self, now: float) -> None:
        """Mirror the cluster's active containers into replica queue servers."""
        for deployment in self._cluster.deployments:
            servers = self._servers[deployment.name]
            active_names = set()
            for container in deployment.replicas:
                if not container.is_active:
                    continue
                active_names.add(container.name)
                if container.name not in servers:
                    ready_at = container.ready_at if container.ready_at is not None else now
                    servers[container.name] = ReplicaServer(container.name, ready_at=ready_at)
            for name in list(servers):
                if name not in active_names:
                    del servers[name]

    def _pick_server(self, deployment: Deployment, arrival: float) -> ReplicaServer | None:
        servers = list(self._servers[deployment.name].values())
        if not servers:
            return None
        ready = [s for s in servers if s.is_ready(arrival)]
        pool = ready if ready else servers
        return min(pool, key=lambda s: max(s.busy_until, s.ready_at))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, pattern: TrafficPattern) -> SimulationResult:
        """Simulate the plan under the given traffic pattern."""
        arrivals = pattern.arrivals(self._rng)
        tracker = LatencyTracker()
        boundaries = np.arange(
            self._sample_interval_s,
            pattern.duration_s + self._sample_interval_s,
            self._sample_interval_s,
        )
        sample_times: list[float] = []
        memory_series: list[float] = []
        replica_series: dict[str, list[int]] = {d.name: [] for d in self._cluster.deployments}
        interval_counts: dict[str, int] = {d.name: 0 for d in self._cluster.deployments}
        interval_latencies: dict[str, list[float]] = {
            d.name: [] for d in self._cluster.deployments
        }

        arrival_index = 0
        for boundary in boundaries:
            while arrival_index < arrivals.size and arrivals[arrival_index] <= boundary:
                arrival = float(arrivals[arrival_index])
                latency = self._serve_query(arrival, interval_counts, interval_latencies)
                tracker.record(arrival + latency, latency)
                arrival_index += 1
            self._record_interval_metrics(boundary, interval_counts, interval_latencies)
            if self._autoscale and self._autoscaler.should_evaluate(boundary):
                self._autoscaler.evaluate(
                    self._cluster.deployments, self._cluster.metrics, boundary
                )
            self._cluster.reconcile(boundary)
            self._sync_servers(boundary)
            sample_times.append(float(boundary))
            memory_series.append(self._cluster.allocated_memory_gb)
            for deployment in self._cluster.deployments:
                replica_series[deployment.name].append(len(deployment.active_replicas))
            interval_counts = {d.name: 0 for d in self._cluster.deployments}
            interval_latencies = {d.name: [] for d in self._cluster.deployments}

        sample_times_arr = np.asarray(sample_times)
        achieved = self._achieved_qps(tracker, sample_times_arr)
        p95_series = self._p95_series(tracker, sample_times_arr)
        target = np.array([pattern.rate_at(min(t, pattern.duration_s)) for t in sample_times_arr])
        return SimulationResult(
            plan_name=self._plan.name,
            strategy=self._plan.strategy,
            sla_s=self._plan.cluster.sla_s,
            sample_times=sample_times_arr,
            target_qps=target,
            achieved_qps=achieved,
            memory_gb=np.asarray(memory_series),
            p95_latency_ms=p95_series,
            replica_counts={k: np.asarray(v) for k, v in replica_series.items()},
            tracker=tracker,
        )

    # ------------------------------------------------------------------
    # Per-query path
    # ------------------------------------------------------------------
    def _serve_query(
        self,
        arrival: float,
        interval_counts: dict[str, int],
        interval_latencies: dict[str, list[float]],
    ) -> float:
        """Route one query through every deployment it needs; returns its latency."""
        completions: list[float] = []
        dense_names: list[str] = []
        for deployment in self._cluster.deployments:
            server = self._pick_server(deployment, arrival)
            if server is None:
                # No capacity at all: count a full SLA violation.
                completions.append(arrival + 2.0 * self._plan.cluster.sla_s)
                continue
            service = self._service_times[deployment.name]
            completion = server.submit(arrival, service)
            completions.append(completion)
            interval_counts[deployment.name] += 1
            if deployment.spec.role in (ROLE_DENSE, ROLE_MONOLITHIC):
                dense_names.append(deployment.name)
            else:
                interval_latencies[deployment.name].append(completion - arrival)
        query_completion = max(completions) + self._rpc_overhead_s
        latency = query_completion - arrival
        # End-to-end latency is what the dense (or monolithic) shard's HPA sees.
        for name in dense_names:
            interval_latencies[name].append(latency)
        return latency

    def _record_interval_metrics(
        self,
        now: float,
        interval_counts: dict[str, int],
        interval_latencies: dict[str, list[float]],
    ) -> None:
        metrics = self._cluster.metrics
        for deployment in self._cluster.deployments:
            name = deployment.name
            metrics.record(f"{name}/queries", float(interval_counts[name]), now)
            latencies = interval_latencies[name]
            if latencies:
                metrics.record(f"{name}/latency_s", float(np.percentile(latencies, 95)), now)

    # ------------------------------------------------------------------
    # Series post-processing
    # ------------------------------------------------------------------
    def _achieved_qps(self, tracker: LatencyTracker, sample_times: np.ndarray) -> np.ndarray:
        completions = np.sort(tracker.completion_times)
        achieved = np.zeros_like(sample_times)
        for index, end in enumerate(sample_times):
            start = end - self._sample_interval_s
            count = np.searchsorted(completions, end) - np.searchsorted(completions, start)
            achieved[index] = count / self._sample_interval_s
        return achieved

    def _p95_series(self, tracker: LatencyTracker, sample_times: np.ndarray) -> np.ndarray:
        completions = tracker.completion_times
        latencies = tracker.latencies_s * 1000.0
        series = np.zeros_like(sample_times)
        window = max(self._sample_interval_s, 30.0)
        for index, end in enumerate(sample_times):
            mask = (completions > end - window) & (completions <= end)
            if mask.any():
                series[index] = float(np.percentile(latencies[mask], 95))
        return series
