"""End-to-end serving simulation of a deployment plan under query traffic.

The simulator reproduces the serving loop of Section VI-D: Poisson query
traffic arrives following a (possibly fluctuating) target-rate pattern, every
query is routed to one replica of each deployment it needs — the dense shard
plus every embedding shard for ElasticRec, or the single monolithic replica
for the model-wise baseline — queues at the replicas, and completes after the
slowest shard's response plus the cross-shard RPC overhead.  Every control
interval the Kubernetes-style autoscaler inspects the recorded metrics and
scales deployments in or out; newly created replicas only start serving after
their container cold-start time, which is where the model-wise baseline's
sluggish reaction to traffic changes comes from.

:class:`ServingSimulator` is a thin façade over the discrete-event
:class:`~repro.serving.engine.ServingEngine`; with the default ``least-work``
routing policy it reproduces the historical simulator's results exactly.
Pass ``routing`` to select another policy from
:data:`repro.serving.routing.ROUTING_POLICIES`.

To co-locate several models with different SLAs on one shared node pool, use
:class:`~repro.serving.engine.MultiTenantEngine` directly: a single-tenant
multi-tenant run reproduces this simulator bit-for-bit for the same seed.
"""

from __future__ import annotations

from repro.cluster.autoscaler import HorizontalPodAutoscaler
from repro.cluster.cluster import Cluster
from repro.core.plan import DeploymentPlan
from repro.serving.engine import ServingEngine, SimulationResult
from repro.serving.faults import FaultModel
from repro.serving.routing import RoutingPolicy
from repro.serving.traffic import TrafficPattern
from repro.serving.workload import QueryCostModel

__all__ = ["ServingSimulator", "SimulationResult"]


class ServingSimulator:
    """Simulates one deployment plan under a traffic pattern."""

    def __init__(
        self,
        plan: DeploymentPlan,
        autoscale: bool = True,
        autoscaler: HorizontalPodAutoscaler | None = None,
        initial_replicas: int | None = None,
        warm_start: bool = True,
        max_replicas: int = 256,
        sample_interval_s: float = 15.0,
        seed: int = 0,
        routing: str | RoutingPolicy = "least-work",
        cost_model: str | QueryCostModel = "homogeneous",
        max_batch: int = 1,
        batch_window_s: float = 0.0,
        faults: str | FaultModel | None = None,
    ) -> None:
        self._engine = ServingEngine(
            plan,
            routing=routing,
            autoscale=autoscale,
            autoscaler=autoscaler,
            initial_replicas=initial_replicas,
            warm_start=warm_start,
            max_replicas=max_replicas,
            sample_interval_s=sample_interval_s,
            seed=seed,
            cost_model=cost_model,
            max_batch=max_batch,
            batch_window_s=batch_window_s,
            faults=faults,
        )

    @property
    def cluster(self) -> Cluster:
        """The simulated cluster."""
        return self._engine.cluster

    @property
    def engine(self) -> ServingEngine:
        """The underlying discrete-event engine."""
        return self._engine

    def run(self, pattern: TrafficPattern) -> SimulationResult:
        """Simulate the plan under the given traffic pattern."""
        return self._engine.run(pattern)
