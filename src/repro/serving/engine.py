"""Discrete-event serving engine: the simulation core behind the façade.

The engine replaces the monolithic per-query serving loop with a classic
discrete-event simulation: a binary heap of typed events drives the run, and
everything policy-shaped (replica selection, traffic generation, autoscaling)
is pluggable around the deterministic core.

Event types, in tie-breaking order at equal timestamps:

* ``COMPLETION`` — a query finished on one replica (scheduled only when the
  routing policy tracks in-flight queries, e.g. ``least-outstanding``);
* ``ARRIVAL`` — the next pending query arrival.  Arrivals are pre-generated
  as one sorted vector per tenant per run and consumed in *batches*: one heap
  event covers every arrival up to the next control event, so a 100k-query
  run costs thousands — not hundreds of thousands — of heap operations;
* ``AUTOSCALE`` — the control-plane tick: flush the interval's metrics into
  the registry and run the HPA evaluation;
* ``RECONCILE`` — drive the cluster toward the desired replica counts and
  mirror the active containers into replica queue servers;
* ``SAMPLE`` — append one point to every recorded time series and reset the
  per-interval accumulators.

The same event loop drives one deployment plan (:class:`ServingEngine`) or a
whole *multi-tenant cluster* (:class:`MultiTenantEngine`): N tenants, each
with its own traffic pattern, routing policy, SLA target, autoscaler and
random seed, competing for one shared capacity-constrained node pool.  Every
tenant is a :class:`_TenantRuntime` holding its slice of the cluster's
deployments plus its per-run accumulators; tenant events carry the tenant
index, so events from different tenants interleave on one heap in timestamp
order.  With a single tenant the loop degenerates to exactly the historical
single-plan behaviour — same heap contents, same RNG draws — so a
one-tenant :class:`MultiTenantEngine` reproduces :class:`ServingEngine`
(and therefore the seed simulator) bit-for-bit for the same seed.

Queries are *heterogeneous*: every run pre-samples one cost multiplier per
query from the tenant's :class:`~repro.serving.workload.QueryCostModel`
(vectorised, from a dedicated seed stream), embedding and monolithic
deployments scale their service times by it, and replicas serve *batches*
(``max_batch``/``batch_window_s``) whose service times come from the
hardware layer's :class:`~repro.hardware.perf_model.BatchLatencyModel`.
Routing policies receive the per-deployment cost hint, enabling
cost-weighted selection.  The default configuration — ``homogeneous`` cost
model, ``max_batch=1`` — reproduces the historical constant-service-time
engine bit-for-bit.

Series post-processing (achieved QPS, windowed p95) is vectorised with a
single sort plus ``np.searchsorted`` window lookups, replacing the seed
simulator's per-window boolean masks over the full completion array.

The historical :class:`~repro.serving.simulator.ServingSimulator` API is a
thin façade over this engine; with the default ``least-work`` routing policy
the engine reproduces the seed simulator's results bit-for-bit for the same
seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Sequence

import numpy as np

from repro.cluster.autoscaler import HorizontalPodAutoscaler
from repro.cluster.cluster import Cluster
from repro.cluster.container import ContainerState
from repro.cluster.deployment import Deployment
from repro.core.plan import DeploymentPlan, ROLE_DENSE, ROLE_MONOLITHIC
from repro.hardware.perf_model import PerfModel
from repro.hardware.specs import ClusterSpec
from repro.serving.latency import LatencyTracker
from repro.serving.replica_server import ReplicaServer
from repro.serving.routing import RoutingPolicy, make_routing_policy
from repro.serving.traffic import TrafficPattern
from repro.serving.workload import QueryCostModel, make_cost_model

__all__ = [
    "EventKind",
    "ServingEngine",
    "SimulationResult",
    "TenantSpec",
    "MultiTenantEngine",
    "MultiTenantResult",
    "ClusterSeries",
]


class EventKind(IntEnum):
    """Typed events of the serving engine, in same-timestamp priority order."""

    COMPLETION = 0
    ARRIVAL = 1
    AUTOSCALE = 2
    RECONCILE = 3
    SAMPLE = 4


@dataclass
class SimulationResult:
    """Time series and aggregates produced by one simulation run."""

    plan_name: str
    strategy: str
    sla_s: float
    sample_times: np.ndarray
    target_qps: np.ndarray
    achieved_qps: np.ndarray
    memory_gb: np.ndarray
    p95_latency_ms: np.ndarray
    replica_counts: dict[str, np.ndarray]
    tracker: LatencyTracker = field(repr=False, default_factory=LatencyTracker)
    routing: str = "least-work"
    tenant: str = ""
    utilization: dict[str, np.ndarray] = field(default_factory=dict)
    cost_model: str = "homogeneous"
    max_batch: int = 1
    #: Per-deployment mean queries-per-batch over each sample interval
    #: (0.0 where the interval completed no batches).
    batch_occupancy: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def peak_memory_gb(self) -> float:
        """Highest allocated memory observed."""
        return float(self.memory_gb.max()) if self.memory_gb.size else 0.0

    @property
    def mean_latency_ms(self) -> float:
        """Mean end-to-end latency over the whole run (0.0 with no traffic)."""
        if self.tracker.num_samples == 0:
            return 0.0
        return self.tracker.mean() * 1000.0

    @property
    def overall_p95_latency_ms(self) -> float:
        """p95 end-to-end latency over the whole run (0.0 with no traffic)."""
        if self.tracker.num_samples == 0:
            return 0.0
        return self.tracker.percentile(95.0) * 1000.0

    def sla_violation_fraction(self) -> float:
        """Fraction of queries whose latency exceeded the SLA."""
        return self.tracker.sla_violation_fraction(self.sla_s)

    def sla_violation_count(self) -> int:
        """Number of queries whose latency exceeded the SLA."""
        return int(np.sum(self.tracker.latencies_s > self.sla_s))

    def summary(self) -> dict[str, float]:
        """Headline aggregates of the run."""
        return {
            "peak_memory_gb": self.peak_memory_gb,
            "mean_latency_ms": self.mean_latency_ms,
            "p95_latency_ms": self.overall_p95_latency_ms,
            "sla_violation_fraction": self.sla_violation_fraction(),
            "total_queries": float(self.tracker.num_samples),
        }


# ----------------------------------------------------------------------
# Series post-processing (vectorised)
# ----------------------------------------------------------------------
def _achieved_qps_series(
    tracker: LatencyTracker, sample_times: np.ndarray, interval_s: float
) -> np.ndarray:
    completions = np.sort(tracker.completion_times)
    counts = np.searchsorted(completions, sample_times) - np.searchsorted(
        completions, sample_times - interval_s
    )
    return counts / interval_s


def _p95_series(
    tracker: LatencyTracker, sample_times: np.ndarray, interval_s: float
) -> np.ndarray:
    completions = tracker.completion_times
    order = np.argsort(completions, kind="stable")
    sorted_completions = completions[order]
    sorted_latencies = (tracker.latencies_s * 1000.0)[order]
    window = max(interval_s, 30.0)
    # Each window is (end - window, end]; one sort plus two binary
    # searches per sample replaces a full boolean mask per sample.
    hi = np.searchsorted(sorted_completions, sample_times, side="right")
    lo = np.searchsorted(sorted_completions, sample_times - window, side="right")
    series = np.zeros_like(sample_times)
    for index in range(sample_times.size):
        if hi[index] > lo[index]:
            series[index] = float(
                np.percentile(sorted_latencies[lo[index] : hi[index]], 95)
            )
    return series


def _force_ready(cluster: Cluster, now: float) -> None:
    """Promote every placed-but-starting container to RUNNING (warm start)."""
    for deployment in cluster.deployments:
        for container in deployment.replicas:
            if container.state is ContainerState.STARTING:
                container.ready_at = now
                container.maybe_become_ready(now)


class _TenantRuntime:
    """One tenant's slice of the simulated cluster plus its run accumulators.

    Persistent state (replica servers, arrival RNG, autoscaler history)
    survives across runs, mirroring the historical simulator; per-run
    accumulators are reset by :meth:`begin_run`.
    """

    def __init__(
        self,
        name: str,
        plan: DeploymentPlan,
        deployments: Sequence[Deployment],
        policy: RoutingPolicy,
        autoscale: bool,
        autoscaler: HorizontalPodAutoscaler,
        sla_s: float,
        sample_interval_s: float,
        seed: int,
        cost_model: QueryCostModel | None = None,
        max_batch: int = 1,
        batch_window_s: float = 0.0,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        self.name = name
        self.plan = plan
        self.deployments = list(deployments)
        self.policy = policy
        self.autoscale = autoscale
        self.autoscaler = autoscaler
        self.sla_s = float(sla_s)
        self.sample_interval_s = float(sample_interval_s)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.cost_model = (
            cost_model if cost_model is not None else make_cost_model("homogeneous")
        )
        self.max_batch = int(max_batch)
        self.batch_window_s = float(batch_window_s)
        self.servers: dict[str, dict[str, ReplicaServer]] = {
            d.name: {} for d in self.deployments
        }
        self.service_times = {
            d.name: 1.0 / d.spec.per_replica_qps for d in self.deployments
        }
        is_monolithic = plan.strategy != "elasticrec"
        perf_model = PerfModel(plan.cluster)
        self.rpc_overhead_s = 0.0 if is_monolithic else perf_model.rpc_overhead_s()
        self.dense_roles = {
            d.name: d.spec.role in (ROLE_DENSE, ROLE_MONOLITHIC) for d in self.deployments
        }
        # Pure dense shards do not gather embeddings, so per-query cost
        # multipliers only apply to embedding and monolithic deployments.
        self.cost_bearing = {
            d.name: d.spec.role != ROLE_DENSE for d in self.deployments
        }
        self.batch_models = {
            d.name: perf_model.batch_model(d.spec.role) for d in self.deployments
        }
        # Batch/query counters of replicas that were scaled away, so interval
        # occupancy deltas survive server churn.
        self._retired_totals: dict[str, list[int]] = {
            d.name: [0, 0] for d in self.deployments
        }

    # ------------------------------------------------------------------
    # Cluster/replica bookkeeping
    # ------------------------------------------------------------------
    @property
    def allocated_memory_gb(self) -> float:
        """Memory reserved by this tenant's active replicas, in GB."""
        return sum(d.allocated_memory_bytes for d in self.deployments) / 1e9

    def sync_servers(self, now: float) -> None:
        """Mirror the tenant's active containers into replica queue servers."""
        for deployment in self.deployments:
            servers = self.servers[deployment.name]
            active_names = set()
            for container in deployment.replicas:
                if not container.is_active:
                    continue
                active_names.add(container.name)
                if container.name not in servers:
                    ready_at = container.ready_at if container.ready_at is not None else now
                    servers[container.name] = ReplicaServer(
                        container.name,
                        ready_at=ready_at,
                        max_batch=self.max_batch,
                        batch_window_s=self.batch_window_s,
                        batch_model=self.batch_models[deployment.name],
                    )
            for name in list(servers):
                if name not in active_names:
                    retired = servers.pop(name)
                    totals = self._retired_totals[deployment.name]
                    totals[0] += retired.completed_queries
                    totals[1] += retired.completed_batches

    # ------------------------------------------------------------------
    # Per-run lifecycle
    # ------------------------------------------------------------------
    def begin_run(self, pattern: TrafficPattern) -> None:
        """Reset the per-run accumulators and draw this run's arrivals."""
        self.pattern = pattern
        self.arrivals = pattern.arrivals(self.rng)
        self.policy.reset(np.random.default_rng([self.seed, 1]))
        # Pre-sample every query's cost multiplier, vectorised, from a
        # dedicated seed stream (the homogeneous model never draws, so it
        # cannot perturb any other stream of the run).
        if self.cost_model.is_homogeneous:
            self.query_multipliers: list[float] | None = None
        else:
            cost_rng = np.random.default_rng([self.seed, 2])
            self.query_multipliers = self.cost_model.sample(
                self.arrivals.size, cost_rng
            ).tolist()
        self.tracker = LatencyTracker()
        self.boundaries = np.arange(
            self.sample_interval_s,
            pattern.duration_s + self.sample_interval_s,
            self.sample_interval_s,
        )
        self.sample_times: list[float] = []
        self.memory_series: list[float] = []
        self.replica_series: dict[str, list[int]] = {d.name: [] for d in self.deployments}
        self.utilization_series: dict[str, list[float]] = {
            d.name: [] for d in self.deployments
        }
        self.interval_counts: dict[str, int] = {d.name: 0 for d in self.deployments}
        self.interval_latencies: dict[str, list[float]] = {
            d.name: [] for d in self.deployments
        }
        self.batch_occupancy_series: dict[str, list[float]] = {
            d.name: [] for d in self.deployments
        }
        self._occupancy_marks: dict[str, tuple[int, int]] = {
            d.name: self._served_totals(d.name) for d in self.deployments
        }
        # Arrivals after the final sample boundary fall outside every recorded
        # interval and are never served (the seed loop behaved identically).
        self.num_served = (
            int(np.searchsorted(self.arrivals, self.boundaries[-1], side="right"))
            if self.boundaries.size
            else 0
        )
        self.track_completions = self.policy.needs_completion_events

    def _served_totals(self, deployment_name: str) -> tuple[int, int]:
        """Lifetime (queries, batches) served by a deployment's replicas."""
        queries, batches = self._retired_totals[deployment_name]
        for server in self.servers[deployment_name].values():
            queries += server.completed_queries
            batches += server.completed_batches
        return queries, batches

    def serve_query(
        self,
        arrival: float,
        query_index: int,
        tenant_index: int,
        heap: list | None = None,
        seq: itertools.count | None = None,
    ) -> None:
        """Route one query through every deployment the tenant needs."""
        multiplier = (
            1.0 if self.query_multipliers is None else self.query_multipliers[query_index]
        )
        completions: list[float] = []
        dense_names: list[str] = []
        for deployment in self.deployments:
            name = deployment.name
            servers = list(self.servers[name].values())
            service = self.service_times[name]
            cost = multiplier if self.cost_bearing[name] else 1.0
            server = self.policy.select(name, servers, arrival, cost=(service, cost))
            self.interval_counts[name] += 1
            if server is None:
                # No capacity at all: count a full SLA violation.  The
                # rejection still lands in the interval metrics (count and
                # latency), so the HPA can see the overload it most needs to
                # react to.
                completion = arrival + 2.0 * self.sla_s
                completions.append(completion)
                if self.dense_roles[name]:
                    dense_names.append(name)
                else:
                    self.interval_latencies[name].append(completion - arrival)
                continue
            completion = server.submit(arrival, service, multiplier=cost)
            self.policy.on_submit(name, server)
            if heap is not None:
                heapq.heappush(
                    heap,
                    (
                        completion,
                        EventKind.COMPLETION,
                        next(seq),
                        (tenant_index, name, server.name),
                    ),
                )
            completions.append(completion)
            if self.dense_roles[name]:
                dense_names.append(name)
            else:
                self.interval_latencies[name].append(completion - arrival)
        query_completion = max(completions) + self.rpc_overhead_s
        latency = query_completion - arrival
        # End-to-end latency is what the dense (or monolithic) shard's HPA sees.
        for name in dense_names:
            self.interval_latencies[name].append(latency)
        self.tracker.record(arrival + latency, latency)

    def record_interval_metrics(self, now: float, metrics) -> None:
        for deployment in self.deployments:
            name = deployment.name
            metrics.record(f"{name}/queries", float(self.interval_counts[name]), now)
            latencies = self.interval_latencies[name]
            if latencies:
                metrics.record(f"{name}/latency_s", float(np.percentile(latencies, 95)), now)

    def sample(self, now: float) -> None:
        self.sample_times.append(now)
        self.memory_series.append(self.allocated_memory_gb)
        window_start = now - self.sample_interval_s
        for deployment in self.deployments:
            self.replica_series[deployment.name].append(len(deployment.active_replicas))
            servers = self.servers[deployment.name].values()
            if servers:
                utilization = float(
                    np.mean([s.utilization(now, window_start=window_start) for s in servers])
                )
            else:
                utilization = 0.0
            self.utilization_series[deployment.name].append(utilization)
            queries, batches = self._served_totals(deployment.name)
            mark_queries, mark_batches = self._occupancy_marks[deployment.name]
            batch_delta = batches - mark_batches
            if batch_delta:
                occupancy = (queries - mark_queries) / batch_delta
                self._occupancy_marks[deployment.name] = (queries, batches)
            else:
                # No batch opened this interval: leave the query mark in
                # place so queries that joined a straddling batch are
                # attributed to the next batch-opening interval instead of
                # being dropped from the occupancy accounting.
                occupancy = 0.0
            self.batch_occupancy_series[deployment.name].append(occupancy)
        for name in self.interval_counts:
            self.interval_counts[name] = 0
            self.interval_latencies[name] = []

    def finish_run(self) -> SimulationResult:
        sample_times = np.asarray(self.sample_times)
        return SimulationResult(
            plan_name=self.plan.name,
            strategy=self.plan.strategy,
            sla_s=self.sla_s,
            sample_times=sample_times,
            target_qps=np.array([self.pattern.rate_at(t) for t in sample_times]),
            achieved_qps=_achieved_qps_series(self.tracker, sample_times, self.sample_interval_s),
            memory_gb=np.asarray(self.memory_series),
            p95_latency_ms=_p95_series(self.tracker, sample_times, self.sample_interval_s),
            replica_counts={k: np.asarray(v) for k, v in self.replica_series.items()},
            tracker=self.tracker,
            routing=self.policy.name,
            tenant=self.name,
            utilization={k: np.asarray(v) for k, v in self.utilization_series.items()},
            cost_model=self.cost_model.name,
            max_batch=self.max_batch,
            batch_occupancy={
                k: np.asarray(v) for k, v in self.batch_occupancy_series.items()
            },
        )


def _drive(
    cluster: Cluster,
    runtimes: Sequence[_TenantRuntime],
    patterns: Sequence[TrafficPattern],
    probe=None,
) -> list[SimulationResult]:
    """Run every tenant's traffic through one shared event heap.

    ``probe``, if given, is called as ``probe(now)`` after each tenant sample
    point (at equal timestamps every reconcile precedes every sample, so the
    probe always observes a settled cluster).
    """
    for runtime, pattern in zip(runtimes, patterns):
        runtime.begin_run(pattern)

    heap: list[tuple[float, int, int, object]] = []
    seq = itertools.count()
    for tenant_index, runtime in enumerate(runtimes):
        for boundary in runtime.boundaries:
            heapq.heappush(heap, (float(boundary), EventKind.AUTOSCALE, next(seq), tenant_index))
            heapq.heappush(heap, (float(boundary), EventKind.SAMPLE, next(seq), tenant_index))
    # One reconcile per unique boundary timestamp: tenants sharing a sample
    # grid would otherwise trigger N redundant full-cluster packing passes.
    for boundary in sorted({float(b) for r in runtimes for b in r.boundaries}):
        heapq.heappush(heap, (boundary, EventKind.RECONCILE, next(seq), None))
    for tenant_index, runtime in enumerate(runtimes):
        if runtime.num_served:
            heapq.heappush(
                heap, (float(runtime.arrivals[0]), EventKind.ARRIVAL, next(seq), (tenant_index, 0))
            )

    while heap:
        now, kind, _, payload = heapq.heappop(heap)
        if kind == EventKind.ARRIVAL:
            tenant_index, index = payload
            runtime = runtimes[tenant_index]
            if runtime.track_completions:
                # One event per arrival so completion events interleave
                # with arrivals in timestamp order.
                runtime.serve_query(
                    float(runtime.arrivals[index]), index, tenant_index, heap, seq
                )
                if index + 1 < runtime.num_served:
                    heapq.heappush(
                        heap,
                        (
                            float(runtime.arrivals[index + 1]),
                            EventKind.ARRIVAL,
                            next(seq),
                            (tenant_index, index + 1),
                        ),
                    )
            else:
                # Batch every arrival up to (and including) the next control
                # event of *any* tenant; nothing can preempt them in between.
                horizon = heap[0][0] if heap else float("inf")
                stop = int(np.searchsorted(runtime.arrivals, horizon, side="right"))
                stop = min(max(stop, index + 1), runtime.num_served)
                for i in range(index, stop):
                    runtime.serve_query(float(runtime.arrivals[i]), i, tenant_index)
                if stop < runtime.num_served:
                    heapq.heappush(
                        heap,
                        (float(runtime.arrivals[stop]), EventKind.ARRIVAL, next(seq), (tenant_index, stop)),
                    )
        elif kind == EventKind.COMPLETION:
            tenant_index, deployment_name, server_name = payload
            runtimes[tenant_index].policy.on_complete(deployment_name, server_name)
        elif kind == EventKind.AUTOSCALE:
            runtime = runtimes[payload]
            runtime.record_interval_metrics(now, cluster.metrics)
            if runtime.autoscale and runtime.autoscaler.should_evaluate(now):
                runtime.autoscaler.evaluate(runtime.deployments, cluster.metrics, now)
        elif kind == EventKind.RECONCILE:
            cluster.reconcile(now)
            for runtime in runtimes:
                runtime.sync_servers(now)
        else:  # EventKind.SAMPLE
            runtimes[payload].sample(now)
            if probe is not None:
                probe(now)

    return [runtime.finish_run() for runtime in runtimes]


class ServingEngine:
    """Discrete-event simulation of one deployment plan under query traffic.

    The engine owns the simulated cluster, the autoscaler and the routing
    policy; :meth:`run` drives one traffic pattern through the event loop and
    returns a :class:`SimulationResult`.  State (replica counts, queues,
    autoscaler history) persists across runs, mirroring the behaviour of the
    historical simulator.
    """

    def __init__(
        self,
        plan: DeploymentPlan,
        routing: str | RoutingPolicy = "least-work",
        autoscale: bool = True,
        autoscaler: HorizontalPodAutoscaler | None = None,
        initial_replicas: int | None = None,
        warm_start: bool = True,
        max_replicas: int = 256,
        sample_interval_s: float = 15.0,
        seed: int = 0,
        cost_model: str | QueryCostModel = "homogeneous",
        max_batch: int = 1,
        batch_window_s: float = 0.0,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self._cluster = Cluster.from_plan(
            plan, initial_replicas=initial_replicas, max_replicas=max_replicas
        )
        self._runtime = _TenantRuntime(
            name=plan.name,
            plan=plan,
            deployments=self._cluster.deployments,
            policy=make_routing_policy(routing),
            autoscale=autoscale,
            autoscaler=autoscaler or HorizontalPodAutoscaler(),
            sla_s=plan.cluster.sla_s,
            sample_interval_s=sample_interval_s,
            seed=seed,
            cost_model=make_cost_model(cost_model, plan.workload),
            max_batch=max_batch,
            batch_window_s=batch_window_s,
        )
        self._cluster.reconcile(0.0)
        if warm_start:
            _force_ready(self._cluster, 0.0)
        self._runtime.sync_servers(0.0)

    @property
    def cluster(self) -> Cluster:
        """The simulated cluster."""
        return self._cluster

    @property
    def routing_policy(self) -> RoutingPolicy:
        """The active replica-selection policy."""
        return self._runtime.policy

    def run(self, pattern: TrafficPattern) -> SimulationResult:
        """Simulate the plan under the given traffic pattern."""
        return _drive(self._cluster, [self._runtime], [pattern])[0]


# ----------------------------------------------------------------------
# Multi-tenant cluster simulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a multi-tenant cluster simulation.

    A tenant is one deployment plan served under its own traffic pattern with
    its own routing policy, SLA target, autoscaler and random seed.  All
    tenants share the engine's node pool, so their replicas compete for
    placement; ``max_replicas`` is the tenant's replica budget (the cap each
    of its deployments may scale to).
    """

    name: str
    plan: DeploymentPlan
    pattern: TrafficPattern
    routing: str | RoutingPolicy = "least-work"
    seed: int = 0
    autoscale: bool = True
    autoscaler: HorizontalPodAutoscaler | None = None
    sla_s: float | None = None
    sample_interval_s: float = 15.0
    initial_replicas: int | None = None
    max_replicas: int = 256
    cost_model: str | QueryCostModel = "homogeneous"
    max_batch: int = 1
    batch_window_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tenant needs a name")
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        if self.sla_s is not None and self.sla_s <= 0:
            raise ValueError("sla_s must be positive")
        if self.max_replicas <= 0:
            raise ValueError("max_replicas must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")


@dataclass
class ClusterSeries:
    """Cluster-wide time series sampled over a multi-tenant run."""

    sample_times: np.ndarray
    memory_gb: np.ndarray
    memory_utilization: np.ndarray
    pending_placements: np.ndarray
    nodes_in_use: np.ndarray

    @property
    def peak_memory_gb(self) -> float:
        """Highest allocated memory across all tenants."""
        return float(self.memory_gb.max()) if self.memory_gb.size else 0.0

    @property
    def peak_pending_placements(self) -> int:
        """Deepest pending-placement queue observed."""
        return int(self.pending_placements.max()) if self.pending_placements.size else 0

    @property
    def mean_memory_utilization(self) -> float:
        """Average fraction of pool memory allocated over the run."""
        return float(self.memory_utilization.mean()) if self.memory_utilization.size else 0.0

    def summary(self) -> dict[str, float]:
        """Headline cluster-wide aggregates."""
        return {
            "peak_memory_gb": self.peak_memory_gb,
            "mean_memory_utilization": self.mean_memory_utilization,
            "peak_pending_placements": float(self.peak_pending_placements),
            "peak_nodes_in_use": float(self.nodes_in_use.max()) if self.nodes_in_use.size else 0.0,
        }


@dataclass
class MultiTenantResult:
    """Per-tenant results plus cluster-wide series of one multi-tenant run."""

    tenants: dict[str, SimulationResult]
    cluster_series: ClusterSeries

    def tenant(self, name: str) -> SimulationResult:
        """One tenant's result by name."""
        try:
            return self.tenants[name]
        except KeyError:
            raise KeyError(f"no tenant named {name!r}") from None

    @property
    def total_queries(self) -> int:
        """Queries served across every tenant."""
        return sum(r.tracker.num_samples for r in self.tenants.values())

    def summary(self) -> dict[str, dict]:
        """Cluster aggregates plus each tenant's headline aggregates."""
        cluster = self.cluster_series.summary()
        cluster["total_queries"] = float(self.total_queries)
        return {
            "cluster": cluster,
            "tenants": {name: result.summary() for name, result in self.tenants.items()},
        }

    def sla_report(self) -> list[dict[str, object]]:
        """One row per tenant: SLA target, violations and headline latency."""
        rows = []
        for name, result in self.tenants.items():
            rows.append(
                {
                    "tenant": name,
                    "routing": result.routing,
                    "sla_ms": result.sla_s * 1000.0,
                    "queries": result.tracker.num_samples,
                    "p95_latency_ms": result.overall_p95_latency_ms,
                    "sla_violations": result.sla_violation_count(),
                    "sla_violation_fraction": result.sla_violation_fraction(),
                }
            )
        return rows

    def worst_tenant(self) -> str:
        """The tenant with the highest SLA-violation fraction."""
        return max(self.tenants, key=lambda name: self.tenants[name].sla_violation_fraction())


class _ClusterProbe:
    """Samples cluster-wide metrics at tenant sample points (dedup by time)."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self._points: dict[float, tuple[float, float, int, int]] = {}

    def __call__(self, now: float) -> None:
        # At a given timestamp every reconcile precedes every sample and
        # sampling never mutates the cluster, so the first snapshot stands.
        if now in self._points:
            return
        self._points[now] = (
            self._cluster.allocated_memory_gb,
            self._cluster.memory_utilization(),
            self._cluster.pending_placement_count,
            self._cluster.nodes_in_use(),
        )

    def series(self) -> ClusterSeries:
        times = sorted(self._points)
        values = [self._points[t] for t in times]
        return ClusterSeries(
            sample_times=np.asarray(times),
            memory_gb=np.asarray([v[0] for v in values]),
            memory_utilization=np.asarray([v[1] for v in values]),
            pending_placements=np.asarray([v[2] for v in values], dtype=np.int64),
            nodes_in_use=np.asarray([v[3] for v in values], dtype=np.int64),
        )


class MultiTenantEngine:
    """N tenants competing for one shared, capacity-constrained node pool.

    Each :class:`TenantSpec` brings its own deployment plan, traffic pattern,
    routing policy, SLA target, autoscaler and seed; the engine hosts every
    tenant's deployments (namespaced ``<tenant>/<shard>`` when there is more
    than one tenant) on a single
    :class:`~repro.cluster.cluster.Cluster` whose node pool is fixed by
    ``cluster_spec``.  One event heap drives all tenants, so arrivals,
    autoscaler ticks and reconciles from different tenants interleave in
    timestamp order and replicas compete for placement through the shared
    bin-packing scheduler — replicas that do not fit queue as pending
    placements (visible in :class:`ClusterSeries`).

    With a single tenant the engine reproduces :class:`ServingEngine` (and
    the seed simulator) bit-for-bit for the same seed.
    """

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        cluster_spec: ClusterSpec | None = None,
        warm_start: bool = True,
    ) -> None:
        if not tenants:
            raise ValueError("at least one tenant is required")
        names = [t.name for t in tenants]
        if len(names) != len(set(names)):
            raise ValueError("tenant names must be unique")
        spec = cluster_spec if cluster_spec is not None else tenants[0].plan.cluster
        self._cluster = Cluster(spec)
        self._specs = list(tenants)
        self._runtimes: list[_TenantRuntime] = []
        for tenant in self._specs:
            deployments = self._cluster.add_plan(
                tenant.plan,
                prefix=tenant.name if len(self._specs) > 1 else None,
                initial_replicas=tenant.initial_replicas,
                max_replicas=tenant.max_replicas,
            )
            self._runtimes.append(
                _TenantRuntime(
                    name=tenant.name,
                    plan=tenant.plan,
                    deployments=deployments,
                    policy=make_routing_policy(tenant.routing),
                    autoscale=tenant.autoscale,
                    autoscaler=tenant.autoscaler or HorizontalPodAutoscaler(),
                    sla_s=tenant.sla_s if tenant.sla_s is not None else tenant.plan.cluster.sla_s,
                    sample_interval_s=tenant.sample_interval_s,
                    seed=tenant.seed,
                    cost_model=make_cost_model(tenant.cost_model, tenant.plan.workload),
                    max_batch=tenant.max_batch,
                    batch_window_s=tenant.batch_window_s,
                )
            )
        self._cluster.reconcile(0.0)
        if warm_start:
            _force_ready(self._cluster, 0.0)
        for runtime in self._runtimes:
            runtime.sync_servers(0.0)

    @property
    def cluster(self) -> Cluster:
        """The shared simulated cluster."""
        return self._cluster

    @property
    def tenant_names(self) -> list[str]:
        """Tenant names, in registration order."""
        return [t.name for t in self._specs]

    def run(self) -> MultiTenantResult:
        """Drive every tenant's traffic pattern through the shared event heap."""
        probe = _ClusterProbe(self._cluster)
        results = _drive(
            self._cluster,
            self._runtimes,
            [tenant.pattern for tenant in self._specs],
            probe=probe,
        )
        return MultiTenantResult(
            tenants={result.tenant: result for result in results},
            cluster_series=probe.series(),
        )
