"""Discrete-event serving engine: the simulation core behind the façade.

The engine replaces the monolithic per-query serving loop with a classic
discrete-event simulation: a binary heap of typed events drives the run, and
everything policy-shaped (replica selection, traffic generation, autoscaling)
is pluggable around the deterministic core.

Event types, in tie-breaking order at equal timestamps:

* ``COMPLETION`` — a query finished on one replica (scheduled only when the
  routing policy tracks in-flight queries, e.g. ``least-outstanding``);
* ``ARRIVAL`` — the next pending query arrival.  Arrivals are pre-generated
  as one sorted vector per run and consumed in *batches*: one heap event
  covers every arrival up to the next control event, so a 100k-query run
  costs thousands — not hundreds of thousands — of heap operations;
* ``AUTOSCALE`` — the control-plane tick: flush the interval's metrics into
  the registry and run the HPA evaluation;
* ``RECONCILE`` — drive the cluster toward the desired replica counts and
  mirror the active containers into replica queue servers;
* ``SAMPLE`` — append one point to every recorded time series and reset the
  per-interval accumulators.

Series post-processing (achieved QPS, windowed p95) is vectorised with a
single sort plus ``np.searchsorted`` window lookups, replacing the seed
simulator's per-window boolean masks over the full completion array.

The historical :class:`~repro.serving.simulator.ServingSimulator` API is a
thin façade over this engine; with the default ``least-work`` routing policy
the engine reproduces the seed simulator's results bit-for-bit for the same
seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.cluster.autoscaler import HorizontalPodAutoscaler
from repro.cluster.cluster import Cluster
from repro.cluster.container import ContainerState
from repro.core.plan import DeploymentPlan, ROLE_DENSE, ROLE_MONOLITHIC
from repro.hardware.perf_model import PerfModel
from repro.serving.latency import LatencyTracker
from repro.serving.replica_server import ReplicaServer
from repro.serving.routing import RoutingPolicy, make_routing_policy
from repro.serving.traffic import TrafficPattern

__all__ = ["EventKind", "ServingEngine", "SimulationResult"]


class EventKind(IntEnum):
    """Typed events of the serving engine, in same-timestamp priority order."""

    COMPLETION = 0
    ARRIVAL = 1
    AUTOSCALE = 2
    RECONCILE = 3
    SAMPLE = 4


@dataclass
class SimulationResult:
    """Time series and aggregates produced by one simulation run."""

    plan_name: str
    strategy: str
    sla_s: float
    sample_times: np.ndarray
    target_qps: np.ndarray
    achieved_qps: np.ndarray
    memory_gb: np.ndarray
    p95_latency_ms: np.ndarray
    replica_counts: dict[str, np.ndarray]
    tracker: LatencyTracker = field(repr=False, default_factory=LatencyTracker)
    routing: str = "least-work"

    @property
    def peak_memory_gb(self) -> float:
        """Highest allocated memory observed."""
        return float(self.memory_gb.max()) if self.memory_gb.size else 0.0

    @property
    def mean_latency_ms(self) -> float:
        """Mean end-to-end latency over the whole run."""
        return self.tracker.mean() * 1000.0

    @property
    def overall_p95_latency_ms(self) -> float:
        """p95 end-to-end latency over the whole run."""
        return self.tracker.percentile(95.0) * 1000.0

    def sla_violation_fraction(self) -> float:
        """Fraction of queries whose latency exceeded the SLA."""
        return self.tracker.sla_violation_fraction(self.sla_s)

    def summary(self) -> dict[str, float]:
        """Headline aggregates of the run."""
        return {
            "peak_memory_gb": self.peak_memory_gb,
            "mean_latency_ms": self.mean_latency_ms,
            "p95_latency_ms": self.overall_p95_latency_ms,
            "sla_violation_fraction": self.sla_violation_fraction(),
            "total_queries": float(self.tracker.num_samples),
        }


class ServingEngine:
    """Discrete-event simulation of one deployment plan under query traffic.

    The engine owns the simulated cluster, the autoscaler and the routing
    policy; :meth:`run` drives one traffic pattern through the event loop and
    returns a :class:`SimulationResult`.  State (replica counts, queues,
    autoscaler history) persists across runs, mirroring the behaviour of the
    historical simulator.
    """

    def __init__(
        self,
        plan: DeploymentPlan,
        routing: str | RoutingPolicy = "least-work",
        autoscale: bool = True,
        autoscaler: HorizontalPodAutoscaler | None = None,
        initial_replicas: int | None = None,
        warm_start: bool = True,
        max_replicas: int = 256,
        sample_interval_s: float = 15.0,
        seed: int = 0,
    ) -> None:
        self._plan = plan
        self._autoscale = autoscale
        self._autoscaler = autoscaler or HorizontalPodAutoscaler()
        self._sample_interval_s = float(sample_interval_s)
        if self._sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._policy = make_routing_policy(routing)
        self._perf_model = PerfModel(plan.cluster)
        self._cluster = Cluster.from_plan(
            plan, initial_replicas=initial_replicas, max_replicas=max_replicas
        )
        self._servers: dict[str, dict[str, ReplicaServer]] = {
            d.name: {} for d in self._cluster.deployments
        }
        self._service_times = {d.name: 1.0 / d.per_replica_qps for d in plan.deployments}
        self._is_monolithic = plan.strategy != "elasticrec"
        self._rpc_overhead_s = 0.0 if self._is_monolithic else self._perf_model.rpc_overhead_s()
        self._cluster.reconcile(0.0)
        if warm_start:
            self._force_ready(0.0)
        self._sync_servers(0.0)

    # ------------------------------------------------------------------
    # Cluster/replica bookkeeping
    # ------------------------------------------------------------------
    @property
    def cluster(self) -> Cluster:
        """The simulated cluster."""
        return self._cluster

    @property
    def routing_policy(self) -> RoutingPolicy:
        """The active replica-selection policy."""
        return self._policy

    def _force_ready(self, now: float) -> None:
        for deployment in self._cluster.deployments:
            for container in deployment.replicas:
                if container.state is ContainerState.STARTING:
                    container.ready_at = now
                    container.maybe_become_ready(now)

    def _sync_servers(self, now: float) -> None:
        """Mirror the cluster's active containers into replica queue servers."""
        for deployment in self._cluster.deployments:
            servers = self._servers[deployment.name]
            active_names = set()
            for container in deployment.replicas:
                if not container.is_active:
                    continue
                active_names.add(container.name)
                if container.name not in servers:
                    ready_at = container.ready_at if container.ready_at is not None else now
                    servers[container.name] = ReplicaServer(container.name, ready_at=ready_at)
            for name in list(servers):
                if name not in active_names:
                    del servers[name]

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def run(self, pattern: TrafficPattern) -> SimulationResult:
        """Simulate the plan under the given traffic pattern."""
        arrivals = pattern.arrivals(self._rng)
        self._policy.reset(np.random.default_rng([self._seed, 1]))
        tracker = LatencyTracker()
        boundaries = np.arange(
            self._sample_interval_s,
            pattern.duration_s + self._sample_interval_s,
            self._sample_interval_s,
        )
        sample_times: list[float] = []
        memory_series: list[float] = []
        replica_series: dict[str, list[int]] = {d.name: [] for d in self._cluster.deployments}
        interval_counts: dict[str, int] = {d.name: 0 for d in self._cluster.deployments}
        interval_latencies: dict[str, list[float]] = {
            d.name: [] for d in self._cluster.deployments
        }

        heap: list[tuple[float, int, int, object]] = []
        seq = itertools.count()
        for boundary in boundaries:
            heapq.heappush(heap, (float(boundary), EventKind.AUTOSCALE, next(seq), None))
            heapq.heappush(heap, (float(boundary), EventKind.RECONCILE, next(seq), None))
            heapq.heappush(heap, (float(boundary), EventKind.SAMPLE, next(seq), None))
        # Arrivals after the final sample boundary fall outside every recorded
        # interval and are never served (the seed loop behaved identically).
        num_served = (
            int(np.searchsorted(arrivals, boundaries[-1], side="right"))
            if boundaries.size
            else 0
        )
        if num_served:
            heapq.heappush(heap, (float(arrivals[0]), EventKind.ARRIVAL, next(seq), 0))
        track_completions = self._policy.needs_completion_events

        while heap:
            now, kind, _, payload = heapq.heappop(heap)
            if kind == EventKind.ARRIVAL:
                index = payload
                if track_completions:
                    # One event per arrival so completion events interleave
                    # with arrivals in timestamp order.
                    self._serve_query(
                        float(arrivals[index]),
                        tracker,
                        interval_counts,
                        interval_latencies,
                        heap=heap,
                        seq=seq,
                    )
                    if index + 1 < num_served:
                        heapq.heappush(
                            heap,
                            (float(arrivals[index + 1]), EventKind.ARRIVAL, next(seq), index + 1),
                        )
                else:
                    # Batch every arrival up to (and including) the next
                    # control event; nothing can preempt them in between.
                    horizon = heap[0][0] if heap else float("inf")
                    stop = int(np.searchsorted(arrivals, horizon, side="right"))
                    stop = min(max(stop, index + 1), num_served)
                    for i in range(index, stop):
                        self._serve_query(
                            float(arrivals[i]), tracker, interval_counts, interval_latencies
                        )
                    if stop < num_served:
                        heapq.heappush(
                            heap, (float(arrivals[stop]), EventKind.ARRIVAL, next(seq), stop)
                        )
            elif kind == EventKind.COMPLETION:
                deployment_name, server_name = payload
                self._policy.on_complete(deployment_name, server_name)
            elif kind == EventKind.AUTOSCALE:
                self._record_interval_metrics(now, interval_counts, interval_latencies)
                if self._autoscale and self._autoscaler.should_evaluate(now):
                    self._autoscaler.evaluate(
                        self._cluster.deployments, self._cluster.metrics, now
                    )
            elif kind == EventKind.RECONCILE:
                self._cluster.reconcile(now)
                self._sync_servers(now)
            else:  # EventKind.SAMPLE
                sample_times.append(now)
                memory_series.append(self._cluster.allocated_memory_gb)
                for deployment in self._cluster.deployments:
                    replica_series[deployment.name].append(len(deployment.active_replicas))
                for name in interval_counts:
                    interval_counts[name] = 0
                    interval_latencies[name] = []

        sample_times_arr = np.asarray(sample_times)
        achieved = self._achieved_qps(tracker, sample_times_arr)
        p95_series = self._p95_series(tracker, sample_times_arr)
        target = np.array([pattern.rate_at(t) for t in sample_times_arr])
        return SimulationResult(
            plan_name=self._plan.name,
            strategy=self._plan.strategy,
            sla_s=self._plan.cluster.sla_s,
            sample_times=sample_times_arr,
            target_qps=target,
            achieved_qps=achieved,
            memory_gb=np.asarray(memory_series),
            p95_latency_ms=p95_series,
            replica_counts={k: np.asarray(v) for k, v in replica_series.items()},
            tracker=tracker,
            routing=self._policy.name,
        )

    # ------------------------------------------------------------------
    # Per-query path
    # ------------------------------------------------------------------
    def _serve_query(
        self,
        arrival: float,
        tracker: LatencyTracker,
        interval_counts: dict[str, int],
        interval_latencies: dict[str, list[float]],
        heap: list | None = None,
        seq: itertools.count | None = None,
    ) -> None:
        """Route one query through every deployment it needs."""
        completions: list[float] = []
        dense_names: list[str] = []
        for deployment in self._cluster.deployments:
            servers = list(self._servers[deployment.name].values())
            server = self._policy.select(deployment.name, servers, arrival)
            if server is None:
                # No capacity at all: count a full SLA violation.
                completions.append(arrival + 2.0 * self._plan.cluster.sla_s)
                continue
            service = self._service_times[deployment.name]
            completion = server.submit(arrival, service)
            self._policy.on_submit(deployment.name, server)
            if heap is not None:
                heapq.heappush(
                    heap,
                    (completion, EventKind.COMPLETION, next(seq), (deployment.name, server.name)),
                )
            completions.append(completion)
            interval_counts[deployment.name] += 1
            if deployment.spec.role in (ROLE_DENSE, ROLE_MONOLITHIC):
                dense_names.append(deployment.name)
            else:
                interval_latencies[deployment.name].append(completion - arrival)
        query_completion = max(completions) + self._rpc_overhead_s
        latency = query_completion - arrival
        # End-to-end latency is what the dense (or monolithic) shard's HPA sees.
        for name in dense_names:
            interval_latencies[name].append(latency)
        tracker.record(arrival + latency, latency)

    def _record_interval_metrics(
        self,
        now: float,
        interval_counts: dict[str, int],
        interval_latencies: dict[str, list[float]],
    ) -> None:
        metrics = self._cluster.metrics
        for deployment in self._cluster.deployments:
            name = deployment.name
            metrics.record(f"{name}/queries", float(interval_counts[name]), now)
            latencies = interval_latencies[name]
            if latencies:
                metrics.record(f"{name}/latency_s", float(np.percentile(latencies, 95)), now)

    # ------------------------------------------------------------------
    # Series post-processing (vectorised)
    # ------------------------------------------------------------------
    def _achieved_qps(self, tracker: LatencyTracker, sample_times: np.ndarray) -> np.ndarray:
        completions = np.sort(tracker.completion_times)
        counts = np.searchsorted(completions, sample_times) - np.searchsorted(
            completions, sample_times - self._sample_interval_s
        )
        return counts / self._sample_interval_s

    def _p95_series(self, tracker: LatencyTracker, sample_times: np.ndarray) -> np.ndarray:
        completions = tracker.completion_times
        order = np.argsort(completions, kind="stable")
        sorted_completions = completions[order]
        sorted_latencies = (tracker.latencies_s * 1000.0)[order]
        window = max(self._sample_interval_s, 30.0)
        # Each window is (end - window, end]; one sort plus two binary
        # searches per sample replaces a full boolean mask per sample.
        hi = np.searchsorted(sorted_completions, sample_times, side="right")
        lo = np.searchsorted(sorted_completions, sample_times - window, side="right")
        series = np.zeros_like(sample_times)
        for index in range(sample_times.size):
            if hi[index] > lo[index]:
                series[index] = float(
                    np.percentile(sorted_latencies[lo[index] : hi[index]], 95)
                )
        return series
