"""Discrete-event serving engine: the simulation core behind the façade.

The engine replaces the monolithic per-query serving loop with a classic
discrete-event simulation: a binary heap of typed events drives the run, and
everything policy-shaped (replica selection, traffic generation, autoscaling)
is pluggable around the deterministic core.

Event types, in tie-breaking order at equal timestamps:

* ``COMPLETION`` — a query finished on one replica (scheduled only when the
  routing policy tracks in-flight queries, e.g. ``least-outstanding``);
* ``ARRIVAL`` — the next pending query arrival.  Arrivals are pre-generated
  as one sorted vector per tenant per run and consumed in *chunked drains*:
  one heap event covers every arrival up to the next control event, so a
  100k-query run costs thousands — not hundreds of thousands — of heap
  operations;
* ``AUTOSCALE`` — the coalesced control tick: every control phase that lands
  on one boundary timestamp — per-tenant interval-metric flushes and HPA
  evaluations, the shared cluster ``RECONCILE``, per-tenant ``SAMPLE``
  points — runs from a single heap event, in exactly the order the
  historical per-phase events popped at that timestamp (``on_event``
  observers still see the individual phases);
* ``RECONCILE`` — drive the cluster toward the desired replica counts and
  mirror the active containers into replica queue servers (runs inside the
  coalesced control tick);
* ``SAMPLE`` — append one point to every recorded time series and reset the
  per-interval accumulators (runs inside the coalesced control tick);
* ``FAULT`` — inject one failure from the run's fault timeline (replica
  crash, node drain, straggler window, transient degradation — see
  :mod:`repro.serving.faults`);
* ``RECOVERY`` — a fault's scheduled transition: the end of a drain's grace
  period (evict the node's containers and settle their in-flight queries),
  a node uncordon, or the end of a slowdown window.

Fault timelines are materialised at the start of each run from the tenant's
fault model (scripted events verbatim, stochastic processes sampled from the
dedicated ``[seed, 3]`` stream), so a faulty run is exactly as deterministic
as a healthy one — and a run with no faults pushes no fault events at all,
keeping it bit-exact with the fault-unaware engine.

The same event loop drives one deployment plan (:class:`ServingEngine`) or a
whole *multi-tenant cluster* (:class:`MultiTenantEngine`): N tenants, each
with its own traffic pattern, routing policy, SLA target, autoscaler and
random seed, competing for one shared capacity-constrained node pool.  Every
tenant is a :class:`_TenantRuntime` holding its slice of the cluster's
deployments plus its per-run accumulators; tenant events carry the tenant
index, so events from different tenants interleave on one heap in timestamp
order.  With a single tenant the loop degenerates to exactly the historical
single-plan behaviour — same heap contents, same RNG draws — so a
one-tenant :class:`MultiTenantEngine` reproduces :class:`ServingEngine`
(and therefore the seed simulator) bit-for-bit for the same seed.

Queries are *heterogeneous*: every run pre-samples one cost multiplier per
query from the tenant's :class:`~repro.serving.workload.QueryCostModel`
(vectorised, from a dedicated seed stream), embedding and monolithic
deployments scale their service times by it, and replicas serve *batches*
(``max_batch``/``batch_window_s``) whose service times come from the
hardware layer's :class:`~repro.hardware.perf_model.BatchLatencyModel`.
Routing policies receive the per-deployment cost hint, enabling
cost-weighted selection.  The default configuration — ``homogeneous`` cost
model, ``max_batch=1`` — reproduces the historical constant-service-time
engine bit-for-bit.

The per-query hot path is vectorised end to end: every deployment keeps a
:class:`~repro.serving.routing.ReplicaPool` — numpy arrays of queue-drain
times, readiness and availability with dirty-flag invalidation — so routing
policies rank replicas with one ``argmin`` instead of a Python pass, the
:class:`~repro.serving.latency.LatencyTracker` records into pre-allocated
buffers, and per-deployment interval accounting lives in slotted lane
structs rather than dict lookups.  ``vectorized=False`` selects the
historical scalar routing path; both paths are bit-exact (locked by
``tests/serving/test_vectorized_equivalence.py`` and the experiment golden
digests).

Series post-processing (achieved QPS, windowed p95) is vectorised with a
*single shared* stable sort of the completion times (via
:meth:`~repro.serving.latency.LatencyTracker.completion_order`) plus
``np.searchsorted`` window lookups, replacing the seed simulator's
per-window boolean masks over the full completion array.

The historical :class:`~repro.serving.simulator.ServingSimulator` API is a
thin façade over this engine; with the default ``least-work`` routing policy
the engine reproduces the seed simulator's results bit-for-bit for the same
seed.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Sequence

import numpy as np

from repro.cluster.autoscaler import HorizontalPodAutoscaler
from repro.cluster.cluster import Cluster
from repro.cluster.container import ContainerState
from repro.cluster.deployment import Deployment
from repro.core.plan import DeploymentPlan, ROLE_DENSE, ROLE_MONOLITHIC
from repro.hardware.perf_model import PerfModel, cache_adjusted_multiplier
from repro.hardware.specs import ClusterSpec
from repro.serving.faults import (
    FaultModel,
    NodeDrain,
    ReplicaCrash,
    StragglerSlowdown,
    TransientDegradation,
    make_fault_model,
    validate_fault_spec,
)
from repro.serving.latency import LatencyTracker
from repro.serving.replanner import (
    DriftDetector,
    ReplanPolicy,
    make_replan_policy,
    validate_replan_spec,
)
from repro.serving.replica_server import CacheSpec, ReplicaCache, ReplicaServer
from repro.serving.routing import ReplicaPool, RoutingPolicy, make_routing_policy
from repro.serving.streaming import ShardManifest, SpoolWriter, StreamConfig
from repro.serving.traffic import TrafficPattern
from repro.serving.watchdog import (
    WATCHDOG_SERIES_KEYS,
    SloPolicy,
    SloWatchdog,
    make_slo_policy,
    retry_allowed,
    validate_slo_spec,
)
from repro.serving.workload import (
    QueryCostModel,
    degraded_gather_multiplier,
    drift_endpoint_model,
    make_cost_model,
    make_drift_model,
    sample_drifting_priced,
    validate_drift_spec,
)

__all__ = [
    "EventKind",
    "ServingEngine",
    "SimulationResult",
    "TenantSpec",
    "MultiTenantEngine",
    "MultiTenantResult",
    "ClusterSeries",
]


class EventKind(IntEnum):
    """Typed events of the serving engine, in same-timestamp priority order."""

    COMPLETION = 0
    ARRIVAL = 1
    AUTOSCALE = 2
    RECONCILE = 3
    SAMPLE = 4
    FAULT = 5
    RECOVERY = 6
    #: Online re-planning: a ``("fire", ...)`` event starts the shard-copy
    #: migration toward a successor plan; its ``("cutover", ...)`` twin lands
    #: when the copies complete and swaps the plan in (invalidating caches).
    REPLAN = 7
    #: SLO watchdog actuation: a typed ladder action — ``("degrade", level)``,
    #: ``("recover", level)`` or ``("escalate",)`` — relayed from the sample
    #: tick onto the heap so it applies in deterministic event order.
    WATCHDOG = 8
    #: A per-query attempt timeout under armed deadlines: decide between a
    #: budgeted retry (backoff + jitter, storm-guarded) and a final timeout.
    TIMEOUT = 9
    #: A scheduled client retry re-issuing one query across all lanes.
    RETRY = 10


@dataclass
class SimulationResult:
    """Time series and aggregates produced by one simulation run."""

    plan_name: str
    strategy: str
    sla_s: float
    sample_times: np.ndarray
    target_qps: np.ndarray
    achieved_qps: np.ndarray
    memory_gb: np.ndarray
    p95_latency_ms: np.ndarray
    replica_counts: dict[str, np.ndarray]
    tracker: LatencyTracker = field(repr=False, default_factory=LatencyTracker)
    routing: str = "least-work"
    tenant: str = ""
    utilization: dict[str, np.ndarray] = field(default_factory=dict)
    cost_model: str = "homogeneous"
    max_batch: int = 1
    #: Per-deployment mean queries-per-batch over each sample interval
    #: (0.0 where the interval completed no batches).
    batch_occupancy: dict[str, np.ndarray] = field(default_factory=dict)
    #: Name of the fault model driving the run ("none" for a healthy fleet).
    faults: str = "none"
    #: Per-deployment fraction of the interval's queries that were served
    #: (neither rejected for lack of capacity nor dropped by a crash).
    availability: dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-deployment count of crash-displaced queries re-queued per interval.
    requeues: dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-deployment mean embedding-cache hit rate over each sample interval
    #: (only populated for cache-bearing deployments of a cached run; empty
    #: on cache-less runs, so their digests are untouched).
    cache_hit_rate: dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-replica embedding-cache budget the run was configured with
    #: (0.0 means no cache tier).
    cache_mb: float = 0.0
    #: Queries rejected outright because a deployment had no routable replica.
    rejected_queries: int = 0
    #: Queries killed mid-flight by a crash/drain under the ``drop`` policy
    #: (or re-queued into a deployment with no survivors).
    dropped_queries: int = 0
    #: Crash-displaced queries successfully re-queued onto a surviving replica.
    requeued_queries: int = 0
    #: Fault events that actually struck this tenant: one per crash,
    #: straggler window, degradation window, or node drain that hit at least
    #: one of the tenant's replicas.  Misfires (a crash against an empty
    #: deployment, a drain of a node hosting none of the tenant's replicas)
    #: are not counted.
    faults_injected: int = 0
    #: Access-skew drift spec the run was configured with ("none" when the
    #: distribution is static).  Deliberately outside :meth:`digest`: the
    #: digest fingerprints the simulated series, and a zero-weight drift is
    #: bit-identical with no drift at all.
    drift: str = "none"
    #: Re-plan trigger spec ("none" when the initial plan is final).
    replan: str = "none"
    #: Successor plans actually cut over to mid-run.
    replans_applied: int = 0
    #: SLO watchdog spec ("none" when the control plane is off).
    slo: str = "none"
    #: Queries whose deadline expired with the retry budget exhausted.
    timeout_queries: int = 0
    #: Queries served under quality fallback (cache-hot-only gathers).
    degraded_queries: int = 0
    #: Arrivals voluntarily rejected by watchdog admission control.  A
    #: subset of ``rejected_queries`` — the involuntary remainder is
    #: ``rejected_queries - shed_queries``.
    shed_queries: int = 0
    #: Client retries actually launched (re-issues, not distinct queries).
    retried_queries: int = 0
    #: Sample ticks on which at least one tier-1 SLA rule breached.
    slo_tier1_breaches: int = 0
    #: Sample ticks on which the tier-2 distribution tests flagged a shift.
    slo_tier2_flags: int = 0
    #: Ladder escalations handed to the re-planner.
    slo_escalations: int = 0
    #: Ladder levels recovered after tier-2 reported reconciliation.
    slo_recoveries: int = 0
    #: Per-interval watchdog series ("level", "shed", "timeouts",
    #: "degraded"); empty on watchdog-off runs, so their digests are
    #: untouched.
    watchdog_series: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def completed_queries(self) -> int:
        """Queries served to completion (arrivals minus rejections, drops
        and deadline timeouts — the conservation identity
        ``completions + rejections + drops + timeouts == arrivals``)."""
        return (
            self.tracker.num_samples
            - self.rejected_queries
            - self.dropped_queries
            - self.timeout_queries
        )

    @property
    def availability_fraction(self) -> float:
        """Fraction of all arrivals that were served (1.0 with no traffic)."""
        if self.tracker.num_samples == 0:
            return 1.0
        return self.completed_queries / self.tracker.num_samples

    def reliability_summary(self) -> dict[str, float]:
        """Fault-facing aggregates of the run (all zeros for a healthy fleet)."""
        return {
            "availability": self.availability_fraction,
            "completed_queries": float(self.completed_queries),
            "rejected_queries": float(self.rejected_queries),
            "dropped_queries": float(self.dropped_queries),
            "requeued_queries": float(self.requeued_queries),
            "faults_injected": float(self.faults_injected),
            "timeout_queries": float(self.timeout_queries),
            "degraded_queries": float(self.degraded_queries),
            "shed_queries": float(self.shed_queries),
            "retried_queries": float(self.retried_queries),
        }

    def digest(self) -> str:
        """Deterministic fingerprint of the run's series and aggregates."""
        hasher = hashlib.sha256()
        for array in (
            self.sample_times,
            self.target_qps,
            self.achieved_qps,
            self.memory_gb,
            self.p95_latency_ms,
            self.tracker.completion_times,
            self.tracker.latencies_s,
        ):
            hasher.update(np.ascontiguousarray(array).tobytes())
        # cache_hit_rate / watchdog_series are empty on cache-less /
        # watchdog-off runs, so hashing them there is a no-op and every
        # pre-cache / pre-watchdog digest is preserved bit-for-bit.
        for mapping in (
            self.replica_counts,
            self.availability,
            self.requeues,
            self.cache_hit_rate,
            self.watchdog_series,
        ):
            for name in sorted(mapping):
                hasher.update(name.encode())
                hasher.update(np.ascontiguousarray(mapping[name]).tobytes())
        hasher.update(repr(sorted(self.summary().items())).encode())
        hasher.update(repr(sorted(self.reliability_summary().items())).encode())
        return hasher.hexdigest()

    @property
    def peak_memory_gb(self) -> float:
        """Highest allocated memory observed."""
        return float(self.memory_gb.max()) if self.memory_gb.size else 0.0

    @property
    def mean_latency_ms(self) -> float:
        """Mean end-to-end latency over the whole run (0.0 with no traffic)."""
        if self.tracker.num_samples == 0:
            return 0.0
        return self.tracker.mean() * 1000.0

    @property
    def overall_p95_latency_ms(self) -> float:
        """p95 end-to-end latency over the whole run (0.0 with no traffic)."""
        if self.tracker.num_samples == 0:
            return 0.0
        return self.tracker.percentile(95.0) * 1000.0

    def sla_violation_fraction(self) -> float:
        """Fraction of queries whose latency exceeded the SLA."""
        return self.tracker.sla_violation_fraction(self.sla_s)

    def sla_violation_count(self) -> int:
        """Number of queries whose latency exceeded the SLA."""
        return self.tracker.count_exceeding(self.sla_s)

    def summary(self) -> dict[str, float]:
        """Headline aggregates of the run."""
        return {
            "peak_memory_gb": self.peak_memory_gb,
            "mean_latency_ms": self.mean_latency_ms,
            "p95_latency_ms": self.overall_p95_latency_ms,
            "sla_violation_fraction": self.sla_violation_fraction(),
            "total_queries": float(self.tracker.num_samples),
        }


# ----------------------------------------------------------------------
# Series post-processing (vectorised)
# ----------------------------------------------------------------------
def _metric_series(
    tracker: LatencyTracker, sample_times: np.ndarray, interval_s: float
) -> tuple[np.ndarray, np.ndarray]:
    """Achieved-QPS and rolling-p95 series sharing one completion sort.

    The tracker's cached stable argsort orders completions and latencies
    once; both series then reduce to binary searches over the sorted arrays
    (the historical implementation sorted the completion array independently
    per series).
    """
    order = tracker.completion_order()
    sorted_completions = tracker.completion_times[order]
    sorted_latencies = (tracker.latencies_s * 1000.0)[order]
    counts = np.searchsorted(sorted_completions, sample_times) - np.searchsorted(
        sorted_completions, sample_times - interval_s
    )
    achieved_qps = counts / interval_s
    window = max(interval_s, 30.0)
    # Each window is (end - window, end]; two binary searches per sample
    # replace a full boolean mask per sample.
    hi = np.searchsorted(sorted_completions, sample_times, side="right")
    lo = np.searchsorted(sorted_completions, sample_times - window, side="right")
    p95_series = np.zeros_like(sample_times)
    for index in range(sample_times.size):
        if hi[index] > lo[index]:
            p95_series[index] = float(
                np.percentile(sorted_latencies[lo[index] : hi[index]], 95)
            )
    return achieved_qps, p95_series


def _force_ready(cluster: Cluster, now: float) -> None:
    """Promote every placed-but-starting container to RUNNING (warm start)."""
    for deployment in cluster.deployments:
        for container in deployment.replicas:
            if container.state is ContainerState.STARTING:
                container.ready_at = now
                container.maybe_become_ready(now)


class _DeploymentLane:
    """Hot per-deployment state walked once per query by ``serve_query``.

    A lane bundles everything the routing loop needs — the deployment name,
    its replica pool, the mean service time, the role flags and the
    per-interval accumulators — into one slotted struct, so the per-query
    path does no dict lookups.
    """

    __slots__ = (
        "name",
        "pool",
        "service_s",
        "cost_bearing",
        "dense",
        "cached",
        "server_list",
        "count",
        "latencies",
        "hit_sum",
        "gather_sum",
    )

    def __init__(
        self,
        name: str,
        pool: ReplicaPool,
        service_s: float,
        cost_bearing: bool,
        dense: bool,
        cached: bool = False,
    ) -> None:
        self.name = name
        self.pool = pool
        self.service_s = service_s
        self.cost_bearing = cost_bearing
        self.dense = dense
        #: Whether this lane's replicas carry embedding caches.  The cache
        #: geometry itself is not lane state: every cached lane shares the
        #: tenant's one ``CacheSpec``, so the engine keeps it flattened in
        #: ``_TenantRuntime.cache_geometry`` and unpacks it into locals once
        #: per query rather than re-reading per-lane slots.
        self.cached = cached
        #: The deployment's live replica servers (dict-values order),
        #: maintained on membership changes so the scalar routing path does
        #: not rebuild the list per query.
        self.server_list: list[ReplicaServer] = []
        #: Queries offered to the deployment this sample interval.
        self.count = 0
        #: Shard latencies recorded this sample interval (end-to-end for
        #: dense/monolithic lanes).
        self.latencies: list[float] = []
        #: Cache-hit accounting for the interval: expected gathers served
        #: from cache and total gathers offered (cached lanes only).
        self.hit_sum = 0.0
        self.gather_sum = 0.0


class _TenantRuntime:
    """One tenant's slice of the simulated cluster plus its run accumulators.

    Persistent state (replica servers, arrival RNG, autoscaler history)
    survives across runs, mirroring the historical simulator; per-run
    accumulators are reset by :meth:`begin_run`.
    """

    def __init__(
        self,
        name: str,
        plan: DeploymentPlan,
        deployments: Sequence[Deployment],
        policy: RoutingPolicy,
        autoscale: bool,
        autoscaler: HorizontalPodAutoscaler,
        sla_s: float,
        sample_interval_s: float,
        seed: int,
        cost_model: QueryCostModel | None = None,
        max_batch: int = 1,
        batch_window_s: float = 0.0,
        faults: str | FaultModel | None = None,
        vectorized: bool = True,
        stream: StreamConfig | None = None,
        cache_mb: float = 0.0,
        drift: str | object | None = None,
        replan: str | ReplanPolicy | None = None,
        slo: str | SloPolicy | None = None,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if cache_mb < 0:
            raise ValueError("cache_mb must be non-negative")
        validate_fault_spec(faults)
        validate_drift_spec(drift)
        validate_replan_spec(replan)
        validate_slo_spec(slo)
        # Streamed mode: per-interval series and settled tracker samples are
        # flushed to this tenant's spool directory instead of accumulating
        # in RAM for the whole run (the values written are bit-identical).
        self.stream = stream
        self.stream_writer = SpoolWriter(stream.directory) if stream is not None else None
        self.name = name
        self.plan = plan
        self.deployments = list(deployments)
        self.policy = policy
        self.autoscale = autoscale
        self.autoscaler = autoscaler
        self.sla_s = float(sla_s)
        self.sample_interval_s = float(sample_interval_s)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.cost_model = (
            cost_model if cost_model is not None else make_cost_model("homogeneous")
        )
        self.max_batch = int(max_batch)
        self.batch_window_s = float(batch_window_s)
        self.faults_spec = faults
        self.servers: dict[str, dict[str, ReplicaServer]] = {
            d.name: {} for d in self.deployments
        }
        self.service_times = {
            d.name: 1.0 / d.spec.per_replica_qps for d in self.deployments
        }
        is_monolithic = plan.strategy != "elasticrec"
        perf_model = PerfModel(plan.cluster)
        self.rpc_overhead_s = 0.0 if is_monolithic else perf_model.rpc_overhead_s()
        self.dense_roles = {
            d.name: d.spec.role in (ROLE_DENSE, ROLE_MONOLITHIC) for d in self.deployments
        }
        # Pure dense shards do not gather embeddings, so per-query cost
        # multipliers only apply to embedding and monolithic deployments.
        self.cost_bearing = {
            d.name: d.spec.role != ROLE_DENSE for d in self.deployments
        }
        # Per-replica embedding cache: one shared spec per tenant, sized in
        # hot rows from the HBM budget; the mutable fill state lives on each
        # ReplicaServer so replacement containers restart cold.
        self.cache_mb = float(cache_mb)
        self.cache_spec: CacheSpec | None = None
        self.cache_hit_cost = 0.0
        if self.cache_mb > 0:
            if not getattr(self.cost_model, "supports_gather_splits", False):
                raise ValueError(
                    "the embedding cache needs per-query gather splits; "
                    "use the skewed cost model (--cost-model skewed)"
                )
            embedding = plan.workload.embedding
            row_bytes = embedding.embedding_dim * embedding.dtype_bytes
            capacity_rows = int(self.cache_mb * 1e6 // row_bytes)
            if capacity_rows >= 1:
                self.cache_spec = CacheSpec(
                    self.cost_model.distribution,
                    capacity_rows,
                    hot_rows=self.cost_model.hot_rank_limit,
                    hit_cost_fraction=self.cost_model.hot_cost_fraction,
                )
                self.cache_hit_cost = self.cache_spec.hit_cost_fraction
        self.caches_on = self.cache_spec is not None
        # The tenant's one shared cache geometry, flattened into a tuple the
        # hot path unpacks into locals once per query (the adjacent-point
        # grid differences are precomputed so the in-loop lerp is one
        # multiply-add per grid — the same IEEE subtraction
        # ``CacheSpec.hit_fractions`` performs, hoisted out of the loop).
        self.cache_geometry: tuple | None = None
        if self.cache_spec is not None:
            spec = self.cache_spec
            grid_hot = spec.grid_hot
            grid_cold = spec.grid_cold
            self.cache_geometry = (
                spec.step,
                float(spec.capacity_eff),
                grid_hot,
                grid_cold,
                [b - a for a, b in zip(grid_hot, grid_hot[1:])],
                [b - a for a, b in zip(grid_cold, grid_cold[1:])],
                len(grid_hot) - 1,
                grid_hot[-1],
                grid_cold[-1],
                spec.hit_cost_fraction,
                1.0 - spec.hit_cost_fraction,
            )
        self.cache_enabled = {
            d.name: self.caches_on and self.cost_bearing[d.name]
            for d in self.deployments
        }
        # Access-skew drift and online re-planning (ROADMAP item 1).  Drift
        # re-samples each query's gather set against a time-indexed mixture
        # of two distribution endpoints; the replan policy watches the live
        # p95 series and swaps in a successor plan mid-run.  Both resolve
        # here, once, so a malformed spec fails at construction time.
        self.drift_spec = drift
        self.drift_name = "none"
        self.drift_model = None
        self.end_cost_model = None
        if drift is not None and not (
            isinstance(drift, str) and drift.strip().lower() in ("", "none")
        ):
            if not getattr(self.cost_model, "supports_gather_splits", False):
                raise ValueError(
                    "access-skew drift needs per-query gather sampling; "
                    "use the skewed cost model (--cost-model skewed)"
                )
            self.drift_model = make_drift_model(drift, self.cost_model.distribution)
            self.drift_name = drift if isinstance(drift, str) else "custom"
            self.end_cost_model = drift_endpoint_model(
                self.cost_model, self.drift_model.end
            )
        self.drift_on = self.drift_model is not None
        self.replan_policy = make_replan_policy(replan)
        self.replan_name = "none"
        if self.replan_policy is not None:
            self.replan_name = replan if isinstance(replan, str) else "custom"
            if plan.strategy != "elasticrec" or plan.sharding is None:
                raise ValueError(
                    "online re-planning needs an elasticrec plan with a "
                    "sharding layout to re-partition (strategy 'elasticrec')"
                )
        # SLO watchdog control plane (ROADMAP item 5).  Resolved once, here,
        # so a malformed --slo spec fails at construction time with the
        # grammar hint; the per-run state lives in begin_run.
        self.slo_policy = make_slo_policy(slo)
        self.slo_name = "none"
        if self.slo_policy is not None:
            self.slo_name = slo if isinstance(slo, str) else "custom"
        self.batch_models = {
            d.name: perf_model.batch_model(d.spec.role) for d in self.deployments
        }
        # Batch/query counters of replicas that were scaled away, so interval
        # occupancy deltas survive server churn.
        self._retired_totals: dict[str, list[int]] = {
            d.name: [0, 0] for d in self.deployments
        }
        self.vectorized = bool(vectorized)
        # Vectorized routing state: one replica pool per deployment, mirroring
        # its servers dict; membership and failed/draining changes invalidate
        # the pool, accepted queries update its queue-drain array in place.
        self.pools: dict[str, ReplicaPool] = {
            d.name: ReplicaPool(self.servers[d.name]) for d in self.deployments
        }
        self._lanes = [
            _DeploymentLane(
                name=d.name,
                pool=self.pools[d.name],
                service_s=self.service_times[d.name],
                cost_bearing=self.cost_bearing[d.name],
                dense=self.dense_roles[d.name],
                cached=self.cache_enabled[d.name],
            )
            for d in self.deployments
        ]
        self._lane_by_name = {lane.name: lane for lane in self._lanes}
        # Dense/monolithic lanes receive the query's end-to-end latency (the
        # signal their HPA scales on); the set is fixed by the plan.
        self._dense_lanes = [lane for lane in self._lanes if lane.dense]
        # Most policies leave the base no-op on_submit untouched; skip the
        # per-lane-per-query call entirely for them.
        self.policy_on_submit = (
            policy.on_submit
            if type(policy).on_submit is not RoutingPolicy.on_submit
            else None
        )

    # ------------------------------------------------------------------
    # Cluster/replica bookkeeping
    # ------------------------------------------------------------------
    @property
    def allocated_memory_gb(self) -> float:
        """Memory reserved by this tenant's active replicas, in GB."""
        return sum(d.allocated_memory_bytes for d in self.deployments) / 1e9

    def sync_servers(self, now: float) -> None:
        """Mirror the tenant's active containers into replica queue servers."""
        for deployment in self.deployments:
            servers = self.servers[deployment.name]
            cached = self.cache_enabled[deployment.name]
            active_names = set()
            changed = False
            for container in deployment.replicas:
                if not container.is_active:
                    continue
                active_names.add(container.name)
                if container.name not in servers:
                    ready_at = container.ready_at if container.ready_at is not None else now
                    # Every new container gets a fresh, *empty* cache: a
                    # crash replacement or drain-evicted replica's successor
                    # restarts cold and warms up from the queries it serves.
                    servers[container.name] = ReplicaServer(
                        container.name,
                        ready_at=ready_at,
                        max_batch=self.max_batch,
                        batch_window_s=self.batch_window_s,
                        batch_model=self.batch_models[deployment.name],
                        cache=ReplicaCache(self.cache_spec) if cached else None,
                    )
                    changed = True
            for name in list(servers):
                if name not in active_names:
                    retired = servers.pop(name)
                    totals = self._retired_totals[deployment.name]
                    totals[0] += retired.completed_queries
                    totals[1] += retired.completed_batches
                    changed = True
            if changed:
                self.pools[deployment.name].invalidate()
                self._lane_by_name[deployment.name].server_list = list(servers.values())

    def invalidate_caches(self) -> None:
        """Drop every replica's cached rows (they all restart cold).

        The re-sharding hook: when a future online re-planner (ROADMAP item
        1) moves table shards between deployments, the rows a replica cached
        no longer live where its queries will look for them, so the whole
        tier invalidates and the hit-rate series dips until the caches
        re-warm from served traffic.
        """
        for servers in self.servers.values():
            for server in servers.values():
                if server.cache is not None:
                    server.cache.invalidate()
        # Keep the pools' mirrored fill arrays consistent with the caches —
        # one O(1) array clear per deployment on the vectorized path.
        for pool in self.pools.values():
            pool.reset_fills()

    # ------------------------------------------------------------------
    # Per-run lifecycle
    # ------------------------------------------------------------------
    def begin_run(self, pattern: TrafficPattern) -> None:
        """Reset the per-run accumulators and draw this run's arrivals."""
        self.pattern = pattern
        self.arrivals = pattern.arrivals(self.rng)
        # The chunked arrival drain walks Python floats; one bulk conversion
        # replaces a per-element numpy-scalar unboxing in the hot loop.  A
        # streamed run skips the whole-run list (it costs ~4x the float64
        # array's footprint) and converts one drain chunk at a time instead.
        self.arrival_list: list[float] | None = (
            None if self.stream is not None else self.arrivals.tolist()
        )
        self.policy.reset(np.random.default_rng([self.seed, 1]))
        # Pre-sample every query's cost multiplier, vectorised, from a
        # dedicated seed stream (the homogeneous model never draws, so it
        # cannot perturb any other stream of the run).  Streamed runs keep
        # the float64 array (indexing yields the same values bit-for-bit).
        self.query_hot: "list[float] | np.ndarray | None" = None
        self.query_cold: "list[float] | np.ndarray | None" = None
        self.query_total: "list[float] | np.ndarray | None" = None
        self.query_warm_hits: "list[float] | np.ndarray | None" = None
        self.query_warm_scale: "list[float] | np.ndarray | None" = None
        if self.cost_model.is_homogeneous:
            self.query_multipliers: "list[float] | np.ndarray | None" = None
        else:
            cost_rng = np.random.default_rng([self.seed, 2])
            if self.drift_on:
                # Drift-aware sampling.  The [seed, 2] cost stream is consumed
                # exactly as the drift-free path consumes it (start-endpoint
                # pool, then per-query assignment); the end-endpoint pool and
                # the per-query endpoint choice draw only from the dedicated
                # [seed, 4] drift stream — so a zero-weight drift reproduces
                # the drift-free run bit-for-bit, and drift-off runs never
                # touch [seed, 4] at all.
                drift_rng = np.random.default_rng([self.seed, 4])
                weights = self.drift_model.weight_at(self.arrivals)
                (
                    multipliers,
                    hot,
                    cold,
                    total,
                    start_mean,
                    end_mean,
                ) = sample_drifting_priced(
                    self.cost_model,
                    self.end_cost_model,
                    weights,
                    cost_rng,
                    drift_rng,
                )
                self._drift_means = (start_mean, end_mean)
                if self.caches_on:
                    self._store_cache_pricing(hot, cold, total)
                elif self.slo_policy is not None:
                    self._store_gather_splits(hot, cold)
            elif self.caches_on:
                # The split-returning variant consumes the RNG identically to
                # plain sample(), so the multipliers (and every downstream
                # draw) match the cache-less run bit-for-bit.  The pre-priced
                # totals are the exact per-query ``hot + cold`` sums, summed
                # once per profile instead of twice per lane per query.
                multipliers, hot, cold, total = self.cost_model.sample_priced(
                    self.arrivals.size, cost_rng
                )
                self._store_cache_pricing(hot, cold, total)
            elif self.slo_policy is not None and getattr(
                self.cost_model, "supports_gather_splits", False
            ):
                # Watchdog quality fallback prices cache-hot-only gathers, so
                # a cache-less watchdog run keeps the splits.  sample_priced
                # consumes the RNG identically to plain sample(), and
                # query_total stays None, so the cache hot path stays off and
                # the multipliers match the unguarded run bit-for-bit.
                multipliers, hot, cold, _ = self.cost_model.sample_priced(
                    self.arrivals.size, cost_rng
                )
                self._store_gather_splits(hot, cold)
            else:
                multipliers = self.cost_model.sample(self.arrivals.size, cost_rng)
            self.query_multipliers = (
                multipliers if self.stream is not None else multipliers.tolist()
            )
        # Re-plan state: the detector is re-armed per run; fires are relayed
        # through the event loop as REPLAN heap events so migrations keep the
        # typed-event timeline (and its monotonicity invariant).
        self.detector = (
            DriftDetector(self.replan_policy, self.sla_s)
            if self.replan_policy is not None
            else None
        )
        self.replan_requested = False
        self.replan_in_progress = False
        self.pending_successor = None
        self.replans_applied = 0
        # Watchdog state.  Off-mode (the default) arms nothing, keeps every
        # per-run container empty and — critically — never constructs the
        # dedicated [seed, 5] stream, so a watchdog-off run is bit-exact
        # with the pre-watchdog engine.
        self.watchdog_on = self.slo_policy is not None
        self.watchdog: SloWatchdog | None = None
        self.slo_rng: np.random.Generator | None = None
        if self.watchdog_on:
            policy = self.slo_policy
            self.watchdog = SloWatchdog(policy, self.sla_s)
            self.slo_rng = np.random.default_rng([self.seed, 5])
            self.deadline_s = policy.deadline_beta * self.sla_s
            self.attempt_timeout_s = policy.timeout_beta * self.sla_s
            self.shed_fraction_value = policy.shed_fraction
            self._hot_cost_fraction = getattr(
                self.cost_model, "hot_cost_fraction", 0.0
            )
        self.shed_armed = False
        self.deadline_armed = False
        self.fallback_armed = False
        #: Ladder actions pending relay onto the heap as WATCHDOG events.
        self.watchdog_actions: list[tuple] = []
        self.timeout_indices: set[int] = set()
        self.degraded_indices: set[int] = set()
        self.shed_count = 0
        self.retried_count = 0
        #: tracker index -> retries already launched for that query.
        self.retry_attempts: dict[int, int] = {}
        #: tracker index -> token of its one live TIMEOUT/RETRY event.  A
        #: popped event whose token no longer matches is stale and inert, so
        #: crash-rescheduling can never double-fire a query's timeout path.
        self.pending_event: dict[int, int] = {}
        #: Completion-time min-heaps approximating the live population for
        #: the retry-storm guard (lazily pruned against ``now``).
        self._live_completions: list[float] = []
        self._retry_resolutions: list[float] = []
        self._retries_scheduled = 0
        self.interval_arrivals = 0
        self.interval_shed = 0
        self.interval_rejected = 0
        self.interval_timeouts = 0
        self.interval_degraded = 0
        self.watchdog_series: dict[str, list[float]] = (
            {key: [] for key in WATCHDOG_SERIES_KEYS} if self.watchdog_on else {}
        )
        self.tracker = LatencyTracker()
        self.boundaries = np.arange(
            self.sample_interval_s,
            pattern.duration_s + self.sample_interval_s,
            self.sample_interval_s,
        )
        self.sample_times: list[float] = []
        self.memory_series: list[float] = []
        self.replica_series: dict[str, list[int]] = {d.name: [] for d in self.deployments}
        self.utilization_series: dict[str, list[float]] = {
            d.name: [] for d in self.deployments
        }
        for lane in self._lanes:
            lane.count = 0
            lane.latencies = []
            lane.hit_sum = 0.0
            lane.gather_sum = 0.0
        for pool in self.pools.values():
            pool.invalidate()
        self.cache_hit_series: dict[str, list[float]] = {
            lane.name: [] for lane in self._lanes if lane.cached
        }
        self.batch_occupancy_series: dict[str, list[float]] = {
            d.name: [] for d in self.deployments
        }
        self._occupancy_marks: dict[str, tuple[int, int]] = {
            d.name: self._served_totals(d.name) for d in self.deployments
        }
        # Arrivals after the final sample boundary fall outside every recorded
        # interval and are never served (the seed loop behaved identically).
        self.num_served = (
            int(np.searchsorted(self.arrivals, self.boundaries[-1], side="right"))
            if self.boundaries.size
            else 0
        )
        self.track_completions = self.policy.needs_completion_events
        # Fault state.  A run whose model resolves to nothing (including the
        # default no-fault configuration) keeps ``faults_on`` False, skips
        # the in-flight registry entirely, and never touches the fault RNG —
        # so it stays bit-exact with the fault-unaware engine.
        fault_model = make_fault_model(self.faults_spec, pattern.duration_s)
        self.faults_name = "none"
        self.fault_timeline: list[tuple[float, object]] = []
        if fault_model is not None:
            self.faults_name = fault_model.name
            self.fault_rng = np.random.default_rng([self.seed, 3])
            self.fault_timeline = fault_model.timeline(pattern.duration_s, self.fault_rng)
        self.faults_on = bool(self.fault_timeline)
        # In-flight tracking is wider than faults_on: a tenant with no fault
        # model of its own still needs its in-flight registry when *another*
        # tenant's node drain can evict its replicas, so the driver turns
        # this on for every tenant as soon as any tenant has a timeline.
        self.track_inflight = self.faults_on
        self.faults_injected = 0
        #: (deployment, replica) -> stack of active straggler factors.
        #: Stacks (not scalars) so overlapping windows compose: each window
        #: pushes its factor and its recovery removes that one occurrence,
        #: leaving any still-open window in force.
        self.slowdowns: dict[tuple[str, str], list[float]] = {}
        #: deployment -> stack of active transient-degradation factors.
        self.degradations: dict[str, list[float]] = {}
        #: (deployment, replica) -> [arrival, tracker index, shard
        #: completion, base service seconds, cost multiplier] per in-flight
        #: query, maintained only while faults are active.
        self.inflight: dict[tuple[str, str], list[list[float]]] = {}
        self.rejected_indices: set[int] = set()
        self.dropped_indices: set[int] = set()
        self.requeued_count = 0
        self.interval_failures: dict[str, int] = {d.name: 0 for d in self.deployments}
        self.interval_requeues: dict[str, int] = {d.name: 0 for d in self.deployments}
        self.availability_series: dict[str, list[float]] = {
            d.name: [] for d in self.deployments
        }
        self.requeue_series: dict[str, list[int]] = {
            d.name: [] for d in self.deployments
        }
        #: Sample points accumulated since the last streamed series flush.
        self._pending_series_samples = 0

    def _store_cache_pricing(
        self, hot: np.ndarray, cold: np.ndarray, total: np.ndarray
    ) -> None:
        """Store gather splits and the precomputed warm-cache pricing.

        Steady-state pricing is fill-independent: once a replica's cache is
        pinned at capacity the hit fractions are the grid ends, so each
        query's warm hit mass and adjusted-cost scale are precomputed here,
        vectorised.  Every elementwise op below is the same IEEE-754 op the
        per-query scalar branch performs, in the same order, so the warm fast
        path in ``serve_query`` is bit-exact with the lerp branch it skips.
        """
        self.query_hot = hot if self.stream is not None else hot.tolist()
        self.query_cold = cold if self.stream is not None else cold.tolist()
        self.query_total = total if self.stream is not None else total.tolist()
        spec = self.cache_spec
        hot_end = spec.grid_hot[-1]
        cold_end = spec.grid_cold[-1]
        warm_hits = hot * hot_end + cold * cold_end
        rate = np.divide(
            warm_hits, total, out=np.zeros(total.shape), where=total > 0.0
        )
        warm_add = rate * total
        warm_scale = np.where(
            rate == 1.0,
            spec.hit_cost_fraction,
            1.0 - rate * (1.0 - spec.hit_cost_fraction),
        )
        self.query_warm_hits = (
            warm_add if self.stream is not None else warm_add.tolist()
        )
        self.query_warm_scale = (
            warm_scale if self.stream is not None else warm_scale.tolist()
        )

    def _store_gather_splits(self, hot: np.ndarray, cold: np.ndarray) -> None:
        """Keep per-query hot/cold gather counts for fallback pricing only.

        Unlike :meth:`_store_cache_pricing` this leaves ``query_total`` as
        ``None``, so the cache hot path in ``serve_query`` stays disabled —
        the splits exist purely so watchdog quality fallback can price a
        cache-hot-only gather exactly.
        """
        self.query_hot = hot if self.stream is not None else hot.tolist()
        self.query_cold = cold if self.stream is not None else cold.tolist()

    def arrival_at(self, index: int) -> float:
        """The ``index``-th arrival time as a Python float (any mode)."""
        if self.arrival_list is not None:
            return self.arrival_list[index]
        return float(self.arrivals[index])

    def _served_totals(self, deployment_name: str) -> tuple[int, int]:
        """Lifetime (queries, batches) served by a deployment's replicas."""
        queries, batches = self._retired_totals[deployment_name]
        for server in self.servers[deployment_name].values():
            queries += server.completed_queries
            batches += server.completed_batches
        return queries, batches

    def serve_query(
        self,
        arrival: float,
        query_index: int,
        tenant_index: int,
        heap: list | None = None,
        seq: itertools.count | None = None,
    ) -> None:
        """Route one query through every deployment the tenant needs."""
        watchdog_on = self.watchdog_on
        if watchdog_on:
            self.interval_arrivals += 1
            # Admission control (ladder level >= 1): shed before touching any
            # lane or server, from the dedicated [seed, 5] stream — draws
            # happen only while shedding is armed, so a watchdog that never
            # degrades consumes the stream identically to one that is idle.
            if self.shed_armed and float(self.slo_rng.random()) < self.shed_fraction_value:
                self._shed_query(arrival)
                return
        fallback_on = watchdog_on and self.fallback_armed
        deadline_on = watchdog_on and self.deadline_armed
        track_completions = self.track_completions
        multiplier = (
            1.0 if self.query_multipliers is None else self.query_multipliers[query_index]
        )
        tracker = self.tracker
        tracker_index = tracker.num_samples
        rejected = False
        worst_completion = -np.inf
        policy = self.policy
        select_index = policy.select_index
        select = policy.select
        on_submit = self.policy_on_submit
        vectorized = self.vectorized
        faults_on = self.faults_on
        track_inflight = self.track_inflight
        if self.query_total is not None:
            # One query's gather split is shared by every cached lane; read
            # the pre-priced values once, not once per lane.  Likewise the
            # tenant's single shared cache geometry: one tuple unpack here
            # replaces per-lane attribute reads inside the loop.
            hot = self.query_hot[query_index]
            cold = self.query_cold[query_index]
            total = self.query_total[query_index]
            warm_hits = self.query_warm_hits[query_index]
            warm_scale = self.query_warm_scale[query_index]
            (
                cache_step,
                cache_capacity,
                grid_hot,
                grid_cold,
                grid_dhot,
                grid_dcold,
                grid_last,
                hot_end,
                cold_end,
                cache_hit_cost,
                cache_miss_scale,
            ) = self.cache_geometry
        for lane in self._lanes:
            name = lane.name
            service = lane.service_s
            cost = multiplier if lane.cost_bearing else 1.0
            lane.count += 1
            if vectorized:
                pool = lane.pool
                index = select_index(name, pool, arrival, (service, cost))
                server = pool.servers[index] if index is not None else None
            else:
                index = None
                server = select(name, lane.server_list, arrival, cost=(service, cost))
            if server is None:
                # No capacity at all: count a full SLA violation.  The
                # rejection still lands in the interval metrics (count and
                # latency), so the HPA can see the overload it most needs to
                # react to.
                self.interval_failures[name] += 1
                rejected = True
                completion = arrival + 2.0 * self.sla_s
                if completion > worst_completion:
                    worst_completion = completion
                if not lane.dense:
                    lane.latencies.append(completion - arrival)
                continue
            if faults_on:
                # Stragglers and transient degradations stretch this shard's
                # service time; a healthy run multiplies by nothing.
                service = service * self._slowdown_factor(name, server.name)
            submit_cost = cost
            if fallback_on and lane.cost_bearing:
                # Quality fallback (ladder level 3): serve cache-hot-only
                # gathers at their exact reduced price (or the policy's flat
                # quality fraction when the cost model has no splits).  The
                # cache tier's accounting is deliberately bypassed — a
                # degraded gather admits nothing and warms nothing.
                if self.query_hot is not None:
                    submit_cost = degraded_gather_multiplier(
                        cost,
                        self.query_hot[query_index],
                        self.query_cold[query_index],
                        self._hot_cost_fraction,
                    )
                else:
                    submit_cost = cost * self.slo_policy.quality
            elif lane.cached:
                # Embedding-cache tier: the selected replica's cache serves a
                # fill-dependent fraction of this query's gathers at the hit
                # cost and admits the misses (warming itself up).  A cold
                # cache (hit rate 0) leaves the cost multiplier untouched.
                # The vectorized branch prices against the pool's fill list
                # with the tenant's shared grid (unpacked into locals above)
                # — one lerp, one divide, one FMA and one fill write per
                # query, bit-exact with the scalar ``ReplicaCache.serve`` +
                # ``cache_adjusted_multiplier`` composition the
                # ``vectorized=False`` path still uses.
                lane.gather_sum += total
                if index is not None:
                    if pool.cache_warm:
                        # Every replica in the pool is pinned at capacity, so
                        # the fill array cannot change and pricing was
                        # precomputed in ``begin_run``: the whole branch is
                        # one accumulate and one multiply.  (A zero-gather
                        # query precomputed to warm_hits 0.0 / warm_scale
                        # 1.0, both exact no-ops.)
                        lane.hit_sum += warm_hits
                        submit_cost = cost * warm_scale
                    elif total > 0.0:
                        fills = pool.fill_rows
                        fill = fills[index]
                        if fill >= cache_capacity:
                            # This replica is warm (fill pinned at exactly the
                            # capacity — admission clamps there) even though
                            # the pool as a whole is not: same precomputed
                            # grid-end pricing, no write-back.
                            lane.hit_sum += warm_hits
                            submit_cost = cost * warm_scale
                        else:
                            if fill <= 0.0:
                                # Cold cache: hits nothing, admits everything.
                                hit_rate = 0.0
                                fill = fill + total
                            else:
                                position = fill / cache_step
                                grid_index = int(position)
                                if grid_index >= grid_last:
                                    f_hot = hot_end
                                    f_cold = cold_end
                                else:
                                    frac = position - grid_index
                                    f_hot = grid_hot[grid_index] + frac * grid_dhot[grid_index]
                                    f_cold = (
                                        grid_cold[grid_index] + frac * grid_dcold[grid_index]
                                    )
                                hits = hot * f_hot + cold * f_cold
                                hit_rate = hits / total
                                fill = fill + (total - hits)
                            if fill >= cache_capacity:
                                # The admission just pinned this replica at
                                # capacity; if it was the pool's last cold
                                # one, the whole pool enters the precomputed
                                # steady state.
                                fills[index] = cache_capacity
                                if min(fills) >= cache_capacity:
                                    pool.cache_warm = True
                            else:
                                fills[index] = fill
                            if hit_rate > 0.0:
                                lane.hit_sum += hit_rate * total
                                if hit_rate == 1.0:
                                    # IEEE-exact warm-cache contract: the
                                    # adjusted cost is exactly
                                    # hit_cost_fraction * cost.
                                    submit_cost = cost * cache_hit_cost
                                else:
                                    submit_cost = cost * (
                                        1.0 - hit_rate * cache_miss_scale
                                    )
                elif total > 0.0:
                    # Scalar engine path: the per-replica ``ReplicaCache``
                    # stays authoritative (the pool never builds fill arrays).
                    hit_rate = server.cache.serve(hot, cold)
                    if hit_rate > 0.0:
                        lane.hit_sum += hit_rate * total
                        if hit_rate == 1.0:
                            # IEEE-exact warm-cache contract: the adjusted
                            # cost is exactly hit_cost_fraction * cost.
                            submit_cost = cost * cache_hit_cost
                        else:
                            submit_cost = cost * (1.0 - hit_rate * cache_miss_scale)
            completion = server.submit(arrival, service, submit_cost)
            if index is not None:
                pool.busy[index] = completion
            if on_submit is not None:
                on_submit(name, server)
            if track_inflight:
                entry = [arrival, tracker_index, completion, lane.service_s, cost]
                if lane.cached:
                    # Carry the gather split so a crash re-queue can reprice
                    # the query against the surviving replica's cache.
                    entry.append(hot)
                    entry.append(cold)
                self.inflight.setdefault((name, server.name), []).append(entry)
            if heap is not None and track_completions:
                heapq.heappush(
                    heap,
                    (
                        completion,
                        EventKind.COMPLETION,
                        next(seq),
                        (tenant_index, name, server.name),
                    ),
                )
            if completion > worst_completion:
                worst_completion = completion
            if not lane.dense:
                lane.latencies.append(completion - arrival)
        query_completion = worst_completion + self.rpc_overhead_s
        latency = query_completion - arrival
        # End-to-end latency is what the dense (or monolithic) shard's HPA sees.
        for lane in self._dense_lanes:
            lane.latencies.append(latency)
        if rejected:
            self.rejected_indices.add(tracker_index)
            if watchdog_on:
                self.interval_rejected += 1
        elif fallback_on:
            self.degraded_indices.add(tracker_index)
            self.interval_degraded += 1
        tracker.record(arrival + latency, latency)
        if deadline_on and not rejected:
            # Per-query deadline contract (ladder level >= 2): track the live
            # population for the storm guard, and schedule the attempt's
            # TIMEOUT only when it will actually outlive its timeout budget.
            heapq.heappush(self._live_completions, query_completion)
            attempt_deadline = arrival + self.attempt_timeout_s
            if query_completion > attempt_deadline:
                hot_split = cold_split = -1.0
                if self.query_hot is not None:
                    hot_split = float(self.query_hot[query_index])
                    cold_split = float(self.query_cold[query_index])
                token = next(seq)
                self.pending_event[tracker_index] = token
                heapq.heappush(
                    heap,
                    (
                        attempt_deadline,
                        EventKind.TIMEOUT,
                        token,
                        (
                            tenant_index,
                            tracker_index,
                            arrival,
                            multiplier,
                            hot_split,
                            cold_split,
                            token,
                        ),
                    ),
                )

    # ------------------------------------------------------------------
    # SLO watchdog: shedding, deadlines/retries, fallback, escalation
    # ------------------------------------------------------------------
    def _shed_query(self, arrival: float) -> None:
        """Admission-control rejection: no lane, server or cache is touched.

        A shed query is charged the same full-SLA-violation penalty as a
        capacity rejection, but it is *voluntary*: it lands in
        ``shed_queries`` and the shed series, and is excluded from the
        availability/reject signals the watchdog itself consumes (otherwise
        shedding would read as an availability breach and the ladder could
        never recover).
        """
        tracker_index = self.tracker.num_samples
        self.rejected_indices.add(tracker_index)
        self.shed_count += 1
        self.interval_shed += 1
        latency = 2.0 * self.sla_s
        self.tracker.record(arrival + latency, latency)

    def _prune_live(self, now: float) -> int:
        """Live (non-retry) in-flight queries at ``now``, lazily pruned."""
        live = self._live_completions
        while live and live[0] <= now:
            heapq.heappop(live)
        return len(live)

    def _prune_retries(self, now: float) -> int:
        """Live retries at ``now``: unresolved re-issues + scheduled ones."""
        live = self._retry_resolutions
        while live and live[0] <= now:
            heapq.heappop(live)
        return len(live) + self._retries_scheduled

    def observe_slo(self, now: float) -> None:
        """Feed the watchdog one sample tick (no-op when the plane is off).

        Runs inside the SAMPLE phase *before* the interval latency buffers
        clear, so the tick sees exactly the interval's end-to-end latencies.
        Ladder decisions are buffered in ``watchdog_actions``; the driver
        relays them onto the heap as typed WATCHDOG events so they apply in
        deterministic event order in every execution mode.
        """
        if not self.watchdog_on:
            return
        latencies: list[float] = []
        for lane in self._dense_lanes:
            if lane.latencies:
                latencies.extend(lane.latencies)
        arrivals = self.interval_arrivals
        admitted = arrivals - self.interval_shed
        involuntary = self.interval_rejected + self.interval_timeouts
        if admitted > 0:
            availability = max(0.0, 1.0 - involuntary / admitted)
            reject_rate = self.interval_rejected / admitted
        else:
            availability = 1.0 if involuntary == 0 else 0.0
            reject_rate = 0.0 if involuntary == 0 else 1.0
        actions = self.watchdog.observe(now, latencies, availability, reject_rate)
        if actions:
            self.watchdog_actions.extend(actions)
        series = self.watchdog_series
        series["level"].append(float(self.watchdog.level))
        series["shed"].append(self.interval_shed / arrivals if arrivals else 0.0)
        series["timeouts"].append(float(self.interval_timeouts))
        series["degraded"].append(float(self.interval_degraded))
        self.interval_arrivals = 0
        self.interval_shed = 0
        self.interval_rejected = 0
        self.interval_timeouts = 0
        self.interval_degraded = 0

    def apply_watchdog(
        self,
        now: float,
        action: tuple,
        tenant_index: int,
        heap: list,
        seq: itertools.count,
    ) -> None:
        """Apply one ladder action popped from the heap as a WATCHDOG event."""
        kind = action[0]
        if kind in ("degrade", "recover"):
            level = action[1]
            self.shed_armed = level >= 1
            self.deadline_armed = level >= 2
            self.fallback_armed = level >= 3
        elif (
            self.detector is not None
            and not self.replan_in_progress
            and self.detector.escalate(now)
        ):
            # Escalation: hand the incident to the re-planner, which still
            # enforces its own fire budget and cooldown.
            heapq.heappush(
                heap, (now, EventKind.REPLAN, next(seq), (tenant_index, "fire"))
            )

    def handle_timeout(
        self, now: float, payload: tuple, heap: list, seq: itertools.count
    ) -> None:
        """One attempt's timeout fired: retry within budget or finalize."""
        tenant_index, tracker_index, arrival, multiplier, hot, cold, token = payload
        if self.pending_event.get(tracker_index) != token:
            return  # Stale: the query re-entered the pipeline since.
        del self.pending_event[tracker_index]
        if (
            tracker_index in self.rejected_indices
            or tracker_index in self.dropped_indices
            or tracker_index in self.timeout_indices
        ):
            return
        completion, _ = self.tracker.sample(tracker_index)
        if completion <= now:
            # The attempt settled before its timeout (a retry pulled the
            # completion in); nothing to do.
            self.retry_attempts.pop(tracker_index, None)
            return
        self._try_retry(
            now, tenant_index, tracker_index, arrival, multiplier, hot, cold, heap, seq
        )

    def _try_retry(
        self,
        now: float,
        tenant_index: int,
        tracker_index: int,
        arrival: float,
        multiplier: float,
        hot: float,
        cold: float,
        heap: list,
        seq: itertools.count,
    ) -> bool:
        """Schedule a budgeted backoff retry, or finalize the timeout.

        Returns ``True`` when a RETRY event was scheduled.  A retry launches
        only when budget remains, the backoff still lands inside the query's
        hard deadline, and the storm guard admits it; the jitter draw comes
        from the [seed, 5] stream and happens only for retries that
        actually launch.
        """
        policy = self.slo_policy
        deadline_at = arrival + self.deadline_s
        attempts = self.retry_attempts.get(tracker_index, 0)
        if attempts >= policy.retries or now >= deadline_at:
            self._finalize_timeout(now, tracker_index, arrival)
            return False
        if not retry_allowed(
            self._prune_retries(now), self._prune_live(now), policy.storm
        ):
            self._finalize_timeout(now, tracker_index, arrival)
            return False
        delay = policy.backoff_s * (2.0**attempts)
        if policy.jitter > 0.0:
            delay *= 1.0 + policy.jitter * float(self.slo_rng.random())
        retry_at = now + delay
        if retry_at >= deadline_at:
            self._finalize_timeout(now, tracker_index, arrival)
            return False
        self.retry_attempts[tracker_index] = attempts + 1
        self._retries_scheduled += 1
        token = next(seq)
        self.pending_event[tracker_index] = token
        heapq.heappush(
            heap,
            (
                retry_at,
                EventKind.RETRY,
                token,
                (tenant_index, tracker_index, arrival, multiplier, hot, cold, token),
            ),
        )
        return True

    def _finalize_timeout(self, now: float, tracker_index: int, arrival: float) -> None:
        """Give up on a query: its deadline contract ends in a timeout.

        The client learns of the failure no earlier than its attempt timeout
        and no later than the hard deadline; the recorded latency is that
        give-up point (conservation moves the query from completions to
        ``timeout_queries``).
        """
        deadline_at = arrival + self.deadline_s
        give_up = min(max(now, arrival + self.attempt_timeout_s), deadline_at)
        self.timeout_indices.add(tracker_index)
        self.degraded_indices.discard(tracker_index)
        self.interval_timeouts += 1
        self.retry_attempts.pop(tracker_index, None)
        self.tracker.update(tracker_index, give_up, give_up - arrival)

    def handle_retry(
        self, now: float, payload: tuple, heap: list, seq: itertools.count
    ) -> None:
        """Re-issue one query across all lanes (a scheduled client retry)."""
        tenant_index, tracker_index, arrival, multiplier, hot, cold, token = payload
        self._retries_scheduled -= 1
        if self.pending_event.get(tracker_index) != token:
            return
        del self.pending_event[tracker_index]
        if (
            tracker_index in self.rejected_indices
            or tracker_index in self.dropped_indices
            or tracker_index in self.timeout_indices
        ):
            return
        self.retried_count += 1
        deadline_at = arrival + self.deadline_s
        attempt_deadline = min(now + self.attempt_timeout_s, deadline_at)
        policy = self.policy
        select_index = policy.select_index
        select = policy.select
        on_submit = self.policy_on_submit
        vectorized = self.vectorized
        faults_on = self.faults_on
        track_inflight = self.track_inflight
        track_completions = self.track_completions
        fallback = self.fallback_armed
        worst = -np.inf
        failed = False
        for lane in self._lanes:
            name = lane.name
            service = lane.service_s
            cost = multiplier if lane.cost_bearing else 1.0
            lane.count += 1
            if vectorized:
                pool = lane.pool
                index = select_index(name, pool, now, (service, cost))
                server = pool.servers[index] if index is not None else None
            else:
                index = None
                server = select(name, lane.server_list, now, cost=(service, cost))
            if server is None:
                failed = True
                self.interval_failures[name] += 1
                continue
            if faults_on:
                service = service * self._slowdown_factor(name, server.name)
            submit_cost = cost
            if fallback and lane.cost_bearing:
                # Retries re-price with the same fallback rule as first
                # attempts; a non-fallback retry pays full price (the cache
                # tier is not consulted for re-issues — no split carried).
                if hot >= 0.0:
                    submit_cost = degraded_gather_multiplier(
                        cost, hot, cold, self._hot_cost_fraction
                    )
                else:
                    submit_cost = cost * self.slo_policy.quality
            completion = server.submit(now, service, submit_cost)
            if index is not None:
                pool.busy[index] = completion
            if on_submit is not None:
                on_submit(name, server)
            if track_inflight:
                entry = [arrival, tracker_index, completion, lane.service_s, cost]
                self.inflight.setdefault((name, server.name), []).append(entry)
            if track_completions:
                heapq.heappush(
                    heap,
                    (
                        completion,
                        EventKind.COMPLETION,
                        next(seq),
                        (tenant_index, name, server.name),
                    ),
                )
            if completion > worst:
                worst = completion
            if not lane.dense:
                lane.latencies.append(completion - now)
        if failed or worst == -np.inf:
            # The retry itself found no capacity: back off again within the
            # same budget, or finalize.
            self._try_retry(
                now, tenant_index, tracker_index, arrival, multiplier, hot, cold,
                heap, seq,
            )
            return
        new_total = worst + self.rpc_overhead_s
        latency = new_total - arrival
        self.tracker.update(tracker_index, new_total, latency)
        for lane in self._dense_lanes:
            lane.latencies.append(latency)
        if fallback and tracker_index not in self.degraded_indices:
            self.degraded_indices.add(tracker_index)
            self.interval_degraded += 1
        heapq.heappush(self._retry_resolutions, min(new_total, attempt_deadline))
        if new_total > attempt_deadline:
            next_token = next(seq)
            self.pending_event[tracker_index] = next_token
            heapq.heappush(
                heap,
                (
                    attempt_deadline,
                    EventKind.TIMEOUT,
                    next_token,
                    (
                        tenant_index,
                        tracker_index,
                        arrival,
                        multiplier,
                        hot,
                        cold,
                        next_token,
                    ),
                ),
            )
        else:
            self.retry_attempts.pop(tracker_index, None)

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _slowdown_factor(self, deployment_name: str, server_name: str) -> float:
        """Combined service-time stretch of every window active on a replica.

        Overlapping windows compound multiplicatively (a straggler inside a
        deployment-wide degradation is slow twice over).
        """
        factor = 1.0
        for value in self.degradations.get(deployment_name, ()):
            factor *= value
        for value in self.slowdowns.get((deployment_name, server_name), ()):
            factor *= value
        return factor

    def _pick_target(
        self, deployment: str | None, replica: int | None
    ) -> tuple[str, str] | None:
        """Choose a (deployment, replica) fault victim, deterministically.

        ``deployment`` narrows by name substring; ``replica`` picks by index
        (wrapped) over the replicas in creation order; anything unspecified
        is drawn from the dedicated fault RNG.  Replica order is the servers
        dict's insertion order — creation order — NOT name order: replica
        names embed a process-global container counter, so sorting by name
        would make victim choice depend on what ran earlier in the process
        (breaking the serial == parallel sweep contract).  Returns ``None``
        when no matching live replica exists (the fault misfires).
        """
        candidates = [
            d.name
            for d in self.deployments
            if (deployment is None or deployment in d.name) and self.servers[d.name]
        ]
        if not candidates:
            return None
        if len(candidates) == 1:
            target = candidates[0]
        else:
            target = candidates[int(self.fault_rng.integers(len(candidates)))]
        names = list(self.servers[target])
        if replica is not None:
            victim = names[replica % len(names)]
        else:
            victim = names[int(self.fault_rng.integers(len(names)))]
        return target, victim

    def crash_replica(
        self,
        now: float,
        event: ReplicaCrash,
        tenant_index: int,
        cluster: Cluster,
        heap: list,
        seq: itertools.count,
    ) -> None:
        """Kill one replica: evict its container and settle in-flight work."""
        target = self._pick_target(event.deployment, event.replica)
        if target is None:
            return
        deployment_name, victim = target
        self._kill_server(now, deployment_name, victim, event.policy, tenant_index, heap, seq)
        cluster.fail_replica(victim, now)
        self.faults_injected += 1

    def mark_draining(self, names: set[str]) -> bool:
        """Stop routing new traffic to the named replicas (drain grace phase).

        Counts the drain once per *struck* tenant in ``faults_injected``
        (a drain of a node hosting none of the tenant's replicas does not
        count as having struck it).
        """
        struck = False
        for deployment in self.deployments:
            hit = False
            for name, server in self.servers[deployment.name].items():
                if name in names:
                    server.start_drain()
                    hit = True
            if hit:
                self.pools[deployment.name].invalidate()
                struck = True
        if struck:
            self.faults_injected += 1
        return struck

    def on_replicas_lost(
        self,
        now: float,
        lost_names: set[str],
        policy: str,
        tenant_index: int,
        heap: list,
        seq: itertools.count,
    ) -> None:
        """Settle the fallout of replicas evicted cluster-side (node drain)."""
        for deployment in self.deployments:
            # Iterate in the servers dict's insertion (creation) order, not
            # name order — see _pick_target for why name order is unstable.
            victims = [n for n in self.servers[deployment.name] if n in lost_names]
            for victim in victims:
                self._kill_server(
                    now, deployment.name, victim, policy, tenant_index, heap, seq
                )

    def _kill_server(
        self,
        now: float,
        deployment_name: str,
        victim: str,
        policy: str,
        tenant_index: int,
        heap: list,
        seq: itertools.count,
    ) -> None:
        server = self.servers[deployment_name].pop(victim)
        server.fail()
        self.pools[deployment_name].invalidate()
        self._lane_by_name[deployment_name].server_list = list(
            self.servers[deployment_name].values()
        )
        totals = self._retired_totals[deployment_name]
        totals[0] += server.completed_queries
        totals[1] += server.completed_batches
        self.slowdowns.pop((deployment_name, victim), None)
        # Hold the HPA's desired count steady while the replacement starts.
        self.autoscaler.notice_capacity_loss(deployment_name, now)
        self._reassign_inflight(now, deployment_name, victim, policy, tenant_index, heap, seq)

    def _reassign_inflight(
        self,
        now: float,
        deployment_name: str,
        victim: str,
        policy: str,
        tenant_index: int,
        heap: list,
        seq: itertools.count,
    ) -> None:
        """Re-queue or drop the dead replica's unfinished queries."""
        for entry in self.inflight.pop((deployment_name, victim), []):
            arrival, tracker_index, completion, service, cost = entry[:5]
            tracker_index = int(tracker_index)
            if completion <= now:
                continue  # finished before the failure
            if tracker_index in self.dropped_indices or tracker_index in self.rejected_indices:
                continue  # the query already failed elsewhere
            if tracker_index in self.timeout_indices:
                continue  # the client already gave up on it
            if tracker_index in self.pending_event:
                # The client is already between attempts (a TIMEOUT or RETRY
                # event is live): losing the abandoned attempt's server-side
                # work changes nothing for it.
                continue
            new_server = None
            new_index = None
            if policy == "requeue":
                if self.vectorized:
                    pool = self.pools[deployment_name]
                    new_index = self.policy.select_index(
                        deployment_name, pool, now, (service, cost)
                    )
                    if new_index is not None:
                        new_server = pool.servers[new_index]
                else:
                    survivors = self._lane_by_name[deployment_name].server_list
                    if survivors:
                        new_server = self.policy.select(
                            deployment_name, survivors, now, cost=(service, cost)
                        )
            if new_server is None:
                if self.watchdog_on and self.deadline_armed:
                    # Armed deadlines convert the drop into a client retry
                    # when budget and storm guard allow: the client sees its
                    # connection die and re-issues the whole query.
                    entry_hot = float(entry[5]) if len(entry) == 7 else -1.0
                    entry_cold = float(entry[6]) if len(entry) == 7 else -1.0
                    if self._try_retry(
                        now, tenant_index, tracker_index, arrival, cost,
                        entry_hot, entry_cold, heap, seq,
                    ):
                        continue
                    # _try_retry finalized it as a timeout instead of a drop.
                    self.interval_failures[deployment_name] += 1
                    continue
                # Dropped: charge the rejection penalty (the query never
                # completed, so its recorded latency becomes the penalty).
                self.dropped_indices.add(tracker_index)
                self.interval_failures[deployment_name] += 1
                if self.watchdog_on:
                    self.interval_rejected += 1
                _, old_latency = self.tracker.sample(tracker_index)
                latency = max(old_latency, 2.0 * self.sla_s)
                self.tracker.update(tracker_index, arrival + latency, latency)
                continue
            effective = service * self._slowdown_factor(deployment_name, new_server.name)
            submit_cost = cost
            if len(entry) == 7 and new_server.cache is not None:
                # Reprice the displaced query against the survivor's cache
                # (the victim's warm rows died with it).  On the vectorized
                # path the pool's fill array is authoritative, so the serve
                # must read-modify-write through it.
                if new_index is not None:
                    hit_rate = self.pools[deployment_name].cache_serve(
                        new_index, entry[5], entry[6]
                    )
                else:
                    hit_rate = new_server.cache.serve(entry[5], entry[6])
                if hit_rate > 0.0:
                    submit_cost = cache_adjusted_multiplier(
                        cost, hit_rate, self.cache_hit_cost
                    )
            new_completion = new_server.submit(now, effective, multiplier=submit_cost)
            if new_index is not None:
                self.pools[deployment_name].note_submit(new_index, new_completion)
            self.policy.on_submit(deployment_name, new_server)
            new_entry = [arrival, tracker_index, new_completion, service, cost]
            if len(entry) == 7:
                new_entry.append(entry[5])
                new_entry.append(entry[6])
            self.inflight.setdefault((deployment_name, new_server.name), []).append(
                new_entry
            )
            if self.track_completions:
                heapq.heappush(
                    heap,
                    (
                        new_completion,
                        EventKind.COMPLETION,
                        next(seq),
                        (tenant_index, deployment_name, new_server.name),
                    ),
                )
            self.requeued_count += 1
            self.interval_requeues[deployment_name] += 1
            # The re-queued shard finishes later than anything recorded for
            # this query so far, so it now defines the end-to-end latency.
            old_completion, _ = self.tracker.sample(tracker_index)
            new_total = new_completion + self.rpc_overhead_s
            if new_total > old_completion:
                self.tracker.update(tracker_index, new_total, new_total - arrival)

    def start_straggler(
        self,
        now: float,
        event: StragglerSlowdown,
        tenant_index: int,
        heap: list,
        seq: itertools.count,
    ) -> None:
        """Slow one replica down for the event's window."""
        target = self._pick_target(event.deployment, event.replica)
        if target is None:
            return
        deployment_name, victim = target
        self.slowdowns.setdefault((deployment_name, victim), []).append(
            float(event.factor)
        )
        self.faults_injected += 1
        heapq.heappush(
            heap,
            (
                now + event.duration_s,
                EventKind.RECOVERY,
                next(seq),
                (tenant_index, ("straggler-end", deployment_name, victim, float(event.factor))),
            ),
        )

    def start_degradation(
        self,
        now: float,
        event: TransientDegradation,
        tenant_index: int,
        heap: list,
        seq: itertools.count,
    ) -> None:
        """Slow every replica of the matched deployments down for a window."""
        names = tuple(
            d.name
            for d in self.deployments
            if event.deployment is None or event.deployment in d.name
        )
        if not names:
            return
        for name in names:
            self.degradations.setdefault(name, []).append(float(event.factor))
        self.faults_injected += 1
        heapq.heappush(
            heap,
            (
                now + event.duration_s,
                EventKind.RECOVERY,
                next(seq),
                (tenant_index, ("degrade-end", names, float(event.factor))),
            ),
        )

    @staticmethod
    def _remove_factor(stacks: dict, key, factor: float) -> None:
        """Remove one occurrence of a window's factor from a stack."""
        stack = stacks.get(key)
        if stack is None:
            return  # the replica was killed (its stack was discarded)
        if factor in stack:
            stack.remove(factor)
        if not stack:
            del stacks[key]

    def recover(self, action: tuple) -> None:
        """End one windowed fault, leaving any overlapping windows in force."""
        if action[0] == "straggler-end":
            self._remove_factor(self.slowdowns, (action[1], action[2]), action[3])
        elif action[0] == "degrade-end":
            for name in action[1]:
                self._remove_factor(self.degradations, name, action[2])

    # ------------------------------------------------------------------
    # Online re-planning (ROADMAP item 1)
    # ------------------------------------------------------------------
    def observe_drift(self, now: float) -> None:
        """Feed the detector this interval's end-to-end p95 (if replanning).

        Called from :meth:`sample` before the interval latency buffers are
        cleared.  A fire only raises a flag; the driver turns it into a
        typed REPLAN heap event so migrations stay on the event timeline.
        """
        if self.detector is None or self.replan_in_progress:
            return
        p95_s: float | None = None
        for lane in self._dense_lanes:
            if lane.latencies:
                value = float(np.percentile(lane.latencies, 95))
                if p95_s is None or value > p95_s:
                    p95_s = value
        if self.detector.observe(now, p95_s):
            self.replan_requested = True

    def start_replan(
        self, now: float, tenant_index: int, heap: list, seq: itertools.count
    ) -> float:
        """Plan the successor deployment and schedule the shard-copy migration.

        The successor plan is a fresh DP partitioning of the same workload at
        the same target QPS against the distribution *measured* at ``now``
        (the drift mixture; the original distribution when replanning without
        drift).  Shard copies occupy every embedding replica as synthetic
        work — a replica busy copying serves queries later, which is the
        migration's cost — and the returned cutover time is when the last
        copy lands.  Everything here is deterministic: the planner draws no
        randomness and the copy schedule is fixed by replica state.
        """
        from repro.core.planner import ElasticRecPlanner

        self.replan_in_progress = True
        measured = (
            self.drift_model.at(now) if self.drift_on else self.cost_model.distribution
        )
        num_tables = self.plan.workload.embedding.num_tables
        num_shards = len(self.plan.sharding.shards_for_table(0))
        successor = ElasticRecPlanner(self.plan.cluster).plan(
            self.plan.workload,
            self.plan.target_qps,
            num_shards=num_shards,
            table_distributions=[measured] * num_tables,
        )
        self.pending_successor = successor
        copy_gb_per_s = self.replan_policy.copy_gb_per_s
        track_completions = self.track_completions
        cutover_at = now
        for deployment, lane in zip(self.deployments, self._lanes):
            if lane.dense:
                # Dense shards hold no embedding rows; nothing to copy.
                continue
            copy_s = deployment.spec.resources.memory_bytes / (copy_gb_per_s * 1e9)
            name = deployment.name
            for server in self.servers[name].values():
                completion = server.submit(now, copy_s, 1.0)
                self.policy.on_submit(name, server)
                if track_completions:
                    heapq.heappush(
                        heap,
                        (
                            completion,
                            EventKind.COMPLETION,
                            next(seq),
                            (tenant_index, name, server.name),
                        ),
                    )
                if completion > cutover_at:
                    cutover_at = completion
            # Copies are synthetic work, not queries: they never enter the
            # in-flight registry (a crash mid-copy just loses the copy), but
            # the pool's busy mirror must see them — rebuild it lazily.
            self.pools[name].invalidate()
        return cutover_at

    def apply_replan(self, now: float) -> None:
        """Cut over to the pending successor plan.

        Service times and replica targets follow the successor's deployments
        (matched by name: same workload, same shard count, so the names line
        up).  Remaining query multipliers renormalise from the start-pool
        mean to the mixture mean at cutover — the successor plan's per-shard
        QPS estimates already price the drifted distribution, so keeping the
        old normaliser would double-count the drift.  Finally the PR-7
        invalidation storm: every replica's cache restarts cold on the new
        shard boundaries and re-warms from served traffic.
        """
        successor = self.pending_successor
        self.pending_successor = None
        self.replan_in_progress = False
        if successor is None:
            return
        by_name = {d.name: d for d in successor.deployments}
        for deployment, lane in zip(self.deployments, self._lanes):
            spec = by_name.get(deployment.name)
            if spec is None:
                continue
            service = 1.0 / spec.per_replica_qps
            self.service_times[deployment.name] = service
            lane.service_s = service
            deployment.desired_replicas = spec.replicas
            if self.autoscale:
                # Hold the HPA off while the new capacity materialises, the
                # same grace a crash replacement gets.
                self.autoscaler.notice_capacity_loss(deployment.name, now)
        if self.drift_on and self.query_multipliers is not None:
            start_mean, end_mean = self._drift_means
            weight = float(self.drift_model.weight_at(now))
            mixture_mean = (1.0 - weight) * start_mean + weight * end_mean
            if mixture_mean > 0.0:
                scale = start_mean / mixture_mean
                begin = int(np.searchsorted(self.arrivals, now, side="right"))
                multipliers = self.query_multipliers
                if isinstance(multipliers, list):
                    for index in range(begin, len(multipliers)):
                        multipliers[index] *= scale
                else:
                    # Streamed runs keep the float64 array; the slice multiply
                    # is the same IEEE op as the per-element loop above.
                    multipliers[begin:] *= scale
        self.invalidate_caches()
        self.replans_applied += 1

    def record_interval_metrics(self, now: float, metrics) -> None:
        for lane in self._lanes:
            metrics.record(f"{lane.name}/queries", float(lane.count), now)
            if lane.latencies:
                metrics.record(
                    f"{lane.name}/latency_s", float(np.percentile(lane.latencies, 95)), now
                )

    def sample(self, now: float) -> None:
        # Drift detection reads the interval latency buffers this method is
        # about to clear, so it observes first (a no-op unless replanning).
        self.observe_drift(now)
        # The SLO watchdog reads the same buffers plus the interval arrival/
        # failure counters (a no-op when the control plane is off).
        self.observe_slo(now)
        self.sample_times.append(now)
        self.memory_series.append(self.allocated_memory_gb)
        window_start = now - self.sample_interval_s
        for deployment, lane in zip(self.deployments, self._lanes):
            name = lane.name
            self.replica_series[name].append(len(deployment.active_replicas))
            servers = self.servers[name].values()
            if servers:
                utilization = float(
                    np.mean([s.utilization(now, window_start=window_start) for s in servers])
                )
                # Utilization windows only move forward, so busy runs behind
                # this window can never be read again — drop them, or a long
                # run's per-replica busy history grows one entry per idle gap.
                for server in servers:
                    server.prune_runs(window_start)
            else:
                utilization = 0.0
            self.utilization_series[name].append(utilization)
            queries, batches = self._served_totals(name)
            mark_queries, mark_batches = self._occupancy_marks[name]
            batch_delta = batches - mark_batches
            if batch_delta:
                occupancy = (queries - mark_queries) / batch_delta
                self._occupancy_marks[name] = (queries, batches)
            else:
                # No batch opened this interval: leave the query mark in
                # place so queries that joined a straddling batch are
                # attributed to the next batch-opening interval instead of
                # being dropped from the occupancy accounting.
                occupancy = 0.0
            self.batch_occupancy_series[name].append(occupancy)
            offered = lane.count
            failures = self.interval_failures[name]
            if offered:
                # Drops of queries offered in an earlier interval can push
                # failures past this interval's offered count; availability
                # is clamped at zero rather than going negative.
                available = max(0.0, 1.0 - failures / offered)
            else:
                available = 1.0 if failures == 0 else 0.0
            self.availability_series[name].append(available)
            self.requeue_series[name].append(self.interval_requeues[name])
            if lane.cached:
                gathers = lane.gather_sum
                self.cache_hit_series[name].append(
                    lane.hit_sum / gathers if gathers > 0 else 0.0
                )
                lane.hit_sum = 0.0
                lane.gather_sum = 0.0
            lane.count = 0
            lane.latencies = []
        if self.track_inflight:
            # Prune settled in-flight entries so the registry stays bounded.
            for key, entries in self.inflight.items():
                self.inflight[key] = [e for e in entries if e[2] > now]
        for name in self.interval_failures:
            self.interval_failures[name] = 0
            self.interval_requeues[name] = 0
        if self.stream is not None:
            # Streamed flush hooks ride the coalesced control tick: series
            # chunks every `flush_series_every` samples, tracker spills as
            # soon as a threshold's worth of samples is settled.
            self._pending_series_samples += 1
            if self._pending_series_samples >= self.stream.flush_series_every:
                self._flush_series_chunk()
            self._maybe_spill_tracker()

    # ------------------------------------------------------------------
    # Streamed series sink
    # ------------------------------------------------------------------
    def _spill_watermark(self) -> int:
        """Highest tracker index that is settled (safe to spill).

        Without fault tracking no recorded sample is ever rewritten, so
        everything recorded is settled.  With the in-flight registry active,
        a crash may still rewrite any in-flight query's sample, so the
        watermark stops at the oldest in-flight index.
        """
        watermark = self.tracker.num_samples
        if self.track_inflight:
            for entries in self.inflight.values():
                for entry in entries:
                    index = int(entry[1])
                    if index < watermark:
                        watermark = index
        if self.pending_event:
            # A live TIMEOUT/RETRY event may still rewrite its query's
            # sample, so the watermark also stops at the oldest pending one.
            pending_min = min(self.pending_event)
            if pending_min < watermark:
                watermark = pending_min
        return watermark

    def _maybe_spill_tracker(self) -> None:
        watermark = self._spill_watermark()
        if watermark - self.tracker.spilled_samples >= self.stream.spill_threshold:
            self.tracker.spill(watermark, self._write_query_chunk)

    def _write_query_chunk(self, times: np.ndarray, lats: np.ndarray) -> None:
        self.stream_writer.append("queries", completion_times=times, latencies_s=lats)

    def _flush_series_chunk(self) -> None:
        """Write the per-interval series accumulated since the last flush."""
        if not self.sample_times:
            self._pending_series_samples = 0
            return
        times = np.asarray(self.sample_times)
        lanes = [lane.name for lane in self._lanes]
        chunk = dict(
            sample_times=times,
            target_qps=np.asarray(self.pattern.rate_at(times), dtype=np.float64),
            memory_gb=np.asarray(self.memory_series),
            replica_counts=np.asarray(
                [self.replica_series[name] for name in lanes], dtype=np.int64
            ),
            utilization=np.asarray([self.utilization_series[name] for name in lanes]),
            availability=np.asarray([self.availability_series[name] for name in lanes]),
            requeues=np.asarray(
                [self.requeue_series[name] for name in lanes], dtype=np.int64
            ),
            batch_occupancy=np.asarray(
                [self.batch_occupancy_series[name] for name in lanes]
            ),
        )
        if self.caches_on:
            # Rows follow the meta's ``cached_deployments`` order; the key is
            # absent entirely on cache-less runs so their chunks are
            # byte-identical with the pre-cache format.
            chunk["cache_hit_rate"] = np.asarray(
                [self.cache_hit_series[name] for name in self.cache_hit_series]
            )
        if self.watchdog_on:
            # Rows follow WATCHDOG_SERIES_KEYS order; absent on watchdog-off
            # runs so their chunks stay byte-identical with the old format.
            chunk["watchdog"] = np.asarray(
                [self.watchdog_series[key] for key in WATCHDOG_SERIES_KEYS]
            )
        self.stream_writer.append("series", **chunk)
        self.sample_times = []
        self.memory_series = []
        for name in lanes:
            self.replica_series[name] = []
            self.utilization_series[name] = []
            self.availability_series[name] = []
            self.requeue_series[name] = []
            self.batch_occupancy_series[name] = []
        for name in self.cache_hit_series:
            self.cache_hit_series[name] = []
        for key in self.watchdog_series:
            self.watchdog_series[key] = []
        self._pending_series_samples = 0

    def finish_run_streamed(self) -> dict:
        """Flush everything left, commit the tenant manifest, return a summary.

        The merged :class:`SimulationResult` is rebuilt from the spool by
        :func:`repro.serving.sharding.merge_stream`; what returns here is
        deliberately tiny (it crosses a process boundary).
        """
        self._flush_series_chunk()
        if self.caches_on:
            # Post-run cache state lives on the ReplicaCache objects again
            # (tests and re-sharding hooks inspect them between runs).
            for pool in self.pools.values():
                pool.flush_fills()
        self.tracker.spill(self.tracker.num_samples, self._write_query_chunk)
        meta = {
            "schema": 1,
            "status": "complete",
            "tenant": self.name,
            "plan_name": self.plan.name,
            "strategy": self.plan.strategy,
            "sla_s": self.sla_s,
            "sample_interval_s": self.sample_interval_s,
            "routing": self.policy.name,
            "cost_model": self.cost_model.name,
            "max_batch": self.max_batch,
            "faults": self.faults_name,
            "cache_mb": self.cache_mb,
            "drift": self.drift_name,
            "replan": self.replan_name,
            "replans_applied": self.replans_applied,
            "slo": self.slo_name,
            "timeout_queries": len(self.timeout_indices),
            "degraded_queries": len(self.degraded_indices),
            "shed_queries": self.shed_count,
            "retried_queries": self.retried_count,
            "slo_tier1_breaches": self.watchdog.tier1_breaches if self.watchdog else 0,
            "slo_tier2_flags": self.watchdog.tier2_flags if self.watchdog else 0,
            "slo_escalations": self.watchdog.escalations if self.watchdog else 0,
            "slo_recoveries": self.watchdog.recoveries if self.watchdog else 0,
            "cached_deployments": list(self.cache_hit_series),
            "deployments": [lane.name for lane in self._lanes],
            "num_samples": self.tracker.num_samples,
            "rejected_queries": len(self.rejected_indices),
            "dropped_queries": len(self.dropped_indices),
            "requeued_queries": self.requeued_count,
            "faults_injected": self.faults_injected,
        }
        self.stream_writer.write_meta(meta)
        return {
            "tenant": self.name,
            "queries": self.tracker.num_samples,
            "rejected_queries": len(self.rejected_indices),
            "dropped_queries": len(self.dropped_indices),
            "requeued_queries": self.requeued_count,
            "faults_injected": self.faults_injected,
        }

    def finish_run(self) -> SimulationResult:
        if self.caches_on:
            # Post-run cache state lives on the ReplicaCache objects again
            # (tests and re-sharding hooks inspect them between runs).
            for pool in self.pools.values():
                pool.flush_fills()
        sample_times = np.asarray(self.sample_times)
        achieved_qps, p95_latency_ms = _metric_series(
            self.tracker, sample_times, self.sample_interval_s
        )
        return SimulationResult(
            plan_name=self.plan.name,
            strategy=self.plan.strategy,
            sla_s=self.sla_s,
            sample_times=sample_times,
            target_qps=self.pattern.rate_at(sample_times),
            achieved_qps=achieved_qps,
            memory_gb=np.asarray(self.memory_series),
            p95_latency_ms=p95_latency_ms,
            replica_counts={k: np.asarray(v) for k, v in self.replica_series.items()},
            tracker=self.tracker,
            routing=self.policy.name,
            tenant=self.name,
            utilization={k: np.asarray(v) for k, v in self.utilization_series.items()},
            cost_model=self.cost_model.name,
            max_batch=self.max_batch,
            batch_occupancy={
                k: np.asarray(v) for k, v in self.batch_occupancy_series.items()
            },
            faults=self.faults_name,
            availability={
                k: np.asarray(v) for k, v in self.availability_series.items()
            },
            requeues={
                k: np.asarray(v, dtype=np.int64) for k, v in self.requeue_series.items()
            },
            cache_hit_rate={
                k: np.asarray(v) for k, v in self.cache_hit_series.items()
            },
            cache_mb=self.cache_mb,
            rejected_queries=len(self.rejected_indices),
            dropped_queries=len(self.dropped_indices),
            requeued_queries=self.requeued_count,
            faults_injected=self.faults_injected,
            drift=self.drift_name,
            replan=self.replan_name,
            replans_applied=self.replans_applied,
            slo=self.slo_name,
            timeout_queries=len(self.timeout_indices),
            degraded_queries=len(self.degraded_indices),
            shed_queries=self.shed_count,
            retried_queries=self.retried_count,
            slo_tier1_breaches=self.watchdog.tier1_breaches if self.watchdog else 0,
            slo_tier2_flags=self.watchdog.tier2_flags if self.watchdog else 0,
            slo_escalations=self.watchdog.escalations if self.watchdog else 0,
            slo_recoveries=self.watchdog.recoveries if self.watchdog else 0,
            watchdog_series={
                key: np.asarray(value)
                for key, value in self.watchdog_series.items()
            },
        )


def _apply_fault(
    now: float,
    event,
    tenant_index: int,
    runtimes: Sequence[_TenantRuntime],
    cluster: Cluster,
    heap: list,
    seq: itertools.count,
) -> None:
    """Dispatch one fault event from a tenant's timeline."""
    runtime = runtimes[tenant_index]
    if isinstance(event, ReplicaCrash):
        runtime.crash_replica(now, event, tenant_index, cluster, heap, seq)
    elif isinstance(event, NodeDrain):
        # Draining hits the shared node pool, so *every* tenant's replicas on
        # the node are affected — not just the tenant whose timeline fired.
        # Phase 1 (now): cordon the node and mark its replicas draining, so
        # routing stops sending them new queries while queued work keeps
        # running.  Phase 2 (now + grace_s, scheduled below): evict the
        # containers and settle still-unfinished queries per the in-flight
        # policy.  A drain aimed past the pool misfires (like a crash aimed
        # at an empty deployment) instead of aborting the run.
        try:
            node = cluster.node(event.node)
        except KeyError:
            return
        node.cordon()
        draining = {container.name for container in node.containers}
        for affected in runtimes:
            affected.mark_draining(draining)
        heapq.heappush(
            heap,
            (
                now + event.grace_s,
                EventKind.RECOVERY,
                next(seq),
                (tenant_index, ("drain-evict", event.node, event.policy)),
            ),
        )
        if event.duration_s > 0:
            heapq.heappush(
                heap,
                (
                    now + event.duration_s,
                    EventKind.RECOVERY,
                    next(seq),
                    (tenant_index, ("uncordon", event.node)),
                ),
            )
    elif isinstance(event, StragglerSlowdown):
        runtime.start_straggler(now, event, tenant_index, heap, seq)
    elif isinstance(event, TransientDegradation):
        runtime.start_degradation(now, event, tenant_index, heap, seq)
    else:  # pragma: no cover - the fault model only emits the types above
        raise TypeError(f"unknown fault event {event!r}")


def _drive(
    cluster: Cluster,
    runtimes: Sequence[_TenantRuntime],
    patterns: Sequence[TrafficPattern],
    probe=None,
    on_event: Callable[[float, int], None] | None = None,
) -> list:
    """Run every tenant's traffic through one shared event heap.

    Returns one entry per runtime: a :class:`SimulationResult` for in-memory
    runtimes, or the small summary dict of
    :meth:`_TenantRuntime.finish_run_streamed` for streamed ones (their full
    result lives in the spool).

    ``probe``, if given, is called as ``probe(now)`` after each tenant sample
    point (at equal timestamps every reconcile precedes every sample, so the
    probe always observes a settled cluster).  ``on_event``, if given, is
    called as ``on_event(now, kind)`` for every *logical* event — control
    ticks are coalesced into one heap event per boundary timestamp, but the
    observer still sees the individual AUTOSCALE/RECONCILE/SAMPLE phases in
    the historical order; the property-based tests use this to assert
    event-time monotonicity.
    """
    for runtime, pattern in zip(runtimes, patterns):
        runtime.begin_run(pattern)

    heap: list[tuple[float, int, int, object]] = []
    seq = itertools.count()
    # Coalesced control ticks: one heap event per unique boundary timestamp
    # carries every control phase landing there — each resident tenant's
    # AUTOSCALE evaluation, the shared cluster RECONCILE, each tenant's
    # SAMPLE point — in exactly the order the historical per-phase events
    # popped at that timestamp (tenants in registration order, reconcile
    # between the autoscale and sample phases).
    boundary_tenants: dict[float, list[int]] = {}
    for tenant_index, runtime in enumerate(runtimes):
        for boundary in runtime.boundaries:
            boundary_tenants.setdefault(float(boundary), []).append(tenant_index)
    for boundary, resident_tenants in boundary_tenants.items():
        heapq.heappush(heap, (boundary, EventKind.AUTOSCALE, next(seq), resident_tenants))
    for tenant_index, runtime in enumerate(runtimes):
        if runtime.num_served:
            heapq.heappush(
                heap, (float(runtime.arrivals[0]), EventKind.ARRIVAL, next(seq), (tenant_index, 0))
            )
    # Fault timelines are empty unless a tenant configured a fault model, so
    # a healthy run pushes nothing here (and consumes no sequence numbers).
    for tenant_index, runtime in enumerate(runtimes):
        for at_s, event in runtime.fault_timeline:
            heapq.heappush(
                heap, (float(at_s), EventKind.FAULT, next(seq), (tenant_index, event))
            )
    if any(runtime.fault_timeline for runtime in runtimes):
        # One tenant's node drain can evict any tenant's replicas, so every
        # tenant must maintain its in-flight registry to settle the fallout.
        for runtime in runtimes:
            runtime.track_inflight = True

    while heap:
        now, kind, _, payload = heapq.heappop(heap)
        if kind == EventKind.ARRIVAL:
            if on_event is not None:
                on_event(now, kind)
            tenant_index, index = payload
            runtime = runtimes[tenant_index]
            if runtime.track_completions or runtime.deadline_armed:
                # One event per arrival so completion (or timeout) events
                # interleave with arrivals in timestamp order.  Armed
                # deadlines force this mode even for policies that do not
                # track completions: serve_query must be able to schedule
                # TIMEOUT events, and the predicate re-evaluates at every
                # pop, so the ladder arming/disarming mid-run switches the
                # drain mode at the next arrival.
                runtime.serve_query(
                    runtime.arrival_at(index), index, tenant_index, heap, seq
                )
                if index + 1 < runtime.num_served:
                    heapq.heappush(
                        heap,
                        (
                            runtime.arrival_at(index + 1),
                            EventKind.ARRIVAL,
                            next(seq),
                            (tenant_index, index + 1),
                        ),
                    )
            else:
                # Chunked drain: serve every arrival up to (and including)
                # the next control event of *any* tenant; nothing can
                # preempt them in between.
                horizon = heap[0][0] if heap else float("inf")
                stop = int(np.searchsorted(runtime.arrivals, horizon, side="right"))
                stop = min(max(stop, index + 1), runtime.num_served)
                serve = runtime.serve_query
                arrival_list = runtime.arrival_list
                if arrival_list is not None:
                    for i in range(index, stop):
                        serve(arrival_list[i], i, tenant_index)
                    next_arrival = arrival_list[stop] if stop < runtime.num_served else None
                else:
                    # Streamed run: no whole-run Python list — convert one
                    # drain chunk at a time (same float64 values, bounded
                    # footprint at any horizon).
                    for i, arrival in enumerate(
                        runtime.arrivals[index:stop].tolist(), start=index
                    ):
                        serve(arrival, i, tenant_index)
                    next_arrival = (
                        runtime.arrival_at(stop) if stop < runtime.num_served else None
                    )
                if next_arrival is not None:
                    heapq.heappush(
                        heap,
                        (next_arrival, EventKind.ARRIVAL, next(seq), (tenant_index, stop)),
                    )
        elif kind == EventKind.COMPLETION:
            if on_event is not None:
                on_event(now, kind)
            tenant_index, deployment_name, server_name = payload
            runtimes[tenant_index].policy.on_complete(deployment_name, server_name)
        elif kind == EventKind.AUTOSCALE:
            # Coalesced control tick: autoscale each resident tenant, run the
            # shared reconcile, then sample each resident tenant — the exact
            # order the historical AUTOSCALE/RECONCILE/SAMPLE events popped.
            for tenant_index in payload:
                if on_event is not None:
                    on_event(now, EventKind.AUTOSCALE)
                runtime = runtimes[tenant_index]
                runtime.record_interval_metrics(now, cluster.metrics)
                if runtime.autoscale and runtime.autoscaler.should_evaluate(now):
                    runtime.autoscaler.evaluate(runtime.deployments, cluster.metrics, now)
            if on_event is not None:
                on_event(now, EventKind.RECONCILE)
            cluster.reconcile(now)
            for runtime in runtimes:
                runtime.sync_servers(now)
            for tenant_index in payload:
                if on_event is not None:
                    on_event(now, EventKind.SAMPLE)
                runtime = runtimes[tenant_index]
                runtime.sample(now)
                if probe is not None:
                    probe(now)
                if runtime.replan_requested:
                    # Relay the detector's fire as a typed heap event at this
                    # timestamp; same-time ordering puts it after the control
                    # tick, so the migration starts on a settled cluster.
                    runtime.replan_requested = False
                    heapq.heappush(
                        heap,
                        (now, EventKind.REPLAN, next(seq), (tenant_index, "fire")),
                    )
                if runtime.watchdog_actions:
                    # Relay ladder actions the same way: typed WATCHDOG
                    # events at this timestamp, applied in deterministic
                    # event order in every execution mode.
                    for action in runtime.watchdog_actions:
                        heapq.heappush(
                            heap,
                            (
                                now,
                                EventKind.WATCHDOG,
                                next(seq),
                                (tenant_index, action),
                            ),
                        )
                    runtime.watchdog_actions = []
            if any(runtime.stream is not None for runtime in runtimes):
                # Streamed (memory-bounded) runs also cap the HPA metric
                # history: the autoscalers only ever read trailing windows,
                # so samples behind every tenant's largest window are dead
                # weight.  Unstreamed runs keep the full history — tests and
                # probes may inspect it after the run.
                retention = max(
                    (
                        runtime.autoscaler.metric_window_s
                        for runtime in runtimes
                        if runtime.autoscaler is not None
                    ),
                    default=30.0,
                )
                cluster.metrics.prune(now - 2.0 * retention)
        elif kind == EventKind.FAULT:
            if on_event is not None:
                on_event(now, kind)
            tenant_index, event = payload
            _apply_fault(now, event, tenant_index, runtimes, cluster, heap, seq)
        elif kind == EventKind.RECOVERY:
            if on_event is not None:
                on_event(now, kind)
            tenant_index, action = payload
            if action[0] == "uncordon":
                cluster.uncordon_node(action[1])
            elif action[0] == "drain-evict":
                # End of a drain's grace period: evict whatever is still on
                # the (cordoned) node and settle its in-flight queries.
                lost = set(cluster.evict_node(action[1], now))
                if lost:
                    for index, affected in enumerate(runtimes):
                        affected.on_replicas_lost(
                            now, lost, action[2], index, heap, seq
                        )
            else:
                runtimes[tenant_index].recover(action)
        elif kind == EventKind.REPLAN:
            if on_event is not None:
                on_event(now, kind)
            tenant_index, action = payload
            runtime = runtimes[tenant_index]
            if action == "fire":
                cutover_at = runtime.start_replan(now, tenant_index, heap, seq)
                heapq.heappush(
                    heap,
                    (cutover_at, EventKind.REPLAN, next(seq), (tenant_index, "cutover")),
                )
            else:  # "cutover"
                runtime.apply_replan(now)
        elif kind == EventKind.WATCHDOG:
            if on_event is not None:
                on_event(now, kind)
            tenant_index, action = payload
            runtimes[tenant_index].apply_watchdog(now, action, tenant_index, heap, seq)
        elif kind == EventKind.TIMEOUT:
            if on_event is not None:
                on_event(now, kind)
            runtimes[payload[0]].handle_timeout(now, payload, heap, seq)
        else:  # EventKind.RETRY
            if on_event is not None:
                on_event(now, kind)
            runtimes[payload[0]].handle_retry(now, payload, heap, seq)

    return [
        runtime.finish_run_streamed() if runtime.stream is not None else runtime.finish_run()
        for runtime in runtimes
    ]


class ServingEngine:
    """Discrete-event simulation of one deployment plan under query traffic.

    The engine owns the simulated cluster, the autoscaler and the routing
    policy; :meth:`run` drives one traffic pattern through the event loop and
    returns a :class:`SimulationResult`.  State (replica counts, queues,
    autoscaler history) persists across runs, mirroring the behaviour of the
    historical simulator.
    """

    def __init__(
        self,
        plan: DeploymentPlan,
        routing: str | RoutingPolicy = "least-work",
        autoscale: bool = True,
        autoscaler: HorizontalPodAutoscaler | None = None,
        initial_replicas: int | None = None,
        warm_start: bool = True,
        max_replicas: int = 256,
        sample_interval_s: float = 15.0,
        seed: int = 0,
        cost_model: str | QueryCostModel = "homogeneous",
        max_batch: int = 1,
        batch_window_s: float = 0.0,
        faults: str | FaultModel | None = None,
        vectorized: bool = True,
        cache_mb: float = 0.0,
        drift: str | object | None = None,
        replan: str | ReplanPolicy | None = None,
        slo: str | SloPolicy | None = None,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self._cluster = Cluster.from_plan(
            plan, initial_replicas=initial_replicas, max_replicas=max_replicas
        )
        self._runtime = _TenantRuntime(
            name=plan.name,
            plan=plan,
            deployments=self._cluster.deployments,
            policy=make_routing_policy(routing),
            autoscale=autoscale,
            autoscaler=autoscaler or HorizontalPodAutoscaler(),
            sla_s=plan.cluster.sla_s,
            sample_interval_s=sample_interval_s,
            seed=seed,
            cost_model=make_cost_model(cost_model, plan.workload),
            max_batch=max_batch,
            batch_window_s=batch_window_s,
            faults=faults,
            vectorized=vectorized,
            cache_mb=cache_mb,
            drift=drift,
            replan=replan,
            slo=slo,
        )
        self._cluster.reconcile(0.0)
        if warm_start:
            _force_ready(self._cluster, 0.0)
        self._runtime.sync_servers(0.0)

    @property
    def cluster(self) -> Cluster:
        """The simulated cluster."""
        return self._cluster

    @property
    def routing_policy(self) -> RoutingPolicy:
        """The active replica-selection policy."""
        return self._runtime.policy

    def invalidate_caches(self) -> None:
        """Re-sharding hook: drop every replica's embedding-cache contents."""
        self._runtime.invalidate_caches()

    def run(
        self,
        pattern: TrafficPattern,
        on_event: Callable[[float, int], None] | None = None,
    ) -> SimulationResult:
        """Simulate the plan under the given traffic pattern.

        ``on_event``, if given, observes every popped heap event as
        ``on_event(now, kind)`` (used by invariant tests).
        """
        return _drive(self._cluster, [self._runtime], [pattern], on_event=on_event)[0]


# ----------------------------------------------------------------------
# Multi-tenant cluster simulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a multi-tenant cluster simulation.

    A tenant is one deployment plan served under its own traffic pattern with
    its own routing policy, SLA target, autoscaler and random seed.  All
    tenants share the engine's node pool, so their replicas compete for
    placement; ``max_replicas`` is the tenant's replica budget (the cap each
    of its deployments may scale to).
    """

    name: str
    plan: DeploymentPlan
    pattern: TrafficPattern
    routing: str | RoutingPolicy = "least-work"
    seed: int = 0
    autoscale: bool = True
    autoscaler: HorizontalPodAutoscaler | None = None
    sla_s: float | None = None
    sample_interval_s: float = 15.0
    initial_replicas: int | None = None
    max_replicas: int = 256
    cost_model: str | QueryCostModel = "homogeneous"
    max_batch: int = 1
    batch_window_s: float = 0.0
    faults: str | FaultModel | None = None
    #: Route via the vectorized replica pools (the default); ``False``
    #: selects the bit-exact historical scalar path (equivalence testing).
    vectorized: bool = True
    #: Per-replica embedding-cache budget in MB (0.0 disables the tier;
    #: requires a cost model exposing gather splits, i.e. ``skewed``).
    cache_mb: float = 0.0
    #: Access-skew drift spec (``None``/``"none"`` for a static distribution;
    #: requires the skewed cost model).  See ``parse_drift_spec``.
    drift: str | object | None = None
    #: Re-plan trigger spec (``None``/``"none"`` keeps the initial plan).
    #: See ``parse_replan_spec``.
    replan: str | ReplanPolicy | None = None
    #: SLO watchdog spec (``None``/``"none"`` keeps the control plane off).
    #: See ``parse_slo_spec``.
    slo: str | SloPolicy | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tenant needs a name")
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        if self.sla_s is not None and self.sla_s <= 0:
            raise ValueError("sla_s must be positive")
        if self.max_replicas <= 0:
            raise ValueError("max_replicas must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if self.cache_mb < 0:
            raise ValueError("cache_mb must be non-negative")
        validate_fault_spec(self.faults)
        validate_drift_spec(self.drift)
        validate_replan_spec(self.replan)
        validate_slo_spec(self.slo)


@dataclass
class ClusterSeries:
    """Cluster-wide time series sampled over a multi-tenant run."""

    sample_times: np.ndarray
    memory_gb: np.ndarray
    memory_utilization: np.ndarray
    pending_placements: np.ndarray
    nodes_in_use: np.ndarray

    @property
    def peak_memory_gb(self) -> float:
        """Highest allocated memory across all tenants."""
        return float(self.memory_gb.max()) if self.memory_gb.size else 0.0

    @property
    def peak_pending_placements(self) -> int:
        """Deepest pending-placement queue observed."""
        return int(self.pending_placements.max()) if self.pending_placements.size else 0

    @property
    def mean_memory_utilization(self) -> float:
        """Average fraction of pool memory allocated over the run."""
        return float(self.memory_utilization.mean()) if self.memory_utilization.size else 0.0

    def summary(self) -> dict[str, float]:
        """Headline cluster-wide aggregates."""
        return {
            "peak_memory_gb": self.peak_memory_gb,
            "mean_memory_utilization": self.mean_memory_utilization,
            "peak_pending_placements": float(self.peak_pending_placements),
            "peak_nodes_in_use": float(self.nodes_in_use.max()) if self.nodes_in_use.size else 0.0,
        }


@dataclass
class MultiTenantResult:
    """Per-tenant results plus cluster-wide series of one multi-tenant run."""

    tenants: dict[str, SimulationResult]
    cluster_series: ClusterSeries
    #: Populated by :func:`repro.serving.sharding.run_sharded`: worker count,
    #: shard membership, per-worker peak RSS and wall time.  ``None`` for a
    #: plain in-process run; excluded from equality (it is measurement, not
    #: simulation output).
    sharding_stats: dict | None = field(default=None, repr=False, compare=False)

    def tenant(self, name: str) -> SimulationResult:
        """One tenant's result by name."""
        try:
            return self.tenants[name]
        except KeyError:
            raise KeyError(f"no tenant named {name!r}") from None

    @property
    def total_queries(self) -> int:
        """Queries served across every tenant."""
        return sum(r.tracker.num_samples for r in self.tenants.values())

    def summary(self) -> dict[str, dict]:
        """Cluster aggregates plus each tenant's headline aggregates."""
        cluster = self.cluster_series.summary()
        cluster["total_queries"] = float(self.total_queries)
        return {
            "cluster": cluster,
            "tenants": {name: result.summary() for name, result in self.tenants.items()},
        }

    def sla_report(self) -> list[dict[str, object]]:
        """One row per tenant: SLA target, violations and headline latency."""
        rows = []
        for name, result in self.tenants.items():
            rows.append(
                {
                    "tenant": name,
                    "routing": result.routing,
                    "sla_ms": result.sla_s * 1000.0,
                    "queries": result.tracker.num_samples,
                    "p95_latency_ms": result.overall_p95_latency_ms,
                    "sla_violations": result.sla_violation_count(),
                    "sla_violation_fraction": result.sla_violation_fraction(),
                }
            )
        return rows

    def worst_tenant(self) -> str:
        """The tenant with the highest SLA-violation fraction."""
        return max(self.tenants, key=lambda name: self.tenants[name].sla_violation_fraction())


class _ClusterProbe:
    """Samples cluster-wide metrics at tenant sample points (dedup by time)."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self._points: dict[float, tuple[float, float, int, int]] = {}

    def __call__(self, now: float) -> None:
        # At a given timestamp every reconcile precedes every sample and
        # sampling never mutates the cluster, so the first snapshot stands.
        if now in self._points:
            return
        self._points[now] = (
            self._cluster.allocated_memory_gb,
            self._cluster.memory_utilization(),
            self._cluster.pending_placement_count,
            self._cluster.nodes_in_use(),
        )

    def series(self) -> ClusterSeries:
        times = sorted(self._points)
        values = [self._points[t] for t in times]
        return ClusterSeries(
            sample_times=np.asarray(times),
            memory_gb=np.asarray([v[0] for v in values]),
            memory_utilization=np.asarray([v[1] for v in values]),
            pending_placements=np.asarray([v[2] for v in values], dtype=np.int64),
            nodes_in_use=np.asarray([v[3] for v in values], dtype=np.int64),
        )


class MultiTenantEngine:
    """N tenants competing for one shared, capacity-constrained node pool.

    Each :class:`TenantSpec` brings its own deployment plan, traffic pattern,
    routing policy, SLA target, autoscaler and seed; the engine hosts every
    tenant's deployments (namespaced ``<tenant>/<shard>`` when there is more
    than one tenant) on a single
    :class:`~repro.cluster.cluster.Cluster` whose node pool is fixed by
    ``cluster_spec``.  One event heap drives all tenants, so arrivals,
    autoscaler ticks and reconciles from different tenants interleave in
    timestamp order and replicas compete for placement through the shared
    bin-packing scheduler — replicas that do not fit queue as pending
    placements (visible in :class:`ClusterSeries`).

    With a single tenant the engine reproduces :class:`ServingEngine` (and
    the seed simulator) bit-for-bit for the same seed.
    """

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        cluster_spec: ClusterSpec | None = None,
        warm_start: bool = True,
        namespace: bool | None = None,
        stream: StreamConfig | None = None,
    ) -> None:
        if not tenants:
            raise ValueError("at least one tenant is required")
        names = [t.name for t in tenants]
        if len(names) != len(set(names)):
            raise ValueError("tenant names must be unique")
        spec = cluster_spec if cluster_spec is not None else tenants[0].plan.cluster
        self._cluster = Cluster(spec)
        self._specs = list(tenants)
        self._runtimes: list[_TenantRuntime] = []
        # Deployment names are namespaced ``<tenant>/<shard>`` whenever more
        # than one tenant shares the pool.  A sharded worker must override
        # this: it may hold a single tenant of a run that *is* multi-tenant,
        # and bit-exactness requires the serial run's deployment names.
        if namespace is None:
            namespace = len(self._specs) > 1
        self._stream = stream
        for index, tenant in enumerate(self._specs):
            deployments = self._cluster.add_plan(
                tenant.plan,
                prefix=tenant.name if namespace else None,
                initial_replicas=tenant.initial_replicas,
                max_replicas=tenant.max_replicas,
            )
            self._runtimes.append(
                _TenantRuntime(
                    name=tenant.name,
                    plan=tenant.plan,
                    deployments=deployments,
                    policy=make_routing_policy(tenant.routing),
                    autoscale=tenant.autoscale,
                    autoscaler=tenant.autoscaler or HorizontalPodAutoscaler(),
                    sla_s=tenant.sla_s if tenant.sla_s is not None else tenant.plan.cluster.sla_s,
                    sample_interval_s=tenant.sample_interval_s,
                    seed=tenant.seed,
                    cost_model=make_cost_model(tenant.cost_model, tenant.plan.workload),
                    max_batch=tenant.max_batch,
                    batch_window_s=tenant.batch_window_s,
                    faults=tenant.faults,
                    vectorized=tenant.vectorized,
                    cache_mb=tenant.cache_mb,
                    drift=tenant.drift,
                    replan=tenant.replan,
                    slo=tenant.slo,
                    stream=(
                        StreamConfig(
                            directory=stream.directory / f"tenant-{index:03d}",
                            spill_threshold=stream.spill_threshold,
                            flush_series_every=stream.flush_series_every,
                        )
                        if stream is not None
                        else None
                    ),
                )
            )
        self._cluster.reconcile(0.0)
        if warm_start:
            _force_ready(self._cluster, 0.0)
        for runtime in self._runtimes:
            runtime.sync_servers(0.0)

    @property
    def cluster(self) -> Cluster:
        """The shared simulated cluster."""
        return self._cluster

    @property
    def tenant_names(self) -> list[str]:
        """Tenant names, in registration order."""
        return [t.name for t in self._specs]

    def run(
        self, on_event: Callable[[float, int], None] | None = None
    ) -> "MultiTenantResult | ShardManifest":
        """Drive every tenant's traffic pattern through the shared event heap.

        In streamed mode the per-tenant results live in the spool (each
        tenant's runtime flushed them as the run progressed); what returns is
        a :class:`ShardManifest` pointing at the spool directory, which
        :func:`repro.serving.sharding.merge_stream` turns back into a
        :class:`MultiTenantResult`.
        """
        probe = _ClusterProbe(self._cluster)
        results = _drive(
            self._cluster,
            self._runtimes,
            [tenant.pattern for tenant in self._specs],
            probe=probe,
            on_event=on_event,
        )
        if self._stream is None:
            return MultiTenantResult(
                tenants={result.tenant: result for result in results},
                cluster_series=probe.series(),
            )
        series = probe.series()
        writer = SpoolWriter(self._stream.directory)
        writer.append(
            "cluster",
            sample_times=series.sample_times,
            memory_gb=series.memory_gb,
            memory_utilization=series.memory_utilization,
            pending_placements=series.pending_placements,
            nodes_in_use=series.nodes_in_use,
        )
        tenant_dirs = [f"tenant-{index:03d}" for index in range(len(self._specs))]
        capacity_gb = self._cluster.memory_capacity_gb
        writer.write_meta(
            {
                "schema": 1,
                "status": "complete",
                "tenants": [tenant.name for tenant in self._specs],
                "tenant_dirs": tenant_dirs,
                "capacity_gb": capacity_gb,
            }
        )
        return ShardManifest(
            directory=self._stream.directory,
            tenant_names=[tenant.name for tenant in self._specs],
            tenant_dirs=tenant_dirs,
            capacity_gb=capacity_gb,
            summaries=results,
        )
