"""Query traffic patterns and Poisson arrival generation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TrafficPhase", "TrafficPattern", "paper_dynamic_pattern"]


@dataclass(frozen=True)
class TrafficPhase:
    """A constant-rate segment of a traffic pattern."""

    start_s: float
    rate_qps: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.rate_qps < 0:
            raise ValueError("rate_qps must be non-negative")


@dataclass(frozen=True)
class TrafficPattern:
    """A piecewise-constant target query rate over a finite duration."""

    phases: tuple[TrafficPhase, ...]
    duration_s: float

    def __post_init__(self) -> None:
        phases = tuple(self.phases)
        object.__setattr__(self, "phases", phases)
        if not phases:
            raise ValueError("a traffic pattern needs at least one phase")
        if phases[0].start_s != 0:
            raise ValueError("the first phase must start at time 0")
        starts = [p.start_s for p in phases]
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ValueError("phase start times must increase strictly")
        if self.duration_s <= starts[-1]:
            raise ValueError("duration_s must extend past the last phase start")
        # Cached phase arrays backing the vectorized rate_at lookup.
        object.__setattr__(self, "_starts", np.asarray(starts, dtype=np.float64))
        object.__setattr__(
            self, "_rates", np.asarray([p.rate_qps for p in phases], dtype=np.float64)
        )

    @classmethod
    def constant(cls, rate_qps: float, duration_s: float) -> "TrafficPattern":
        """A single-phase constant-rate pattern."""
        return cls(phases=(TrafficPhase(0.0, rate_qps),), duration_s=duration_s)

    @classmethod
    def from_steps(
        cls, steps: list[tuple[float, float]], duration_s: float
    ) -> "TrafficPattern":
        """Build from ``(start_s, rate_qps)`` pairs."""
        return cls(
            phases=tuple(TrafficPhase(start, rate) for start, rate in steps),
            duration_s=duration_s,
        )

    def rate_at(self, time_s: "float | np.ndarray") -> "float | np.ndarray":
        """Target query rate at an instant — or at a whole array of instants.

        Times past the end of the pattern are clamped to the final rate, so
        samplers whose grid overshoots ``duration_s`` (e.g. a sample boundary
        landing just beyond the last arrival) read a well-defined value.

        Given an array, the lookup is one vectorized ``searchsorted`` over
        the phase starts and returns a float64 array — the engine builds the
        ``target_qps`` series this way instead of a per-sample Python loop.
        """
        if np.ndim(time_s) == 0:
            if time_s < 0:
                raise ValueError(f"time {time_s} outside the pattern duration")
            time_s = min(time_s, self.duration_s)
            # The active phase is the last one whose start is <= time_s.
            index = int(np.searchsorted(self._starts, time_s, side="right")) - 1
            return float(self._rates[index])
        times = np.asarray(time_s, dtype=np.float64)
        if times.size and float(times.min()) < 0:
            raise ValueError(f"time {float(times.min())} outside the pattern duration")
        clamped = np.minimum(times, self.duration_s)
        indices = np.searchsorted(self._starts, clamped, side="right") - 1
        return self._rates[indices]

    @property
    def peak_rate(self) -> float:
        """Highest target rate of the pattern."""
        return max(p.rate_qps for p in self.phases)

    def expected_queries(self) -> float:
        """Expected number of queries over the whole pattern."""
        total = 0.0
        for index, phase in enumerate(self.phases):
            end = (
                self.phases[index + 1].start_s
                if index + 1 < len(self.phases)
                else self.duration_s
            )
            total += phase.rate_qps * (end - phase.start_s)
        return total

    def arrivals(self, rng: np.random.Generator) -> np.ndarray:
        """Poisson arrival times over the pattern's duration (sorted)."""
        arrivals = []
        for index, phase in enumerate(self.phases):
            end = (
                self.phases[index + 1].start_s
                if index + 1 < len(self.phases)
                else self.duration_s
            )
            if phase.rate_qps <= 0:
                continue
            expected = phase.rate_qps * (end - phase.start_s)
            count = rng.poisson(expected)
            times = rng.uniform(phase.start_s, end, size=count)
            arrivals.append(times)
        if not arrivals:
            return np.empty(0, dtype=np.float64)
        return np.sort(np.concatenate(arrivals))


def paper_dynamic_pattern(
    base_qps: float = 50.0,
    peak_qps: float = 250.0,
    duration_s: float = 1800.0,
) -> TrafficPattern:
    """The Figure 19 traffic profile.

    The input traffic is raised in five equal increments between minute 5 and
    minute 20 and then reduced at minute 24; the experiment runs for 30
    simulated minutes.  Shorter (or longer) ``duration_s`` values keep the
    same shape by scaling every phase boundary proportionally.
    """
    if peak_qps <= base_qps:
        raise ValueError("peak_qps must exceed base_qps")
    increments = 5
    step = (peak_qps - base_qps) / increments
    time_scale = duration_s / 1800.0
    ramp_start, ramp_end, drop_at = (
        5 * 60.0 * time_scale,
        20 * 60.0 * time_scale,
        24 * 60.0 * time_scale,
    )
    phase_gap = (ramp_end - ramp_start) / (increments - 1)
    steps: list[tuple[float, float]] = [(0.0, base_qps)]
    for i in range(increments):
        steps.append((ramp_start + i * phase_gap, base_qps + (i + 1) * step))
    steps.append((drop_at, base_qps + step))
    return TrafficPattern.from_steps(steps, duration_s=duration_s)
