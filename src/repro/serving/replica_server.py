"""Per-replica batch-queue serving.

A replica is a FIFO queue that serves *batches*: queries that queue up behind
the same busy period coalesce into one batch of up to ``max_batch`` queries
(optionally held open for ``batch_window_s`` after the first arrival), and
the whole batch's service time comes from a
:class:`~repro.hardware.perf_model.BatchLatencyModel` — sub-linear in batch
size for dense shards, per-gathered-vector for embedding shards.

With the default ``max_batch=1`` every query is its own batch and
``factor(1, multiplier=1.0) == 1.0`` exactly, so the server reproduces the
historical single-query FIFO model bit-for-bit: a query submitted at
``arrival`` completes at ``max(arrival, busy_until, ready_at) +
service_time``.

The class sits on the serving engine's per-query hot path, so it is slotted,
``submit`` short-circuits the batch bookkeeping in the single-query-batch
configuration (and skips the latency model entirely for an average-cost
query, where the factor is exactly 1.0), and the merged busy runs are kept as
parallel start/end lists so windowed utilization lookups bisect into them
instead of scanning the whole history.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import islice

from repro.data.distributions import AccessDistribution
from repro.hardware.perf_model import BatchLatencyModel

__all__ = ["CacheSpec", "ReplicaCache", "ReplicaServer"]


class CacheSpec:
    """Sizing and geometry of one deployment's per-replica embedding cache.

    One spec is shared by every replica of a deployment; the mutable per
    replica state is :class:`ReplicaCache`.  The model is the conservative
    hot-prefix one the paper adopts from the caching literature (after Kwon
    et al., as in ``core/gpu_cache.py``): a cache holding ``p`` rows is
    approximated as holding the ``p`` *hottest* rows, so the probability
    that a gather hits is the distribution's coverage of that prefix.
    Splitting by the shared hot-prefix definition
    (:func:`repro.data.distributions.hot_prefix_rows`, the same prefix
    :class:`~repro.serving.workload.SkewedCostModel` charges
    ``hot_cost_fraction`` for):

    * a *hot* gather (rank < ``hot_rows``) hits with probability
      ``coverage(min(p, hot_rows)) / coverage(hot_rows)``;
    * a *cold* gather hits with probability
      ``max(0, coverage(p) - coverage(hot_rows)) / (1 - coverage(hot_rows))``.

    ``coverage`` is far too slow to evaluate per query (the Zipf CDF sums a
    65536-rank exact head), so both curves are precomputed on a uniform fill
    grid at construction and linearly interpolated at serve time.  The two
    endpoints bypass the interpolation: an empty cache hits nothing and a
    full cache returns the exact grid-end values (both exactly 1.0 when the
    capacity covers the whole table), which the warm-cache bit-exactness
    tests rely on.
    """

    __slots__ = (
        "capacity_rows",
        "capacity_eff",
        "inv_capacity_eff",
        "hot_rows",
        "hit_cost_fraction",
        "_step",
        "_f_hot",
        "_f_cold",
    )

    #: Fill-grid resolution; interpolation error is invisible next to the
    #: hot-prefix approximation itself.
    GRID_POINTS = 257

    def __init__(
        self,
        distribution: AccessDistribution,
        capacity_rows: int,
        hot_rows: int,
        hit_cost_fraction: float,
    ) -> None:
        if capacity_rows < 1:
            raise ValueError("capacity_rows must be at least 1 (0 means no cache)")
        if hot_rows < 1:
            raise ValueError("hot_rows must be at least 1")
        if not 0.0 <= hit_cost_fraction <= 1.0:
            raise ValueError("hit_cost_fraction must be in [0, 1]")
        num_items = distribution.num_items
        self.capacity_rows = int(capacity_rows)
        self.capacity_eff = min(self.capacity_rows, num_items)
        #: Cached reciprocal: ``fill_fraction`` is read on every routing
        #: decision of the recovery-aware policy, so the division is paid
        #: once here (the full-cache case is special-cased to exactly 1.0 —
        #: ``x * (1/x)`` is not 1.0 for every x).
        self.inv_capacity_eff = 1.0 / self.capacity_eff
        self.hot_rows = min(int(hot_rows), num_items)
        self.hit_cost_fraction = float(hit_cost_fraction)
        cov_hot = distribution.coverage(self.hot_rows)
        cold_mass = 1.0 - cov_hot
        points = min(self.GRID_POINTS, self.capacity_eff + 1)
        self._step = self.capacity_eff / (points - 1) if points > 1 else 1.0
        f_hot = []
        f_cold = []
        for index in range(points):
            fill = round(index * self._step)
            cov_fill = distribution.coverage(fill)
            f_hot.append(
                distribution.coverage(min(fill, self.hot_rows)) / cov_hot
                if cov_hot > 0
                else 0.0
            )
            f_cold.append(
                max(0.0, cov_fill - cov_hot) / cold_mass if cold_mass > 0 else 0.0
            )
        if self.capacity_eff >= num_items:
            # Full-table capacity: the endpoint is exact by construction
            # (coverage(num_items) == 1.0), every gather hits a full cache.
            f_hot[-1] = 1.0
            f_cold[-1] = 1.0
        self._f_hot = f_hot
        self._f_cold = f_cold

    @property
    def step(self) -> float:
        """Fill-grid spacing in rows (the lerp divisor)."""
        return self._step

    @property
    def grid_hot(self) -> list:
        """Hot-gather hit fractions on the fill grid (treat as read-only).

        Exposed so the serving engine can lane-slot the grid and inline the
        :meth:`hit_fractions` lerp in its vectorized cached branch with the
        exact same list lookups this class performs.
        """
        return self._f_hot

    @property
    def grid_cold(self) -> list:
        """Cold-gather hit fractions on the fill grid (treat as read-only)."""
        return self._f_cold

    def hit_fractions(self, fill_rows: float) -> tuple[float, float]:
        """(hot-gather, cold-gather) hit probabilities at a given fill."""
        if fill_rows <= 0.0:
            return 0.0, 0.0
        f_hot = self._f_hot
        f_cold = self._f_cold
        if fill_rows >= self.capacity_eff:
            return f_hot[-1], f_cold[-1]
        position = fill_rows / self._step
        index = int(position)
        if index >= len(f_hot) - 1:
            return f_hot[-1], f_cold[-1]
        frac = position - index
        hot_a = f_hot[index]
        cold_a = f_cold[index]
        return (
            hot_a + frac * (f_hot[index + 1] - hot_a),
            cold_a + frac * (f_cold[index + 1] - cold_a),
        )


class ReplicaCache:
    """Mutable per-replica embedding-cache state: how many rows are resident.

    A fresh cache starts empty, so a crash-replacement or drain-evicted
    replica's replacement container restarts cold and earns its hit rate
    back one served query at a time.  Warm-up is *optimistic* in the
    insert-on-miss sense: every missed gather is assumed to admit a new row
    (duplicate misses across queries are not deduplicated), which slightly
    overestimates warm-up speed but keeps admission O(1) per query.
    """

    __slots__ = ("spec", "fill_rows")

    def __init__(self, spec: CacheSpec) -> None:
        self.spec = spec
        self.fill_rows = 0.0

    @property
    def fill_fraction(self) -> float:
        """Resident rows as a fraction of the effective capacity.

        Uses the spec's cached ``1/capacity_eff`` (a multiply, not a divide)
        with the full cache special-cased to exactly 1.0; the vectorized
        routing path computes the identical expression over the pool's fill
        array, so both paths rank replicas bit-identically.
        """
        fill = self.fill_rows
        spec = self.spec
        if fill >= spec.capacity_eff:
            return 1.0
        return fill * spec.inv_capacity_eff

    def hit_rate(self, hot_gathers: float, cold_gathers: float) -> float:
        """Expected fraction of a query's gathers served from the cache."""
        total = hot_gathers + cold_gathers
        if total <= 0.0:
            return 0.0
        f_hot, f_cold = self.spec.hit_fractions(self.fill_rows)
        return (hot_gathers * f_hot + cold_gathers * f_cold) / total

    def price(self, hot_gathers: float, cold_gathers: float) -> tuple[float, float]:
        """Pure pricing read: (hit rate, expected hit count), no admission.

        ``hits`` is returned alongside the rate because ``hit_rate * total``
        does not round back to ``hits`` in floating point — :meth:`admit`
        needs the exact hit count to reproduce :meth:`serve`'s fill update.
        """
        total = hot_gathers + cold_gathers
        if total <= 0.0:
            return 0.0, 0.0
        f_hot, f_cold = self.spec.hit_fractions(self.fill_rows)
        hits = hot_gathers * f_hot + cold_gathers * f_cold
        return hits / total, hits

    def admit(self, total_gathers: float, hits: float) -> None:
        """Admit one priced query's missed gathers, clamped at capacity.

        The single admission rule shared by the scalar reference and the
        pool-array path: fill grows by ``total - hits`` and saturates at the
        effective capacity.
        """
        fill = self.fill_rows + (total_gathers - hits)
        capacity = self.spec.capacity_eff
        self.fill_rows = capacity if fill > capacity else fill

    def serve(self, hot_gathers: float, cold_gathers: float) -> float:
        """Hit rate for one query's gathers; admits the missed rows."""
        total = hot_gathers + cold_gathers
        if total <= 0.0:
            return 0.0
        hit_rate, hits = self.price(hot_gathers, cold_gathers)
        self.admit(total, hits)
        return hit_rate

    def warm(self) -> None:
        """Fill to capacity instantly (asymptotic steady state, for tests)."""
        self.fill_rows = float(self.spec.capacity_eff)

    def invalidate(self) -> None:
        """Drop every resident row (re-sharding moves the rows elsewhere)."""
        self.fill_rows = 0.0


class ReplicaServer:
    """A single container replica modelled as a FIFO batch queue.

    Each replica serves one batch at a time (service times already assume a
    query uses the whole container's resources, matching how per-replica QPS
    is defined throughout the planner).  A query submitted at ``arrival``
    either joins the batch currently forming (if the batch has room and has
    not started service yet) or opens a new batch that starts at
    ``max(arrival, busy_until, ready_at)`` — plus the batching window when
    one is configured, giving later queries a chance to share the batch.

    Joining a batch extends the batch's completion by the member's
    incremental cost; every member's recorded completion is the batch
    completion as of the moment it joined, so completions stay monotone.

    Invariant relied on by the vectorized routing layer: ``busy_until``
    starts at ``ready_at`` and only ever increases, so ``busy_until`` *is*
    the queue-drain time ``max(busy_until, ready_at)``.
    """

    __slots__ = (
        "_name",
        "_ready_at",
        "_busy_until",
        "_max_batch",
        "_single",
        "_batch_window_s",
        "_batch_model",
        "_unit_scale",
        "_completed",
        "_batches",
        "_busy_time",
        "_failed",
        "_draining",
        "_batch_start",
        "_batch_count",
        "_batch_mult_sum",
        "_batch_base",
        "_run_starts",
        "_run_ends",
        "cache",
    )

    def __init__(
        self,
        name: str,
        ready_at: float = 0.0,
        max_batch: int = 1,
        batch_window_s: float = 0.0,
        batch_model: BatchLatencyModel | None = None,
        cache: ReplicaCache | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        self._name = name
        self._ready_at = float(ready_at)
        self._busy_until = float(ready_at)
        self._max_batch = int(max_batch)
        self._single = self._max_batch == 1
        self._batch_window_s = float(batch_window_s)
        self._batch_model = batch_model
        # Slope of factor(1, m) in the multiplier, precomputed so the
        # single-query-batch hot path prices a query with one fused
        # multiply-add instead of two method calls.  ``None`` means no model
        # (factor(1, m) == m); dense ignores multipliers (slope 0.0, so the
        # expression is exactly 1.0); embedding and monolithic share
        # ``1 + (1 - overhead) * (m - 1)`` at batch size one (the monolithic
        # dense term ``1 ** exponent`` is exactly 1.0).
        if batch_model is None:
            self._unit_scale = None
        elif batch_model.kind == "dense":
            self._unit_scale = 0.0
        else:
            self._unit_scale = 1.0 - batch_model.overhead_fraction
        #: Per-replica embedding cache, or ``None`` on cache-less runs.  The
        #: engine reads and updates it; a replacement container gets a fresh
        #: (cold) instance, never the dead replica's warm one.
        self.cache = cache
        self._completed = 0
        self._batches = 0
        self._busy_time = 0.0
        self._failed = False
        self._draining = False
        # Forming-batch state: service-start time, member count, summed cost
        # multipliers and the batch's base (mean per-query) service time.
        self._batch_start = 0.0
        self._batch_count = 0
        self._batch_mult_sum = 0.0
        self._batch_base = 0.0
        # Merged [start, end) busy runs as parallel lists; FIFO submits only
        # ever extend the last run or open a new one, so both stay short (one
        # entry per idle gap, not per query) and the ends stay sorted —
        # windowed lookups bisect into them.
        self._run_starts: list[float] = []
        self._run_ends: list[float] = []

    @property
    def name(self) -> str:
        """Replica name."""
        return self._name

    @property
    def ready_at(self) -> float:
        """Time at which the replica finished starting up."""
        return self._ready_at

    @property
    def busy_until(self) -> float:
        """Time at which the replica's queue drains."""
        return self._busy_until

    @property
    def completed_queries(self) -> int:
        """Queries served so far."""
        return self._completed

    @property
    def completed_batches(self) -> int:
        """Batches opened so far (each serves one or more queries)."""
        return self._batches

    @property
    def max_batch(self) -> int:
        """Largest number of queries one batch may coalesce."""
        return self._max_batch

    @property
    def batch_model(self) -> BatchLatencyModel | None:
        """The latency model scaling this replica's batch service times."""
        return self._batch_model

    @property
    def busy_seconds(self) -> float:
        """Total service time accumulated (for utilization accounting)."""
        return self._busy_time

    @property
    def failed(self) -> bool:
        """Whether the replica was killed by a fault event."""
        return self._failed

    @property
    def draining(self) -> bool:
        """Whether the replica is being drained (no new traffic)."""
        return self._draining

    def fail(self) -> None:
        """Mark the replica dead (fault injection): it must not serve again."""
        self._failed = True

    def start_drain(self) -> None:
        """Stop accepting new traffic ahead of an eviction."""
        self._draining = True

    def is_ready(self, now: float) -> bool:
        """Whether the replica can accept traffic at ``now``."""
        return now >= self._ready_at

    def is_available(self, now: float) -> bool:
        """Ready *and* neither failed nor draining: routable at ``now``."""
        return not self._failed and not self._draining and now >= self._ready_at

    def pending_work(self, now: float) -> float:
        """Seconds of queued work ahead of a query submitted at ``now``."""
        return max(0.0, self._busy_until - now)

    # ------------------------------------------------------------------
    # Batch mechanics
    # ------------------------------------------------------------------
    def _factor(self, count: int, mult_sum: float) -> float:
        if self._batch_model is not None:
            return self._batch_model.factor(count, mult_sum)
        # No model: gather-style linear scaling in the summed multipliers
        # (exactly 1.0 for a single average-cost query).
        return mult_sum

    def _unit_factor(self, multiplier: float) -> float:
        """``factor(1, multiplier)`` via the precomputed slope (bit-exact)."""
        scale = self._unit_scale
        if scale is None:
            return self._factor(1, multiplier)
        return 1.0 + scale * (multiplier - 1.0)

    def unit_service(self, service_time: float, multiplier: float = 1.0) -> float:
        """Service seconds of a fresh single-query batch (no queue effects).

        The vectorized cost-weighted routing path uses this shared scalar:
        with uniform single-query batches, every replica's predicted
        completion is ``max(arrival, busy_until) + unit_service(...)``.
        """
        return service_time * self._unit_factor(multiplier)

    def _can_join(self, arrival: float) -> bool:
        return (
            self._max_batch > 1
            and 0 < self._batch_count < self._max_batch
            and arrival <= self._batch_start
        )

    def submit(self, arrival: float, service_time: float, multiplier: float = 1.0) -> float:
        """Enqueue one query and return its (batch's) completion time.

        ``service_time`` is the deployment's mean per-query service time and
        ``multiplier`` the query's sampled cost multiplier (1.0 for an
        average query).
        """
        if service_time <= 0:
            raise ValueError("service_time must be positive")
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if not self._single and self._can_join(arrival):
            self._batch_count += 1
            # The batch's cost is accounted in units of its opener's base
            # service time; a joiner with a different base contributes
            # proportionally (ratio 1.0, and bit-exact, in the uniform case).
            self._batch_mult_sum += multiplier * (service_time / self._batch_base)
            completion = self._batch_start + self._batch_base * self._factor(
                self._batch_count, self._batch_mult_sum
            )
            completion = max(completion, self._busy_until)
            self._busy_time += completion - self._busy_until
            self._busy_until = completion
            self._run_ends[-1] = completion
        else:
            busy = self._busy_until
            # busy_until >= ready_at always, so the two-way comparison is the
            # historical three-way max(arrival, busy_until, ready_at).
            start = arrival if arrival > busy else busy
            if self._single:
                # Single-query batches: no forming-batch state to maintain,
                # and an average-cost query has a factor of exactly 1.0.
                # The general case inlines the precomputed unit slope — one
                # fused multiply-add, no _factor/factor calls on the hot path
                # (bit-exact with factor(1, multiplier) for every model kind).
                if multiplier == 1.0:
                    service = service_time
                else:
                    scale = self._unit_scale
                    if scale is None:
                        service = service_time * multiplier
                    else:
                        service = service_time * (1.0 + scale * (multiplier - 1.0))
            else:
                if self._batch_window_s > 0:
                    # Hold the batch open so near-future queries can share it.
                    window_start = arrival + self._batch_window_s
                    if window_start > start:
                        start = window_start
                self._batch_start = start
                self._batch_count = 1
                self._batch_mult_sum = multiplier
                self._batch_base = service_time
                service = service_time * self._factor(1, multiplier)
            self._batches += 1
            completion = start + service
            self._busy_until = completion
            self._busy_time += service
            run_ends = self._run_ends
            if run_ends and start <= run_ends[-1]:
                run_ends[-1] = completion
            else:
                self._run_starts.append(start)
                run_ends.append(completion)
        self._completed += 1
        return completion

    def predicted_completion(
        self, arrival: float, service_time: float, multiplier: float = 1.0
    ) -> float:
        """What :meth:`submit` would return, without mutating the queue.

        Used by cost-aware routing policies: a replica with a joinable
        forming batch can complete an extra query earlier than its
        ``busy_until`` suggests.
        """
        if service_time <= 0:
            raise ValueError("service_time must be positive")
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if self._can_join(arrival):
            joined_sum = self._batch_mult_sum + multiplier * (
                service_time / self._batch_base
            )
            completion = self._batch_start + self._batch_base * self._factor(
                self._batch_count + 1, joined_sum
            )
            return max(completion, self._busy_until)
        start = max(arrival, self._busy_until, self._ready_at)
        if self._max_batch > 1 and self._batch_window_s > 0:
            start = max(start, arrival + self._batch_window_s)
        return start + service_time * self._unit_factor(multiplier)

    def prune_runs(self, before: float) -> None:
        """Forget busy runs ending at or before ``before``.

        A run behind ``before`` contributes zero to any window starting at or
        after it, so :meth:`busy_seconds_between` / :meth:`utilization` over
        such windows are byte-identical with or without the prune.  The
        engine calls this with each sample tick's window start: utilization
        windows only move forward, and without the prune a replica's busy
        history grows one entry per idle gap for the whole run.
        """
        cut = bisect_right(self._run_ends, before)
        if cut:
            del self._run_starts[:cut]
            del self._run_ends[:cut]

    def busy_seconds_between(self, start_s: float, end_s: float) -> float:
        """Service time accumulated inside ``[start_s, end_s)``.

        Both window edges are found by binary search (starts and ends are
        each increasing), so only the runs intersecting the window are
        walked — O(log runs + overlap) rather than a scan of the full busy
        history per sample tick.  The runs are disjoint, so the window can
        clip at most the first run's start and the last run's end; plain
        comparisons replace the ``min``/``max`` builtin calls (identical
        values, no per-run call overhead — under a churny autoscaler the
        walk covers hundreds of short runs per utilization sample).
        """
        run_starts = self._run_starts
        run_ends = self._run_ends
        lo = bisect_right(run_ends, start_s)
        hi = bisect_left(run_starts, end_s, lo)
        total = 0.0
        for run_start, run_end in zip(
            islice(run_starts, lo, hi), islice(run_ends, lo, hi)
        ):
            if run_start < start_s:
                run_start = start_s
            if run_end > end_s:
                run_end = end_s
            total += run_end - run_start
        return total

    def utilization(self, now: float, window_start: float = 0.0) -> float:
        """Fraction of wall-clock time spent serving over a window.

        Both sides of the ratio are confined to the window: the denominator
        runs from ``max(ready_at, window_start)`` to ``now``, and the
        numerator only counts service time inside it.  A replica that became
        ready long before the window does not have its recent utilization
        diluted (or inflated) by old history, and a replica that started
        mid-window is only accountable for the time it was up.
        """
        start = max(self._ready_at, window_start)
        elapsed = now - start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds_between(start, now) / elapsed)
