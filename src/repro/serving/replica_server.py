"""Per-replica FIFO queueing."""

from __future__ import annotations

__all__ = ["ReplicaServer"]


class ReplicaServer:
    """A single container replica modelled as a FIFO queue.

    Each replica serves one query at a time (its service time already assumes
    the query uses the whole container's resources, matching how per-replica
    QPS is defined throughout the planner), so a replica is an M/D/1-style
    queue: a query submitted at ``arrival`` completes at
    ``max(arrival, busy_until, ready_at) + service_time``.
    """

    def __init__(self, name: str, ready_at: float = 0.0) -> None:
        self._name = name
        self._ready_at = float(ready_at)
        self._busy_until = float(ready_at)
        self._completed = 0
        self._busy_time = 0.0
        # Merged [start, end) busy runs; FIFO submits only ever extend the
        # last run or open a new one, so the list stays short (one entry per
        # idle gap, not per query).
        self._busy_runs: list[list[float]] = []

    @property
    def name(self) -> str:
        """Replica name."""
        return self._name

    @property
    def ready_at(self) -> float:
        """Time at which the replica finished starting up."""
        return self._ready_at

    @property
    def busy_until(self) -> float:
        """Time at which the replica's queue drains."""
        return self._busy_until

    @property
    def completed_queries(self) -> int:
        """Queries served so far."""
        return self._completed

    @property
    def busy_seconds(self) -> float:
        """Total service time accumulated (for utilization accounting)."""
        return self._busy_time

    def is_ready(self, now: float) -> bool:
        """Whether the replica can accept traffic at ``now``."""
        return now >= self._ready_at

    def pending_work(self, now: float) -> float:
        """Seconds of queued work ahead of a query submitted at ``now``."""
        return max(0.0, self._busy_until - now)

    def submit(self, arrival: float, service_time: float) -> float:
        """Enqueue one query and return its completion time."""
        if service_time <= 0:
            raise ValueError("service_time must be positive")
        start = max(arrival, self._busy_until, self._ready_at)
        completion = start + service_time
        self._busy_until = completion
        self._completed += 1
        self._busy_time += service_time
        if self._busy_runs and start <= self._busy_runs[-1][1]:
            self._busy_runs[-1][1] = completion
        else:
            self._busy_runs.append([start, completion])
        return completion

    def busy_seconds_between(self, start_s: float, end_s: float) -> float:
        """Service time accumulated inside ``[start_s, end_s)``."""
        total = 0.0
        for run_start, run_end in self._busy_runs:
            if run_end <= start_s:
                continue
            if run_start >= end_s:
                break
            total += min(run_end, end_s) - max(run_start, start_s)
        return total

    def utilization(self, now: float, window_start: float = 0.0) -> float:
        """Fraction of wall-clock time spent serving over a window.

        Both sides of the ratio are confined to the window: the denominator
        runs from ``max(ready_at, window_start)`` to ``now``, and the
        numerator only counts service time inside it.  A replica that became
        ready long before the window does not have its recent utilization
        diluted (or inflated) by old history, and a replica that started
        mid-window is only accountable for the time it was up.
        """
        start = max(self._ready_at, window_start)
        elapsed = now - start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds_between(start, now) / elapsed)
