"""Per-replica FIFO queueing."""

from __future__ import annotations

__all__ = ["ReplicaServer"]


class ReplicaServer:
    """A single container replica modelled as a FIFO queue.

    Each replica serves one query at a time (its service time already assumes
    the query uses the whole container's resources, matching how per-replica
    QPS is defined throughout the planner), so a replica is an M/D/1-style
    queue: a query submitted at ``arrival`` completes at
    ``max(arrival, busy_until, ready_at) + service_time``.
    """

    def __init__(self, name: str, ready_at: float = 0.0) -> None:
        self._name = name
        self._ready_at = float(ready_at)
        self._busy_until = float(ready_at)
        self._completed = 0
        self._busy_time = 0.0

    @property
    def name(self) -> str:
        """Replica name."""
        return self._name

    @property
    def ready_at(self) -> float:
        """Time at which the replica finished starting up."""
        return self._ready_at

    @property
    def busy_until(self) -> float:
        """Time at which the replica's queue drains."""
        return self._busy_until

    @property
    def completed_queries(self) -> int:
        """Queries served so far."""
        return self._completed

    @property
    def busy_seconds(self) -> float:
        """Total service time accumulated (for utilization accounting)."""
        return self._busy_time

    def is_ready(self, now: float) -> bool:
        """Whether the replica can accept traffic at ``now``."""
        return now >= self._ready_at

    def pending_work(self, now: float) -> float:
        """Seconds of queued work ahead of a query submitted at ``now``."""
        return max(0.0, self._busy_until - now)

    def submit(self, arrival: float, service_time: float) -> float:
        """Enqueue one query and return its completion time."""
        if service_time <= 0:
            raise ValueError("service_time must be positive")
        start = max(arrival, self._busy_until, self._ready_at)
        completion = start + service_time
        self._busy_until = completion
        self._completed += 1
        self._busy_time += service_time
        return completion

    def utilization(self, now: float) -> float:
        """Fraction of wall-clock time spent serving, up to ``now``."""
        elapsed = now - self._ready_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_time / elapsed)
