"""Online re-planning: drift detection and mid-run successor plans.

ElasticRec's planner runs once before the clock starts, but access skew
drifts: the hot prefix a plan was partitioned around stops matching the
traffic, the stale shard boundaries unbalance gather costs, and tail latency
climbs (ROADMAP item 1).  This module closes the plan→serve→observe→re-plan
loop with a deliberately cheap *threshold tier* — the rule-based first stage
of a drift detector: it watches the live per-lane latency series the engine
already samples and fires only after the p95 has breached an SLA-relative
threshold for ``patience`` consecutive samples.  Paying for a full
distributional re-plan (a fresh DP partitioning against the *measured*
mixture distribution) happens only when that cheap tier says the series has
really moved.

The engine models the migration itself with typed heap events (see
``EventKind.REPLAN`` in :mod:`repro.serving.engine`): shard copies occupy
replicas as synthetic work, and arrival on the successor plan triggers the
cache tier's ``invalidate_caches()`` storm with a cold-cache warm-up.

``--replan`` specs use the fault-script grammar:
``sla@<threshold>[:key=value,...]`` — the threshold is a multiple of the
tenant's SLA, e.g. ``sla@1.5:patience=3,cooldown=120,max=2``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ReplanPolicy",
    "DriftDetector",
    "parse_replan_spec",
    "make_replan_policy",
    "validate_replan_spec",
]

_REPLAN_HINT = (
    "expected 'sla@<threshold>[:key=value,...]' with the threshold a multiple "
    "of the SLA and optional keys patience, cooldown, max, bandwidth "
    "(e.g. 'sla@1.5:patience=3,cooldown=120,max=2')"
)


@dataclass(frozen=True)
class ReplanPolicy:
    """When to fire a re-plan and how fast shard copies move.

    * ``threshold`` — p95 must exceed ``threshold * sla_s`` (strictly) to
      count as a breach; a series sitting exactly at the threshold never
      fires.
    * ``patience`` — consecutive breached samples required before firing.
    * ``cooldown_s`` — minimum simulated time between fires.
    * ``max_replans`` — hard cap on fires per run.
    * ``copy_gb_per_s`` — shard-copy bandwidth; each replica is occupied for
      ``per_replica_memory_bytes / bandwidth`` of synthetic migration work.
    """

    threshold: float = 1.5
    patience: int = 3
    cooldown_s: float = 120.0
    max_replans: int = 1
    copy_gb_per_s: float = 1.0

    def __post_init__(self) -> None:
        if self.threshold <= 0.0:
            raise ValueError(f"threshold must be positive, got {self.threshold}")
        if self.patience < 1:
            raise ValueError(f"patience must be at least 1, got {self.patience}")
        if self.cooldown_s < 0.0:
            raise ValueError(f"cooldown must be non-negative, got {self.cooldown_s}")
        if self.max_replans < 1:
            raise ValueError(f"max must be at least 1, got {self.max_replans}")
        if self.copy_gb_per_s <= 0.0:
            raise ValueError(f"bandwidth must be positive, got {self.copy_gb_per_s}")


def _replan_number(chunk: str, text: str, kind: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"malformed replan spec {chunk!r}: bad {kind} {text!r}; {_REPLAN_HINT}"
        ) from None


def parse_replan_spec(spec: str) -> ReplanPolicy:
    """Parse a ``sla@<threshold>[:key=value,...]`` replan spec."""
    chunk = spec.strip()
    if not chunk:
        raise ValueError(f"malformed replan spec {spec!r}: empty spec; {_REPLAN_HINT}")
    head, _, param_text = chunk.partition(":")
    kind, at_sign, threshold_text = head.partition("@")
    kind = kind.strip()
    if kind != "sla":
        raise ValueError(
            f"unknown replan trigger {kind!r}; the threshold tier is 'sla' "
            f"({_REPLAN_HINT})"
        )
    if not at_sign:
        raise ValueError(
            f"malformed replan spec {chunk!r}: missing '@<threshold>'; {_REPLAN_HINT}"
        )
    threshold = _replan_number(chunk, threshold_text.strip(), "threshold")
    values = {
        "patience": 3.0,
        "cooldown": 120.0,
        "max": 1.0,
        "bandwidth": 1.0,
    }
    if param_text.strip():
        for pair in param_text.split(","):
            key, eq, value = pair.partition("=")
            key = key.strip()
            if not eq or not key or not value.strip():
                raise ValueError(
                    f"malformed replan spec {chunk!r}: bad parameter {pair!r}; "
                    f"{_REPLAN_HINT}"
                )
            if key not in values:
                known = ", ".join(sorted(values))
                raise ValueError(
                    f"malformed replan spec {chunk!r}: unknown parameter {key!r} "
                    f"(choose from {known}); {_REPLAN_HINT}"
                )
            values[key] = _replan_number(chunk, value.strip(), key)
    try:
        return ReplanPolicy(
            threshold=threshold,
            patience=int(values["patience"]),
            cooldown_s=values["cooldown"],
            max_replans=int(values["max"]),
            copy_gb_per_s=values["bandwidth"],
        )
    except ValueError as error:
        raise ValueError(f"malformed replan spec {chunk!r}: {error}") from None


def make_replan_policy(spec: str | ReplanPolicy | None) -> ReplanPolicy | None:
    """Resolve a replan knob: ``None``/``"none"`` off, instance or spec string."""
    if spec is None or isinstance(spec, ReplanPolicy):
        return spec
    if spec.strip().lower() in ("", "none"):
        return None
    return parse_replan_spec(spec)


def validate_replan_spec(spec: str | ReplanPolicy | None) -> None:
    """Validate a replan knob eagerly, raising the one-line grammar error."""
    make_replan_policy(spec)


class DriftDetector:
    """Threshold tier: consecutive SLA-relative p95 breaches fire a re-plan.

    :meth:`observe` is fed one interval-p95 per sample tick and returns
    ``True`` exactly when a re-plan should fire.  Breaches are *strict*
    (``p95 > threshold * sla_s``): a series sitting exactly at the threshold
    never fires.  A sample at or below the threshold — or an idle interval
    with no latency signal — resets the patience streak.
    """

    def __init__(self, policy: ReplanPolicy, sla_s: float) -> None:
        if sla_s <= 0.0:
            raise ValueError(f"sla_s must be positive, got {sla_s}")
        self._policy = policy
        self._threshold_s = policy.threshold * sla_s
        self._streak = 0
        self._fires = 0
        self._last_fire_s: float | None = None

    @property
    def threshold_s(self) -> float:
        """Absolute p95 threshold in seconds."""
        return self._threshold_s

    @property
    def fires(self) -> int:
        """Re-plans fired so far."""
        return self._fires

    def observe(self, now: float, p95_s: float | None) -> bool:
        """Feed one interval p95 (``None`` when the interval served nothing)."""
        if self._fires >= self._policy.max_replans:
            return False
        if p95_s is None or p95_s <= self._threshold_s:
            self._streak = 0
            return False
        self._streak += 1
        if self._streak < self._policy.patience:
            return False
        if (
            self._last_fire_s is not None
            and now < self._last_fire_s + self._policy.cooldown_s
        ):
            # Still cooling down: keep the streak so the fire lands on the
            # first breached sample past the cooldown.
            return False
        self._streak = 0
        self._fires += 1
        self._last_fire_s = now
        return True

    def escalate(self, now: float) -> bool:
        """Fire a re-plan on an external escalation, bypassing the streak.

        The SLO watchdog's ladder escalates here once its own patience at
        the top degradation level runs out, so the threshold streak is
        irrelevant — but the fire budget (``max_replans``) and the cooldown
        still apply: an escalation that lands inside either is refused.
        """
        if self._fires >= self._policy.max_replans:
            return False
        if (
            self._last_fire_s is not None
            and now < self._last_fire_s + self._policy.cooldown_s
        ):
            return False
        self._streak = 0
        self._fires += 1
        self._last_fire_s = now
        return True
