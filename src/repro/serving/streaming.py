"""Streamed series spool: append-only on-disk chunks for memory-bounded runs.

A long serving run is dominated in memory by its per-query arrays (the
latency tracker's completion/latency buffers, one float64 pair per query) —
a 24-hour million-user day is O(10^8) queries, two orders of magnitude past
what one process can hold.  The *spool* bounds that: the engine flushes
per-query buffers and per-interval series to numbered, append-only ``.npz``
chunk files as the run progresses, and the merge step
(:func:`repro.serving.sharding.merge_stream`) reads the chunks back —
one tenant at a time — to reconstruct the exact in-memory
:class:`~repro.serving.engine.SimulationResult` the unstreamed run would
have produced.  Bit-exactness is the contract: streaming moves bytes, it
never changes them.

Spool layout (one directory per sharded run)::

    <stream_dir>/
      meta.json                  # run manifest: shard count, tenant names
      shard-000/
        meta.json                # shard manifest: status, capacity, peak RSS
        cluster-000000.npz       # cluster-probe point chunks
        tenant-000/
          meta.json              # tenant scalars (written last: commit marker)
          queries-000000.npz     # tracker spills: completion times + latencies
          queries-000001.npz
          series-000000.npz      # per-interval series chunks

Durability discipline: every chunk is written to a ``*.tmp`` sibling and
atomically renamed into place, and every ``meta.json`` is written *after*
the data it describes — so a worker crash leaves at most one ``*.tmp``
orphan (ignored by readers) or a directly truncated final chunk (detected
on read).  :func:`iter_chunks` raises :class:`SpoolTruncatedError` on a
corrupt chunk by default; ``recover=True`` salvages the intact prefix
instead, which is what crash-recovery tooling wants.
"""

from __future__ import annotations

import io
import json
import os
import re
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = [
    "SpoolError",
    "SpoolTruncatedError",
    "StreamConfig",
    "SpoolWriter",
    "ShardManifest",
    "iter_chunks",
    "chunk_paths",
    "read_meta",
]

_CHUNK_PATTERN = re.compile(r"^(?P<stream>[a-z]+)-(?P<index>\d{6})\.npz$")

#: Spool files a worker may write, in one place so readers and writers agree.
META_NAME = "meta.json"


class SpoolError(RuntimeError):
    """The spool is structurally unusable (missing manifests, bad layout)."""


class SpoolTruncatedError(SpoolError):
    """A chunk file is corrupt or truncated (typically a crash mid-write)."""


@dataclass(frozen=True)
class StreamConfig:
    """How a run streams its series to disk.

    ``directory`` is the *shard* directory the engine writes into; the
    executor allocates one per worker under the run's ``stream_dir``.
    ``spill_threshold`` is the tracker-sample count that triggers a
    per-query chunk flush (larger: fewer, bigger chunks);
    ``flush_series_every`` is the number of sample intervals batched into
    one series chunk.
    """

    directory: Path
    spill_threshold: int = 1 << 18
    flush_series_every: int = 512

    def __post_init__(self) -> None:
        object.__setattr__(self, "directory", Path(self.directory))
        if self.spill_threshold < 1:
            raise ValueError("spill_threshold must be at least 1")
        if self.flush_series_every < 1:
            raise ValueError("flush_series_every must be at least 1")


@dataclass
class ShardManifest:
    """What a streamed worker hands back to the merging parent."""

    directory: Path
    tenant_names: list[str]
    tenant_dirs: list[str]
    capacity_gb: float
    peak_rss_mb: float = 0.0
    summaries: list[dict] = field(default_factory=list)


class SpoolWriter:
    """Appends numbered ``.npz`` chunks (and one ``meta.json``) to a directory.

    One writer per directory; chunk streams are named (``queries``,
    ``series``, ``cluster``) and numbered independently.  Writes are
    write-to-temp-then-rename, so readers never observe a half-written
    chunk under its final name.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._counters: dict[str, int] = {}

    def append(self, stream: str, **arrays: np.ndarray) -> Path:
        """Write one chunk of ``stream`` and return its final path."""
        if not arrays:
            raise ValueError("a chunk needs at least one array")
        index = self._counters.get(stream, 0)
        path = self.directory / f"{stream}-{index:06d}.npz"
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        temp = path.with_name(path.name + ".tmp")
        temp.write_bytes(buffer.getvalue())
        os.replace(temp, path)
        self._counters[stream] = index + 1
        return path

    def write_meta(self, meta: dict) -> Path:
        """Atomically write the directory's ``meta.json`` (the commit marker)."""
        path = self.directory / META_NAME
        temp = path.with_name(path.name + ".tmp")
        temp.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        os.replace(temp, path)
        return path


def chunk_paths(directory: str | Path, stream: str) -> list[Path]:
    """The stream's chunk files in index order (``*.tmp`` orphans ignored)."""
    directory = Path(directory)
    found = {}
    if not directory.is_dir():
        return []
    for entry in directory.iterdir():
        match = _CHUNK_PATTERN.match(entry.name)
        if match and match.group("stream") == stream:
            found[int(match.group("index"))] = entry
    indices = sorted(found)
    # Chunk numbering is dense by construction; a gap means a chunk vanished
    # (not a crash tail, which only ever truncates the *last* chunk).
    for position, index in enumerate(indices):
        if position != index:
            raise SpoolError(
                f"{directory}: chunk stream {stream!r} is missing chunk "
                f"{position:06d} (found indices {indices})"
            )
    return [found[index] for index in indices]


def _load_chunk(path: Path) -> dict[str, np.ndarray]:
    try:
        with np.load(path) as data:
            return {name: data[name] for name in data.files}
    except (zipfile.BadZipFile, ValueError, EOFError, OSError, KeyError) as error:
        raise SpoolTruncatedError(
            f"{path}: corrupt or truncated chunk ({error}); a crash mid-write "
            "leaves at most one of these at the end of a stream — re-read "
            "with recover=True to salvage the intact prefix"
        ) from None


def iter_chunks(
    directory: str | Path, stream: str, recover: bool = False
) -> Iterator[dict[str, np.ndarray]]:
    """Yield the stream's chunks in order.

    With ``recover=False`` (the default) a corrupt chunk raises
    :class:`SpoolTruncatedError`.  With ``recover=True`` a corrupt *final*
    chunk is dropped (the crash-mid-spool case) and the intact prefix is
    yielded; a corrupt chunk followed by intact ones still raises, because
    that is data corruption, not a crash tail.
    """
    paths = chunk_paths(directory, stream)
    for position, path in enumerate(paths):
        try:
            yield _load_chunk(path)
        except SpoolTruncatedError:
            if recover and position == len(paths) - 1:
                return
            raise


def read_meta(directory: str | Path, what: str = "spool directory") -> dict:
    """The directory's ``meta.json``; a missing one marks an incomplete write."""
    path = Path(directory) / META_NAME
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise SpoolError(
            f"{directory}: no {META_NAME} — the {what} was never completed "
            "(worker crash?); nothing to merge here"
        ) from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        raise SpoolError(f"{path}: unreadable manifest ({error})") from None
