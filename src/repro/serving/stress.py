"""Stress testing a shard replica to find its maximum sustainable QPS.

Section IV-D: "ElasticRec measures the maximum QPS each sparse shard can
sustain (QPS_max), stress-testing each one of them by gradually increasing
input query traffic intensity and monitoring at which point the tail latency
increases rapidly."  The same procedure is reproduced here against the
replica queueing model: traffic intensity is ramped up and the largest rate
whose p95 latency stays within a knee threshold (a multiple of the service
time) is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.replica_server import ReplicaServer
from repro.serving.traffic import TrafficPattern

__all__ = ["StressTestResult", "find_qps_max"]


@dataclass(frozen=True)
class StressTestResult:
    """Outcome of stress-testing one replica."""

    qps_max: float
    service_time_s: float
    knee_latency_s: float
    tested_rates: tuple[float, ...]
    p95_latencies_s: tuple[float, ...]


def _p95_latency_at_rate(
    rate_qps: float,
    service_time_s: float,
    duration_s: float,
    rng: np.random.Generator,
) -> float:
    replica = ReplicaServer("stress-replica")
    pattern = TrafficPattern.constant(rate_qps, duration_s)
    arrivals = pattern.arrivals(rng)
    if arrivals.size == 0:
        return service_time_s
    latencies = np.empty(arrivals.size)
    for index, arrival in enumerate(arrivals):
        completion = replica.submit(float(arrival), service_time_s)
        latencies[index] = completion - arrival
    return float(np.percentile(latencies, 95))


def find_qps_max(
    service_time_s: float,
    knee_factor: float = 3.0,
    duration_s: float = 120.0,
    num_steps: int = 12,
    seed: int = 0,
) -> StressTestResult:
    """Ramp traffic against one replica and find the knee of its tail latency.

    ``knee_factor`` defines "increases rapidly": the stress test reports the
    largest tested rate whose p95 latency stays below
    ``knee_factor * service_time_s``.
    """
    if service_time_s <= 0:
        raise ValueError("service_time_s must be positive")
    if knee_factor <= 1:
        raise ValueError("knee_factor must exceed 1")
    if num_steps < 2:
        raise ValueError("num_steps must be at least 2")
    rng = np.random.default_rng(seed)
    ideal_qps = 1.0 / service_time_s
    rates = np.linspace(0.3 * ideal_qps, 1.2 * ideal_qps, num_steps)
    knee_latency = knee_factor * service_time_s
    p95s = []
    qps_max = rates[0]
    for rate in rates:
        p95 = _p95_latency_at_rate(float(rate), service_time_s, duration_s, rng)
        p95s.append(p95)
        if p95 <= knee_latency:
            qps_max = float(rate)
    return StressTestResult(
        qps_max=qps_max,
        service_time_s=service_time_s,
        knee_latency_s=knee_latency,
        tested_rates=tuple(float(r) for r in rates),
        p95_latencies_s=tuple(p95s),
    )
