"""Accounting and reporting over deployment plans.

These are the measurement procedures behind the paper's evaluation metrics:

* :mod:`repro.analysis.memory` — total allocated memory of a plan and its
  breakdown (Figures 12, 13, 16, 20).
* :mod:`repro.analysis.utility` — memory utility: the fraction of a shard's
  embedding rows actually touched while serving a query stream
  (Figures 14, 17).
* :mod:`repro.analysis.cost` — server counts via bin-packing and relative
  deployment cost (Figures 15, 18).
* :mod:`repro.analysis.report` — plain-text table formatting shared by the
  experiments and benchmarks.
"""

from repro.analysis.memory import MemoryBreakdown, memory_breakdown, memory_consumption_gb
from repro.analysis.utility import ShardUtility, memory_utility, average_memory_utility
from repro.analysis.cost import CostEstimate, deployment_cost, servers_required
from repro.analysis.report import format_ratio, format_table

__all__ = [
    "MemoryBreakdown",
    "memory_breakdown",
    "memory_consumption_gb",
    "ShardUtility",
    "memory_utility",
    "average_memory_utility",
    "CostEstimate",
    "servers_required",
    "deployment_cost",
    "format_table",
    "format_ratio",
]
