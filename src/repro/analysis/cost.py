"""Server-count and deployment-cost accounting (Figures 15 and 18).

The paper quantifies cost as the number of server nodes required to satisfy
the target throughput.  Every replica of every deployment in a plan carries a
resource request (cores, memory, GPUs); packing those requests onto identical
nodes with first-fit-decreasing gives the node count, and the relative cost of
two plans is simply the ratio of their node counts (optionally weighted by a
per-node price).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.resources import ResourceRequest
from repro.cluster.scheduler import nodes_required
from repro.core.plan import DeploymentPlan

__all__ = ["CostEstimate", "servers_required", "deployment_cost"]

#: Rough relative hourly price of a GPU-equipped node vs a CPU-only node,
#: used only when converting node counts into a cost figure.
DEFAULT_GPU_NODE_PRICE_FACTOR = 2.5


@dataclass(frozen=True)
class CostEstimate:
    """Server count and relative cost of one plan."""

    plan_name: str
    strategy: str
    num_servers: int
    total_replicas: int
    relative_cost: float

    def as_dict(self) -> dict[str, float]:
        """Dictionary form for report tables."""
        return {
            "num_servers": float(self.num_servers),
            "total_replicas": float(self.total_replicas),
            "relative_cost": self.relative_cost,
        }


def _replica_requests(plan: DeploymentPlan) -> list[ResourceRequest]:
    requests = []
    for deployment in plan.deployments:
        request = ResourceRequest(
            cores=deployment.cores,
            memory_bytes=deployment.per_replica_memory_bytes,
            gpus=deployment.gpus,
        )
        requests.extend([request] * deployment.replicas)
    return requests


def servers_required(plan: DeploymentPlan) -> int:
    """Number of nodes needed to host every replica of the plan."""
    return nodes_required(_replica_requests(plan), plan.cluster.node)


def deployment_cost(
    plan: DeploymentPlan,
    gpu_node_price_factor: float = DEFAULT_GPU_NODE_PRICE_FACTOR,
) -> CostEstimate:
    """Server count plus a relative cost figure for one plan.

    The relative cost equals the node count for CPU-only clusters and the node
    count scaled by ``gpu_node_price_factor`` for GPU-equipped clusters, so
    costs are comparable across plans that share a cluster type.
    """
    if gpu_node_price_factor <= 0:
        raise ValueError("gpu_node_price_factor must be positive")
    servers = servers_required(plan)
    price_factor = gpu_node_price_factor if plan.cluster.is_gpu_system else 1.0
    return CostEstimate(
        plan_name=plan.name,
        strategy=plan.strategy,
        num_servers=servers,
        total_replicas=plan.total_replicas,
        relative_cost=servers * price_factor,
    )
