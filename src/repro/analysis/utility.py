"""Memory-utility measurement (Figures 14 and 17).

The paper measures how well allocated memory is used as "the percentage of
embeddings that are actually accessed within a shard while servicing the
first 1,000 queries".  With a known access distribution the expected number
of distinct rows of a shard touched by a stream of gathers has a closed form
(``sum_i 1 - (1 - p_i)^D``), which this module evaluates per shard; an exact
trace-driven variant is available for small tables and is used by the tests
to validate the analytic path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plan import DeploymentPlan, ShardDeployment
from repro.data.distributions import AccessDistribution

__all__ = ["ShardUtility", "memory_utility", "average_memory_utility", "trace_utility"]

#: The paper measures utility over the first thousand queries.
DEFAULT_NUM_QUERIES = 1000


@dataclass(frozen=True)
class ShardUtility:
    """Utility of one shard (or of the whole table for the model-wise baseline)."""

    deployment_name: str
    table_id: int
    shard_index: int
    rows: int
    expected_touched_rows: float
    replicas: int

    @property
    def utility_pct(self) -> float:
        """Percentage of the shard's rows touched by the measured query stream."""
        return 100.0 * self.expected_touched_rows / self.rows if self.rows else 0.0


def _total_gathers(plan: DeploymentPlan, num_queries: int) -> int:
    emb = plan.workload.embedding
    return num_queries * plan.workload.batch_size * emb.pooling


def memory_utility(
    plan: DeploymentPlan,
    num_queries: int = DEFAULT_NUM_QUERIES,
    table_id: int = 0,
) -> list[ShardUtility]:
    """Per-shard memory utility of one table of a plan.

    For ElasticRec plans, one entry per embedding shard of ``table_id``
    (hottest first).  For model-wise plans a single entry covering the whole
    table is returned, mirroring the "S1" bar of Figures 14/17.
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    emb = plan.workload.embedding
    distribution = emb.access_distribution()
    draws = _total_gathers(plan, num_queries)

    shard_deployments = plan.embedding_deployments_for_table(table_id)
    if shard_deployments:
        return [
            _shard_utility(deployment, distribution, draws) for deployment in shard_deployments
        ]

    monolithic = plan.monolithic_deployments
    if not monolithic:
        raise ValueError("the plan has neither embedding shards nor a monolithic deployment")
    deployment = monolithic[0]
    touched = distribution.expected_unique(draws, 0, emb.rows_per_table)
    return [
        ShardUtility(
            deployment_name=deployment.name,
            table_id=table_id,
            shard_index=0,
            rows=emb.rows_per_table,
            expected_touched_rows=touched,
            replicas=deployment.replicas,
        )
    ]


def _shard_utility(
    deployment: ShardDeployment,
    distribution: AccessDistribution,
    draws: int,
) -> ShardUtility:
    shard = deployment.embedding_shard
    touched = distribution.expected_unique(draws, shard.start_row, shard.end_row)
    return ShardUtility(
        deployment_name=deployment.name,
        table_id=shard.table_id,
        shard_index=shard.shard_index,
        rows=shard.rows,
        expected_touched_rows=touched,
        replicas=deployment.replicas,
    )


def average_memory_utility(
    plan: DeploymentPlan,
    num_queries: int = DEFAULT_NUM_QUERIES,
    table_id: int = 0,
    weight_by_memory: bool = False,
) -> float:
    """Plan-level utility: mean of per-shard utilities (Figures 14/17 bars).

    The default unweighted mean mirrors how the paper aggregates the per-shard
    bars into its "8.1x higher memory utility" headline; pass
    ``weight_by_memory=True`` for an allocated-memory-weighted variant.
    """
    utilities = memory_utility(plan, num_queries=num_queries, table_id=table_id)
    if not weight_by_memory:
        return float(np.mean([u.utility_pct for u in utilities]))
    emb = plan.workload.embedding
    row_bytes = emb.embedding_dim * emb.dtype_bytes
    weights = np.array([u.rows * row_bytes * u.replicas for u in utilities], dtype=np.float64)
    values = np.array([u.utility_pct for u in utilities])
    return float(np.average(values, weights=weights))


def trace_utility(
    shard_ranges: list[tuple[int, int]],
    trace: np.ndarray,
) -> list[float]:
    """Exact per-shard utility of an observed access trace (small tables).

    ``trace`` contains hot-sorted row ids; the return value is the percentage
    of each shard range's rows that appear at least once.
    """
    trace = np.asarray(trace, dtype=np.int64)
    utilities = []
    unique = np.unique(trace)
    for start, end in shard_ranges:
        if end <= start:
            raise ValueError("shard ranges must be non-empty")
        touched = np.count_nonzero((unique >= start) & (unique < end))
        utilities.append(100.0 * touched / (end - start))
    return utilities
