"""Memory-consumption accounting of deployment plans.

The paper's primary metric is the total memory allocated across every
container replica needed to reach a target QPS (Figures 12, 13, 16 and 20).
A replica's allocation is its model-parameter slice plus the container's
minimally required memory, exactly as Algorithm 1 estimates it; here the
accounting is applied to the *actual* (integer-replica) deployment plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import DeploymentPlan, ROLE_DENSE, ROLE_EMBEDDING, ROLE_MONOLITHIC

__all__ = ["MemoryBreakdown", "memory_breakdown", "memory_consumption_gb"]


@dataclass(frozen=True)
class MemoryBreakdown:
    """Allocated memory of one plan, split by shard role."""

    dense_gb: float
    embedding_gb: float
    monolithic_gb: float

    @property
    def total_gb(self) -> float:
        """Total allocated memory in GB."""
        return self.dense_gb + self.embedding_gb + self.monolithic_gb

    def as_dict(self) -> dict[str, float]:
        """Role-keyed dictionary including the total."""
        return {
            "dense_gb": self.dense_gb,
            "embedding_gb": self.embedding_gb,
            "monolithic_gb": self.monolithic_gb,
            "total_gb": self.total_gb,
        }


def memory_breakdown(plan: DeploymentPlan) -> MemoryBreakdown:
    """Split a plan's allocated memory by shard role."""
    by_role = {ROLE_DENSE: 0.0, ROLE_EMBEDDING: 0.0, ROLE_MONOLITHIC: 0.0}
    for deployment in plan.deployments:
        by_role[deployment.role] += deployment.total_memory_bytes
    return MemoryBreakdown(
        dense_gb=by_role[ROLE_DENSE] / 1e9,
        embedding_gb=by_role[ROLE_EMBEDDING] / 1e9,
        monolithic_gb=by_role[ROLE_MONOLITHIC] / 1e9,
    )


def memory_consumption_gb(plan: DeploymentPlan) -> float:
    """Total allocated memory of a plan in GB."""
    return memory_breakdown(plan).total_gb
