"""Plain-text report formatting shared by experiments and benchmarks."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "format_ratio"]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return title or "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_ratio(baseline: float, improved: float, suffix: str = "x") -> str:
    """Render ``baseline / improved`` as the paper's "N.Nx" reduction factor."""
    if improved <= 0:
        raise ValueError("improved must be positive")
    return f"{baseline / improved:.1f}{suffix}"
