"""Tests for the gather and layer profilers."""

from __future__ import annotations

import pytest

from repro.hardware.perf_model import PerfModel
from repro.hardware.profiler import DEFAULT_GATHER_SWEEP, GatherProfiler, LayerProfiler
from repro.hardware.specs import cpu_gpu_cluster, cpu_only_cluster
from repro.model.configs import rm1, rm3


@pytest.fixture(scope="module")
def profiler():
    return GatherProfiler(PerfModel(cpu_only_cluster()), batch_size=32)


class TestGatherProfiler:
    def test_default_sweep_covers_figure9_range(self):
        assert min(DEFAULT_GATHER_SWEEP) == 1
        assert max(DEFAULT_GATHER_SWEEP) == 100

    def test_qps_decreases_with_gathers(self, profiler):
        points = profiler.profile(32)
        qps = [p.qps for p in points]
        assert all(b <= a for a, b in zip(qps, qps[1:]))

    def test_latency_is_inverse_qps(self, profiler):
        for point in profiler.profile(32, (1, 50, 100)):
            assert point.qps == pytest.approx(1.0 / point.latency_s)

    def test_dimension_sweep(self, profiler):
        curves = profiler.profile_dimensions((32, 128, 512), (1, 100))
        assert set(curves) == {32, 128, 512}
        # Larger dimensions are uniformly slower at the same gather count.
        assert curves[32][-1].qps > curves[128][-1].qps > curves[512][-1].qps

    def test_core_constrained_profile_is_slower(self, profiler):
        unconstrained = profiler.profile(32, (100,))[0].qps
        constrained = profiler.profile(32, (100,), cores=1)[0].qps
        assert constrained < unconstrained

    def test_validation(self, profiler):
        with pytest.raises(ValueError):
            profiler.profile(32, ())
        with pytest.raises(ValueError):
            profiler.profile(32, (-1,))
        with pytest.raises(ValueError):
            GatherProfiler(PerfModel(cpu_only_cluster()), batch_size=0)


class TestLayerProfiler:
    def test_layer_qps_positive(self):
        layer = LayerProfiler(PerfModel(cpu_only_cluster()))
        qps = layer.layer_qps(rm1())
        assert qps["dense"] > 0 and qps["sparse"] > 0

    def test_gpu_system_dense_much_faster(self):
        cpu = LayerProfiler(PerfModel(cpu_only_cluster())).layer_qps(rm3())
        gpu = LayerProfiler(PerfModel(cpu_gpu_cluster())).layer_qps(rm3())
        assert gpu["dense"] > 10 * cpu["dense"]

    def test_latency_shares_sum_to_100(self):
        layer = LayerProfiler(PerfModel(cpu_only_cluster()))
        shares = layer.latency_shares(rm1())
        assert shares["dense_pct"] + shares["sparse_pct"] == pytest.approx(100.0)
