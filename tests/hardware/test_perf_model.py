"""Tests for the serving performance model."""

from __future__ import annotations

import pytest

from repro.hardware.perf_model import PerfModel
from repro.model.configs import microbenchmark, rm1, rm2, rm3


@pytest.fixture(scope="module")
def cpu_perf(cpu_cluster=None):
    from repro.hardware.specs import cpu_only_cluster

    return PerfModel(cpu_only_cluster())


@pytest.fixture(scope="module")
def gpu_perf():
    from repro.hardware.specs import cpu_gpu_cluster

    return PerfModel(cpu_gpu_cluster())


class TestDenseLatency:
    def test_latency_grows_with_flops(self, cpu_perf):
        light = microbenchmark(mlp_size="light")
        heavy = microbenchmark(mlp_size="heavy")
        assert cpu_perf.dense_query_latency(heavy) > cpu_perf.dense_query_latency(light)

    def test_more_cores_is_faster(self, cpu_perf):
        config = rm1()
        assert cpu_perf.dense_query_latency(config, cores=48) < cpu_perf.dense_query_latency(
            config, cores=8
        )

    def test_gpu_is_much_faster_for_dense(self, gpu_perf):
        config = rm3()
        cpu_latency = gpu_perf.dense_query_latency(config, use_gpu=False, cores=28)
        gpu_latency = gpu_perf.dense_query_latency(config, use_gpu=True)
        assert gpu_latency < cpu_latency / 5

    def test_gpu_request_requires_gpu_node(self, cpu_perf):
        with pytest.raises(ValueError):
            cpu_perf.dense_query_latency(rm1(), use_gpu=True)

    def test_invalid_cores(self, cpu_perf):
        with pytest.raises(ValueError):
            cpu_perf.dense_query_latency(rm1(), cores=0)

    def test_dense_qps_is_inverse_latency(self, cpu_perf):
        config = rm1()
        assert cpu_perf.dense_qps(config) == pytest.approx(
            1.0 / cpu_perf.dense_query_latency(config)
        )


class TestSparseLatency:
    def test_latency_grows_with_gathers(self, cpu_perf):
        low = cpu_perf.sparse_shard_latency(1, 32, 32)
        high = cpu_perf.sparse_shard_latency(128, 32, 32)
        assert high > low > 0

    def test_latency_grows_with_dimension(self, cpu_perf):
        """Figure 9: larger embedding dimensions sustain lower QPS."""
        qps = {dim: cpu_perf.sparse_shard_qps(64, dim, 32) for dim in (32, 128, 512)}
        assert qps[32] > qps[128] > qps[512]

    def test_small_containers_gather_slower(self, cpu_perf):
        fast = cpu_perf.sparse_shard_latency(64, 32, 32, cores=4)
        slow = cpu_perf.sparse_shard_latency(64, 32, 32, cores=1)
        assert slow > fast

    def test_cores_at_reference_match_unconstrained(self, cpu_perf):
        reference = cpu_perf.calibration.sparse_reference_cores
        assert cpu_perf.sparse_shard_latency(64, 32, 32, cores=reference) == pytest.approx(
            cpu_perf.sparse_shard_latency(64, 32, 32)
        )

    def test_cache_reduces_latency(self, gpu_perf):
        plain = gpu_perf.sparse_layer_latency(rm1())
        cached = gpu_perf.sparse_layer_latency(rm1(), cache_latency_reduction=0.47)
        assert cached == pytest.approx(plain * 0.53)

    def test_zero_gathers_costs_only_overhead(self, cpu_perf):
        latency = cpu_perf.sparse_shard_latency(0, 32, 32)
        assert latency == pytest.approx(cpu_perf.calibration.sparse_query_overhead_s)

    def test_validation(self, cpu_perf):
        with pytest.raises(ValueError):
            cpu_perf.sparse_shard_latency(-1, 32, 32)
        with pytest.raises(ValueError):
            cpu_perf.sparse_shard_latency(1, 32, 0)
        with pytest.raises(ValueError):
            cpu_perf.sparse_shard_latency(1, 32, 32, cache_latency_reduction=1.0)
        with pytest.raises(ValueError):
            cpu_perf.per_lookup_seconds(0)
        with pytest.raises(ValueError):
            cpu_perf.per_lookup_seconds(32, cores=0)


class TestLayerLevelRelations:
    def test_qps_mismatch_between_layers(self, cpu_perf):
        """Figure 5: dense and sparse layer QPS differ substantially."""
        for config in (rm1(), rm2(), rm3()):
            dense = cpu_perf.dense_qps(config, cores=56)
            sparse = cpu_perf.sparse_layer_qps(config)
            assert max(dense, sparse) / min(dense, sparse) > 1.3

    def test_rm3_sparse_layer_is_faster_than_rm1(self, cpu_perf):
        """RM3 gathers far fewer vectors per query (pooling 32 vs 128)."""
        assert cpu_perf.sparse_layer_qps(rm3()) > cpu_perf.sparse_layer_qps(rm1())

    def test_model_wise_qps_below_both_layers(self, cpu_perf):
        config = rm1()
        mw = cpu_perf.model_wise_qps(config)
        policy = cpu_perf.cluster.container_policy
        assert mw < cpu_perf.dense_qps(config, cores=policy.model_wise_cores)
        assert mw < cpu_perf.sparse_layer_qps(config)

    def test_latency_breakdown_sums_to_total(self, cpu_perf):
        breakdown = cpu_perf.latency_breakdown(rm1())
        assert breakdown.total_s == pytest.approx(breakdown.dense_s + breakdown.sparse_s)
        assert 0 < breakdown.dense_fraction < 1

    def test_dense_dominates_cpu_latency_for_rm3(self, cpu_perf):
        """Figure 3(b): RM3's heavy MLPs dominate CPU-only latency."""
        assert cpu_perf.latency_breakdown(rm3()).dense_fraction > 0.8

    def test_sparse_dominates_gpu_latency(self, gpu_perf):
        """Figure 3(b): on CPU-GPU the CPU-resident sparse layer dominates."""
        assert gpu_perf.latency_breakdown(rm1()).sparse_fraction > 0.5

    def test_rpc_overheads_match_paper(self, cpu_perf, gpu_perf):
        assert cpu_perf.rpc_overhead_s() == pytest.approx(0.031)
        assert gpu_perf.rpc_overhead_s() == pytest.approx(0.060)

    def test_elastic_latency_within_sla(self, cpu_perf):
        """The paper keeps ElasticRec's average latency well inside the 400 ms SLA."""
        for config in (rm1(), rm2()):
            assert cpu_perf.elastic_query_latency(config) < cpu_perf.cluster.sla_s


class TestBatchLatencyModel:
    """The batch-aware latency API the serving engine's replicas consume."""

    def test_single_average_query_is_the_base_latency_bit_for_bit(self, cpu_perf):
        for role in ("dense", "embedding", "monolithic"):
            assert cpu_perf.latency_for(1, 1.0, base_latency_s=0.125, role=role) == 0.125

    def test_dense_batches_scale_sublinearly(self, cpu_perf):
        base = 0.05
        batched = cpu_perf.latency_for(8, base_latency_s=base, role="dense")
        assert base < batched < 8 * base
        exponent = cpu_perf.calibration.dense_batch_exponent
        assert batched == pytest.approx(base * 8**exponent)

    def test_sparse_batches_scale_per_vector(self, cpu_perf):
        base = 0.05
        f = cpu_perf.calibration.sparse_batch_overhead_fraction
        batched = cpu_perf.latency_for(4, 4.0, base_latency_s=base, role="embedding")
        assert batched == pytest.approx(base * (1.0 + (1.0 - f) * 3.0))
        # The fixed overhead amortises: cheaper than four serial queries.
        assert batched < 4 * base

    def test_sparse_latency_tracks_the_gather_multiplier(self, cpu_perf):
        base = 0.05
        cheap = cpu_perf.latency_for(1, 0.5, base_latency_s=base, role="embedding")
        expensive = cpu_perf.latency_for(1, 3.0, base_latency_s=base, role="embedding")
        assert cheap < base < expensive

    def test_dense_ignores_gather_multipliers(self, cpu_perf):
        base = 0.05
        assert cpu_perf.latency_for(2, 1.0, base_latency_s=base, role="dense") == (
            cpu_perf.latency_for(2, 5.0, base_latency_s=base, role="dense")
        )

    def test_monolithic_combines_both_scalings(self, cpu_perf):
        base = 0.05
        dense = cpu_perf.latency_for(4, base_latency_s=base, role="dense")
        mono_avg = cpu_perf.latency_for(4, 4.0, base_latency_s=base, role="monolithic")
        assert mono_avg == pytest.approx(dense)
        mono_hot = cpu_perf.latency_for(4, 8.0, base_latency_s=base, role="monolithic")
        assert mono_hot > mono_avg

    def test_batch_model_validation(self, cpu_perf):
        from repro.hardware.perf_model import BatchLatencyModel

        with pytest.raises(ValueError):
            cpu_perf.batch_model("gpu")
        with pytest.raises(ValueError):
            BatchLatencyModel(kind="dense", batch_exponent=0.0, overhead_fraction=0.2)
        with pytest.raises(ValueError):
            BatchLatencyModel(kind="dense", batch_exponent=0.9, overhead_fraction=1.0)
        model = cpu_perf.batch_model("embedding")
        with pytest.raises(ValueError):
            model.factor(0)
        with pytest.raises(ValueError):
            model.factor(1, 0.0)
        with pytest.raises(ValueError):
            model.latency_for(0.0, 1)
