"""Tests for hardware and cluster specifications."""

from __future__ import annotations

import pytest

from repro.hardware.specs import (
    ClusterSpec,
    ContainerPolicy,
    CPUNodeSpec,
    PerfCalibration,
    cpu_gpu_cluster,
    cpu_only_cluster,
    gke_n1_standard_32,
    nvidia_t4,
    xeon_gold_6242,
)


class TestNodePresets:
    def test_cpu_only_node_matches_paper(self):
        node = xeon_gold_6242()
        assert node.cores == 64
        assert node.dram_gb == 384.0
        assert node.memory_bandwidth_gbps == 256.0
        assert node.network_gbps == 10.0
        assert not node.has_gpu

    def test_gke_node_matches_paper(self):
        node = gke_n1_standard_32()
        assert node.cores == 32
        assert node.dram_gb == 120.0
        assert node.network_gbps == 32.0
        assert node.has_gpu
        assert node.gpu.name == "NVIDIA-T4"

    def test_t4_spec(self):
        gpu = nvidia_t4()
        assert gpu.hbm_gb == 16.0
        assert gpu.fp32_tflops > 0

    def test_node_validation(self):
        with pytest.raises(ValueError):
            CPUNodeSpec(name="bad", cores=0, dram_gb=1, memory_bandwidth_gbps=1, network_gbps=1)
        with pytest.raises(ValueError):
            CPUNodeSpec(
                name="bad", cores=2, dram_gb=1, memory_bandwidth_gbps=1, network_gbps=1,
                gpu=nvidia_t4(), gpus_per_node=0,
            )


class TestContainerPolicy:
    def test_startup_grows_with_model_size(self):
        policy = ContainerPolicy()
        assert policy.startup_seconds(26.0) > policy.startup_seconds(1.0) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ContainerPolicy(model_wise_cores=0)
        with pytest.raises(ValueError):
            ContainerPolicy(min_mem_alloc_gb=-1)
        with pytest.raises(ValueError):
            ContainerPolicy(hpa_target_fraction=0.0)
        with pytest.raises(ValueError):
            ContainerPolicy().startup_seconds(-1)


class TestPerfCalibration:
    def test_defaults_valid(self):
        PerfCalibration()

    def test_validation(self):
        with pytest.raises(ValueError):
            PerfCalibration(cpu_dense_gflops_at_reference=0)
        with pytest.raises(ValueError):
            PerfCalibration(colocation_interference=0)
        with pytest.raises(ValueError):
            PerfCalibration(gpu_cache_hit_rate=1.5)
        with pytest.raises(ValueError):
            PerfCalibration(cpu_dense_parallel_exponent=1.5)


class TestClusterPresets:
    def test_cpu_only_cluster(self):
        cluster = cpu_only_cluster()
        assert cluster.system == "cpu"
        assert cluster.num_nodes == 11
        assert not cluster.is_gpu_system
        assert cluster.sla_ms == 400.0
        assert cluster.total_cores == 11 * 64
        assert cluster.total_dram_gb == pytest.approx(11 * 384.0)

    def test_cpu_gpu_cluster(self):
        cluster = cpu_gpu_cluster()
        assert cluster.system == "cpu-gpu"
        assert cluster.num_nodes == 20
        assert cluster.is_gpu_system
        assert cluster.node.has_gpu

    def test_with_nodes(self):
        assert cpu_only_cluster().with_nodes(3).num_nodes == 3

    def test_sla_in_seconds(self):
        assert cpu_only_cluster().sla_s == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(name="x", node=xeon_gold_6242(), num_nodes=1, system="tpu")
        with pytest.raises(ValueError):
            ClusterSpec(name="x", node=xeon_gold_6242(), num_nodes=0, system="cpu")
        with pytest.raises(ValueError):
            ClusterSpec(name="x", node=xeon_gold_6242(), num_nodes=1, system="cpu-gpu")
