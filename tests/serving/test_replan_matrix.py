"""Replan equivalence matrix: one migration timeline, every execution mode.

The contract under test: a drift/replan-enabled run is digest-identical
whether it executes vectorized or scalar, serial or sharded across worker
processes, in-memory or streamed to an on-disk spool — and drift-without-
replan holds the same guarantee as its own matrix row.  Alongside it, the
RNG-stream isolation lock: drift and the replanner draw only from the
dedicated ``[seed, 4]`` stream, so any configuration whose drift weight
never leaves zero (or whose detector can never fire) is *bit-exact* with a
run that has the feature off entirely.

The fast tier runs the small matrix; the slow tier (``--runslow``) crosses
every mode pair at a longer horizon.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.planner import ElasticRecPlanner
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import microbenchmark
from repro.serving.engine import MultiTenantEngine, ServingEngine, TenantSpec
from repro.serving.sharding import run_sharded
from repro.serving.traffic import TrafficPattern

DRIFT = "linear@10+60:to=0.1"
REPLAN = "sla@1.2:patience=2,cooldown=30,max=2"

#: Matrix rows: drift with live re-planning, and drift left unplanned.
ROWS = [
    pytest.param(DRIFT, REPLAN, id="drift+replan"),
    pytest.param(DRIFT, "none", id="drift-only"),
]


@pytest.fixture(scope="module")
def plan():
    return ElasticRecPlanner(cpu_only_cluster(num_nodes=4)).plan(
        microbenchmark(num_tables=2), target_qps=30.0
    )


@pytest.fixture(scope="module")
def shard_plan():
    return ElasticRecPlanner(cpu_only_cluster(num_nodes=16)).plan(
        microbenchmark(num_tables=2), target_qps=30.0
    )


def _pattern(duration_s: float = 120.0) -> TrafficPattern:
    return TrafficPattern.constant(20.0, duration_s=duration_s)


def _single(plan, drift, replan, *, vectorized=True, duration_s=120.0):
    return ServingEngine(
        plan,
        seed=7,
        cost_model="skewed",
        drift=drift,
        replan=replan,
        vectorized=vectorized,
    ).run(_pattern(duration_s))


def _tenants(plan, drift, replan, *, count=2, vectorized=True, duration_s=120.0):
    return [
        TenantSpec(
            name=f"t{index}",
            plan=plan,
            pattern=_pattern(duration_s),
            seed=7 + index,
            max_replicas=6,
            cost_model="skewed",
            drift=drift,
            replan=replan,
            vectorized=vectorized,
        )
        for index in range(count)
    ]


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("drift,replan", ROWS)
    def test_scalar_matches_vectorized(self, plan, drift, replan):
        vec = _single(plan, drift, replan, vectorized=True)
        sca = _single(plan, drift, replan, vectorized=False)
        assert vec.digest() == sca.digest()
        assert vec.replans_applied == sca.replans_applied
        if replan != "none":
            assert vec.replans_applied >= 1, "the matrix row never migrated"

    @pytest.mark.parametrize("drift,replan", ROWS)
    def test_serial_multitenant_matches_single_engine(self, plan, drift, replan):
        single = _single(plan, drift, replan)
        spec = TenantSpec(
            name="t", plan=plan, pattern=_pattern(), seed=7,
            cost_model="skewed", drift=drift, replan=replan,
        )
        merged = MultiTenantEngine([spec]).run().tenant("t")
        assert merged.digest() == single.digest()
        assert merged.replans_applied == single.replans_applied

    @pytest.mark.parametrize("drift,replan", ROWS)
    def test_sharded_matches_serial(self, shard_plan, drift, replan):
        tenants = _tenants(shard_plan, drift, replan)
        serial = run_sharded(tenants, workers=1)
        sharded = run_sharded(tenants, workers=2)
        for name in serial.tenants:
            assert serial.tenant(name).digest() == sharded.tenant(name).digest()
            assert (
                serial.tenant(name).replans_applied
                == sharded.tenant(name).replans_applied
            )

    @pytest.mark.parametrize("drift,replan", ROWS)
    def test_streamed_matches_in_memory(self, shard_plan, drift, replan, tmp_path):
        tenants = _tenants(shard_plan, drift, replan)
        in_memory = run_sharded(tenants, workers=1)
        streamed = run_sharded(tenants, workers=1, stream_dir=str(tmp_path))
        for name in in_memory.tenants:
            assert in_memory.tenant(name).digest() == streamed.tenant(name).digest()
            assert (
                in_memory.tenant(name).replans_applied
                == streamed.tenant(name).replans_applied
            )
            assert in_memory.tenant(name).drift == streamed.tenant(name).drift
            assert in_memory.tenant(name).replan == streamed.tenant(name).replan


class TestRngStreamIsolation:
    """Drift and the replanner draw only from the ``[seed, 4]`` stream: any
    configuration that never leaves weight zero (or can never fire) must be
    bit-exact with the feature off — the ``[seed, 2]`` cost stream is
    consumed identically either way."""

    @pytest.fixture(scope="class")
    def baseline(self, plan):
        return _single(plan, None, None).digest()

    def test_zero_weight_drift_is_bit_exact_with_no_drift(self, plan, baseline):
        assert _single(plan, "step@99999:to=0.2", None).digest() == baseline

    def test_zero_weight_drift_endpoint_choice_cannot_leak(self, plan, baseline):
        # Two different drift endpoints, both at weight zero for the whole
        # run: the endpoint pool is drawn from [seed, 4], so neither draw may
        # perturb the cost stream.
        assert _single(plan, "step@99999:to=0.05", None).digest() == baseline
        assert _single(plan, "step@99999:to=0.8", None).digest() == baseline

    def test_linear_drift_past_horizon_is_bit_exact(self, plan, baseline):
        assert _single(plan, "linear@99999+100:to=0.1", None).digest() == baseline

    def test_unfireable_replan_is_bit_exact_with_no_replan(self, plan, baseline):
        assert _single(plan, None, "sla@1000.0:patience=3").digest() == baseline

    def test_unfireable_replan_under_drift_matches_drift_only(self, plan):
        drift_only = _single(plan, DRIFT, None)
        armed = _single(plan, DRIFT, "sla@1000.0:patience=3")
        assert armed.replans_applied == 0
        assert armed.digest() == drift_only.digest()


@pytest.mark.slow
class TestEquivalenceMatrixSlow:
    """Every mode pair crossed at a longer horizon (``--runslow`` tier)."""

    @pytest.mark.parametrize("drift,replan", ROWS)
    def test_all_modes_agree(self, shard_plan, drift, replan, tmp_path):
        digests = {}
        replans = {}
        cases = itertools.product((True, False), (1, 2), (None, "spool"))
        for vectorized, workers, spool in cases:
            tenants = _tenants(
                shard_plan, drift, replan, vectorized=vectorized, duration_s=300.0
            )
            stream_dir = None
            if spool:
                stream_dir = str(
                    tmp_path / f"{int(vectorized)}-{workers}-{spool}"
                )
            result = run_sharded(tenants, workers=workers, stream_dir=stream_dir)
            key = (vectorized, workers, spool)
            digests[key] = tuple(
                result.tenant(name).digest() for name in sorted(result.tenants)
            )
            replans[key] = tuple(
                result.tenant(name).replans_applied
                for name in sorted(result.tenants)
            )
        assert len(set(digests.values())) == 1, digests
        assert len(set(replans.values())) == 1, replans
        if replan != "none":
            assert any(count >= 1 for count in next(iter(replans.values())))
