"""Tests for the RPC model and latency tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.latency import LatencyTracker
from repro.serving.rpc import RPCModel


class TestRPCModel:
    def test_call_latency_components(self):
        rpc = RPCModel(network_gbps=10.0, per_call_overhead_s=0.001)
        latency = rpc.call_latency(payload_bytes=1.25e6)  # 1 ms transfer at 10 Gbps
        assert latency == pytest.approx(0.002)

    def test_fanout_latency(self):
        rpc = RPCModel(network_gbps=10.0, per_call_overhead_s=0.001)
        assert rpc.fanout_latency(1000, 0) == 0.0
        one = rpc.fanout_latency(1000, 1)
        many = rpc.fanout_latency(1000, 40)
        assert many > one

    def test_query_overhead_in_paper_range(self):
        """The paper reports ~31 ms of added latency for ~40 shards on 10 Gbps."""
        rpc = RPCModel(network_gbps=10.0)
        overhead = rpc.query_overhead(
            num_shards_contacted=40, request_bytes=20_000, response_bytes=32 * 32 * 4
        )
        assert 0.005 < overhead < 0.08

    def test_validation(self):
        with pytest.raises(ValueError):
            RPCModel(network_gbps=0)
        with pytest.raises(ValueError):
            RPCModel(network_gbps=10, per_call_overhead_s=-0.001)
        rpc = RPCModel(network_gbps=10)
        with pytest.raises(ValueError):
            rpc.call_latency(-1)
        with pytest.raises(ValueError):
            rpc.fanout_latency(10, -1)


class TestRPCLatencyComposition:
    def test_call_latency_is_overhead_plus_transfer(self):
        rpc = RPCModel(network_gbps=8.0, per_call_overhead_s=0.002)
        payload = 1e6
        transfer = payload * 8.0 / (8.0 * 1e9)
        assert rpc.call_latency(payload) == pytest.approx(0.002 + transfer)
        # The transfer term scales linearly with the payload.
        assert rpc.call_latency(2 * payload) - rpc.call_latency(payload) == pytest.approx(
            transfer
        )
        # A zero-byte call still pays the fixed per-call overhead.
        assert rpc.call_latency(0.0) == pytest.approx(0.002)

    def test_fanout_adds_the_per_call_issue_cost(self):
        rpc = RPCModel(network_gbps=10.0, per_call_overhead_s=0.001)
        one = rpc.fanout_latency(500.0, 1)
        assert one == pytest.approx(rpc.call_latency(500.0))
        for num_calls in (2, 10, 40):
            expected = rpc.call_latency(500.0) + 0.0001 * (num_calls - 1)
            assert rpc.fanout_latency(500.0, num_calls) == pytest.approx(expected)

    def test_query_overhead_composes_outbound_and_inbound_fanouts(self):
        rpc = RPCModel(network_gbps=10.0, per_call_overhead_s=0.0015)
        request_bytes, response_bytes, shards = 20_000.0, 4_096.0, 8
        expected = rpc.fanout_latency(request_bytes, shards) + rpc.fanout_latency(
            response_bytes, shards
        )
        assert rpc.query_overhead(shards, request_bytes, response_bytes) == pytest.approx(
            expected
        )

    def test_query_overhead_with_no_shards_is_free(self):
        rpc = RPCModel(network_gbps=10.0)
        assert rpc.query_overhead(0, 1e6, 1e6) == 0.0

    def test_more_shards_and_slower_network_cost_more(self):
        fast = RPCModel(network_gbps=32.0)
        slow = RPCModel(network_gbps=1.0)
        assert slow.query_overhead(8, 1e5, 1e5) > fast.query_overhead(8, 1e5, 1e5)
        assert fast.query_overhead(16, 1e5, 1e5) > fast.query_overhead(2, 1e5, 1e5)


class TestLatencyTracker:
    def test_percentiles_and_mean(self):
        tracker = LatencyTracker()
        for value in np.linspace(0.01, 1.0, 100):
            tracker.record(completion_time=float(value * 10), latency_s=float(value))
        assert tracker.num_samples == 100
        assert tracker.mean() == pytest.approx(0.505, rel=0.01)
        assert tracker.percentile(50) == pytest.approx(0.505, rel=0.05)
        assert tracker.percentile(95) > tracker.percentile(50)

    def test_sla_violation_fraction(self):
        tracker = LatencyTracker()
        for latency in (0.1, 0.2, 0.5, 0.6):
            tracker.record(0.0, latency)
        assert tracker.sla_violation_fraction(0.4) == pytest.approx(0.5)
        assert LatencyTracker().sla_violation_fraction(0.4) == 0.0

    def test_windowed_buckets(self):
        tracker = LatencyTracker()
        tracker.record(completion_time=5.0, latency_s=0.1)
        tracker.record(completion_time=65.0, latency_s=0.3)
        points = tracker.windowed(duration_s=120.0, bucket_s=60.0)
        assert len(points) == 2
        assert points[0].completions == 1
        assert points[0].p95_ms == pytest.approx(100.0)
        assert points[1].mean_ms == pytest.approx(300.0)

    def test_empty_bucket_reports_zeros(self):
        tracker = LatencyTracker()
        tracker.record(completion_time=5.0, latency_s=0.1)
        points = tracker.windowed(duration_s=180.0, bucket_s=60.0)
        assert points[2].completions == 0
        assert points[2].p95_ms == 0.0

    def test_accessors(self):
        tracker = LatencyTracker()
        tracker.record(1.0, 0.2)
        assert tracker.completion_times.tolist() == [1.0]
        assert tracker.latencies_s.tolist() == [0.2]

    def test_validation(self):
        tracker = LatencyTracker()
        with pytest.raises(ValueError):
            tracker.record(0.0, -1.0)
        with pytest.raises(ValueError):
            tracker.percentile(95)
        with pytest.raises(ValueError):
            tracker.mean()
        with pytest.raises(ValueError):
            tracker.sla_violation_fraction(0.0)
        with pytest.raises(ValueError):
            tracker.windowed(0.0)
