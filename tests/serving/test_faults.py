"""Tests for the fault-injection subsystem (models, script syntax, engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.planner import ElasticRecPlanner
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import microbenchmark
from repro.serving.engine import MultiTenantEngine, ServingEngine, TenantSpec
from repro.serving.faults import (
    FAULT_SCENARIOS,
    FaultModel,
    NodeDrain,
    RandomCrashes,
    ReplicaCrash,
    StragglerSlowdown,
    TransientDegradation,
    fault_scenario_names,
    make_fault_model,
    parse_fault_script,
    validate_fault_spec,
)
from repro.serving.replica_server import ReplicaServer
from repro.serving.routing import make_routing_policy
from repro.serving.traffic import TrafficPattern


@pytest.fixture(scope="module")
def plan():
    cluster = cpu_only_cluster(num_nodes=4)
    return ElasticRecPlanner(cluster).plan(microbenchmark(num_tables=2), target_qps=30.0)


@pytest.fixture(scope="module")
def pattern():
    return TrafficPattern.constant(25.0, duration_s=240.0)


class TestFaultModel:
    def test_empty_model_resolves_to_none(self):
        assert make_fault_model(FaultModel(), 600.0) is None
        assert make_fault_model("none", 600.0) is None
        assert make_fault_model(None, 600.0) is None

    def test_timeline_sorts_and_clips_scripted_events(self):
        model = FaultModel(
            events=[ReplicaCrash(at_s=500.0), ReplicaCrash(at_s=100.0),
                    ReplicaCrash(at_s=900.0)]
        )
        timeline = model.timeline(600.0, np.random.default_rng(0))
        assert [at for at, _ in timeline] == [100.0, 500.0]

    def test_stochastic_timeline_is_seed_deterministic(self):
        model = FaultModel(processes=[RandomCrashes(rate_per_min=2.0)])
        first = model.timeline(600.0, np.random.default_rng(7))
        second = model.timeline(600.0, np.random.default_rng(7))
        other = model.timeline(600.0, np.random.default_rng(8))
        assert first == second
        assert first != other
        assert all(0.0 <= at < 600.0 for at, _ in first)

    def test_every_registered_scenario_builds(self):
        for name in fault_scenario_names():
            model = FAULT_SCENARIOS[name](600.0)
            assert model.name == name
            assert (name == "none") == model.is_empty

    def test_unknown_scenario_lists_choices(self):
        with pytest.raises(ValueError, match="crash-storm"):
            make_fault_model("tsunami", 600.0)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            ReplicaCrash(at_s=-1.0)
        with pytest.raises(ValueError, match="policy"):
            ReplicaCrash(at_s=0.0, policy="retry")
        with pytest.raises(ValueError):
            StragglerSlowdown(at_s=0.0, factor=0.0)
        with pytest.raises(ValueError):
            NodeDrain(at_s=0.0, duration_s=-1.0)
        with pytest.raises(ValueError):
            RandomCrashes(rate_per_min=0.0)
        with pytest.raises(ValueError):
            TransientDegradation(at_s=0.0, duration_s=0.0)


class TestFaultScript:
    def test_full_script_round_trip(self):
        model = parse_fault_script(
            "crash@120:deployment=emb,replica=0,policy=drop;"
            "drain@300+60:node=1;"
            "straggler@200+90:factor=4;"
            "degrade@400+30:factor=2,deployment=dense;"
            "crashes@0+500:rate=0.5"
        )
        kinds = [type(e).__name__ for e in model.events]
        assert kinds == [
            "ReplicaCrash", "NodeDrain", "StragglerSlowdown", "TransientDegradation"
        ]
        crash = model.events[0]
        assert (crash.deployment, crash.replica, crash.policy) == ("emb", 0, "drop")
        drain = model.events[1]
        assert (drain.node, drain.duration_s, drain.grace_s) == (1, 60.0, 10.0)
        process = model.processes[0]
        assert (process.rate_per_min, process.start_s, process.end_s) == (0.5, 0.0, 500.0)

    @pytest.mark.parametrize(
        "script",
        ["", "crash", "crash@", "crash@abc", "flood@10", "crash@10:policy=retry",
         "crash@10:bogus=1", "crashes@0", "straggler@10+0:factor=4",
         "crash@10+5", "crashes@0+0:rate=2", "drain@10:grace=-1"],
    )
    def test_malformed_scripts_raise_one_line_errors(self, script):
        with pytest.raises(ValueError) as excinfo:
            validate_fault_spec(script)
        assert "\n" not in str(excinfo.value)


class TestCrashInjection:
    def test_crash_loses_capacity_then_recovers(self, plan, pattern):
        engine = ServingEngine(plan, seed=0, faults="crash@60")
        result = engine.run(pattern)
        assert result.faults == "script"
        assert result.faults_injected == 1
        # The replacement replica is re-created by a later reconcile, so the
        # final replica counts recover to at least the initial ones.
        for series in result.replica_counts.values():
            assert series[-1] >= series[0]

    def test_drop_policy_drops_inflight_queries(self, plan, pattern):
        result = ServingEngine(
            plan, seed=0, faults="crash@60:policy=drop;crash@120:policy=drop"
        ).run(pattern)
        total = result.tracker.num_samples
        assert result.dropped_queries + result.rejected_queries > 0
        assert (
            result.completed_queries + result.rejected_queries + result.dropped_queries
            == total
        )
        assert result.availability_fraction < 1.0

    def test_requeue_policy_requeues_onto_survivors(self, plan, pattern):
        # Double the replicas so every deployment keeps survivors: displaced
        # queries must be re-queued, not dropped.
        result = ServingEngine(
            plan,
            seed=0,
            initial_replicas=2,
            autoscale=False,
            faults="crash@60;crash@90;crash@120",
        ).run(pattern)
        assert result.requeued_queries > 0
        assert result.dropped_queries == 0
        assert sum(int(s.sum()) for s in result.requeues.values()) == result.requeued_queries

    def test_crash_against_named_deployment(self, plan, pattern):
        target = plan.deployments[0].name
        engine = ServingEngine(plan, seed=0, faults=f"crash@60:deployment={target}")
        result = engine.run(pattern)
        assert result.faults_injected == 1
        # Only the targeted deployment's availability can dip.
        for name, series in result.availability.items():
            if target not in name:
                assert np.all(series == 1.0)

    def test_faulty_run_is_seed_deterministic(self, plan, pattern):
        digests = [
            ServingEngine(plan, seed=3, faults="crash-storm").run(pattern).digest()
            for _ in range(2)
        ]
        assert digests[0] == digests[1]

    def test_different_seeds_give_different_fault_outcomes(self, plan, pattern):
        first = ServingEngine(plan, seed=0, faults="crash-storm").run(pattern)
        second = ServingEngine(plan, seed=1, faults="crash-storm").run(pattern)
        assert first.digest() != second.digest()


class TestFaultySweepDeterminism:
    def test_sweep_with_faults_is_identical_serial_and_parallel(self):
        # Victim selection must not depend on process-global state (e.g. the
        # container-id counter embedded in replica names): a faulty sweep is
        # byte-identical for any worker count, like a healthy one.
        from repro.experiments.sweeps import SweepConfig, run_sweep

        config = SweepConfig(
            workload="RM1", num_tables=2, num_nodes=4,
            base_qps=8.0, peak_qps=24.0, duration_s=90.0, seed=13,
            faults="crash-storm",
        )
        grid = dict(
            scenarios=["constant", "flash-crowd"],
            routings=["least-work", "recovery-aware"],
            replica_budgets=[4],
        )
        serial = run_sweep(config, workers=1, **grid)
        parallel = run_sweep(config, workers=4, **grid)
        assert serial.rows == parallel.rows
        assert serial.digest() == parallel.digest()


class TestNoFaultBitExactness:
    """A disabled fault layer must leave the engine bit-exact."""

    def test_none_matches_fault_unaware_run(self, plan, pattern):
        plain = ServingEngine(plan, autoscale=False, seed=0).run(pattern)
        disabled = ServingEngine(plan, autoscale=False, seed=0, faults="none").run(pattern)
        assert plain.digest() == disabled.digest()
        assert plain.faults == disabled.faults == "none"

    def test_out_of_window_faults_match_no_fault_run(self, plan, pattern):
        # Every scripted event lands past the run end, so the timeline is
        # empty and the engine must never even seed the fault RNG.
        plain = ServingEngine(plan, autoscale=False, seed=0).run(pattern)
        late = ServingEngine(
            plan, autoscale=False, seed=0, faults="crash@99999"
        ).run(pattern)
        assert plain.digest() == late.digest()


class TestNodeDrain:
    def test_drain_cordons_evicts_and_uncordons(self, plan, pattern):
        engine = ServingEngine(plan, seed=0, faults="drain@60+120:node=0")
        drained = engine.run(pattern)
        assert engine.cluster.node(0).schedulable  # uncordoned after the window
        assert drained.faults_injected >= 1

    def test_permanent_drain_keeps_node_cordoned(self, plan, pattern):
        engine = ServingEngine(plan, seed=0, faults="drain@60:node=0")
        engine.run(pattern)
        node = engine.cluster.node(0)
        assert not node.schedulable
        assert not node.containers  # nothing may be re-placed on it

    def test_drain_grace_period_drains_before_evicting(self, plan, pattern):
        # During the grace window the node's replicas refuse new traffic but
        # keep serving their queues; the grace length must therefore change
        # the run (a zero-grace drain kills queued work immediately).
        graceful = ServingEngine(
            plan, seed=0, faults="drain@60+120:node=0,grace=30"
        ).run(pattern)
        instant = ServingEngine(
            plan, seed=0, faults="drain@60+120:node=0,grace=0"
        ).run(pattern)
        assert graceful.digest() != instant.digest()

    def test_drain_settles_inflight_of_faultless_tenants(self, plan):
        # Tenant b configures no faults of its own, but tenant a's drain
        # evicts b's replicas: b's in-flight queries must be settled (the
        # drop policy turns them into recorded drops), not silently treated
        # as if the dead replica had finished its queue.
        heavy = TrafficPattern.constant(30.0, duration_s=180.0)
        tenants = [
            TenantSpec(
                "a", plan, heavy, seed=0,
                faults="drain@60:node=0,policy=drop,grace=0;"
                       "drain@61:node=1,policy=drop,grace=0",
            ),
            TenantSpec("b", plan, heavy, seed=1, autoscale=False),
        ]
        engine = MultiTenantEngine(tenants, cluster_spec=cpu_only_cluster(num_nodes=2))
        result = engine.run()
        b = result.tenant("b")
        assert b.dropped_queries + b.rejected_queries > 0
        assert b.availability_fraction < 1.0

    def test_drain_aimed_past_the_pool_misfires_instead_of_crashing(self, plan, pattern):
        engine = ServingEngine(plan, seed=0, faults="drain@60:node=99")
        result = engine.run(pattern)
        assert result.faults_injected == 0

    def test_drain_hits_every_tenant_on_the_node(self, plan):
        tenants = [
            TenantSpec(
                "a", plan, TrafficPattern.constant(10.0, 180.0), seed=0,
                faults="drain@60:node=0",
            ),
            TenantSpec("b", plan, TrafficPattern.constant(10.0, 180.0), seed=1),
        ]
        engine = MultiTenantEngine(tenants, cluster_spec=cpu_only_cluster(num_nodes=2))
        drained_node = engine.cluster.node(0)
        victims = {c.name for c in drained_node.containers}
        result = engine.run()
        assert any("b/" in name for name in victims), "both tenants share node 0"
        assert result.tenant("b").faults_injected >= 1


class TestSlowdowns:
    def test_straggler_inflates_latency_within_window(self, plan, pattern):
        healthy = ServingEngine(plan, autoscale=False, seed=0).run(pattern)
        slowed = ServingEngine(
            plan, autoscale=False, seed=0, faults="straggler@30+120:factor=8"
        ).run(pattern)
        assert slowed.overall_p95_latency_ms > healthy.overall_p95_latency_ms
        # Same arrivals either way: slowdowns never touch the traffic RNG.
        assert slowed.tracker.num_samples == healthy.tracker.num_samples

    def test_overlapping_windows_do_not_cancel_each_other(self, plan):
        # A short inner window ending inside a longer outer window must not
        # erase the outer one: the long straggler alone and the composed
        # script must still be slowed after the inner window ends.
        pattern = TrafficPattern.constant(10.0, duration_s=300.0)
        healthy = ServingEngine(plan, autoscale=False, seed=0).run(pattern)
        outer_only = ServingEngine(
            plan, autoscale=False, seed=0,
            faults="straggler@30+240:factor=6,replica=0",
        ).run(pattern)
        composed = ServingEngine(
            plan, autoscale=False, seed=0,
            faults="straggler@30+240:factor=6,replica=0;"
                   "straggler@60+30:factor=2,replica=0",
        ).run(pattern)
        # After the inner window ends (t >= 90) the outer factor still holds,
        # so the composed run's late p95 stays at the outer-only level above
        # the healthy baseline (cancellation would snap it back to healthy).
        late = healthy.sample_times >= 150
        assert outer_only.p95_latency_ms[late].max() > healthy.p95_latency_ms[late].max()
        assert composed.p95_latency_ms[late].max() >= outer_only.p95_latency_ms[late].max()

    def test_degradation_recovers_after_window(self, plan):
        # Light load so the degradation-window backlog fully drains: by the
        # end of the run the p95 must be back at the healthy level.
        long_pattern = TrafficPattern.constant(8.0, duration_s=300.0)
        degraded = ServingEngine(
            plan, autoscale=False, seed=0, faults="degrade@45+60:factor=6"
        ).run(long_pattern)
        healthy = ServingEngine(plan, autoscale=False, seed=0).run(long_pattern)
        mid = (degraded.sample_times >= 60) & (degraded.sample_times <= 105)
        assert degraded.p95_latency_ms[mid].max() > healthy.p95_latency_ms[mid].max()
        assert degraded.p95_latency_ms[-1] == pytest.approx(
            healthy.p95_latency_ms[-1], rel=0.2
        )


class TestRoutingUnderFaults:
    def test_policies_never_pick_failed_or_draining_replicas(self):
        alive = ReplicaServer("alive", ready_at=0.0)
        dead = ReplicaServer("dead", ready_at=0.0)
        dead.fail()
        draining = ReplicaServer("draining", ready_at=0.0)
        draining.start_drain()
        for name in ("least-work", "round-robin", "power-of-two", "ready-only",
                     "least-outstanding", "cost-weighted", "recovery-aware"):
            policy = make_routing_policy(name)
            policy.reset(np.random.default_rng(0))
            for _ in range(4):
                choice = policy.select("d", [dead, alive, draining], now=10.0)
                assert choice is alive, name

    def test_all_dead_means_rejection(self):
        dead = ReplicaServer("dead", ready_at=0.0)
        dead.fail()
        for name in ("least-work", "recovery-aware", "ready-only"):
            policy = make_routing_policy(name)
            assert policy.select("d", [dead], now=10.0) is None

    def test_recovery_aware_deprioritises_cold_replicas(self):
        # Warm replica with a 25 s backlog vs. a just-recovered idle one.
        warm = ReplicaServer("warm", ready_at=0.0)
        warm.submit(95.0, 25.0)  # busy until t = 120
        cold = ReplicaServer("cold", ready_at=95.0)
        policy = make_routing_policy("recovery-aware")
        # Inside the warm-up window the cold replica's penalty (4 queries x
        # 10 s x 55/60 remaining ~ 36.7 s on top of drain time 95) outweighs
        # the warm replica's 25 s backlog...
        assert policy.select("d", [cold, warm], now=100.0, cost=(10.0, 1.0)) is warm
        # ...after the window the penalty is gone and the idle (previously
        # cold) replica wins on queue state alone (95 < 120).
        assert policy.select("d", [cold, warm], now=160.0, cost=(10.0, 1.0)) is cold

    def test_recovery_aware_penalty_is_bounded_by_real_work(self):
        # The cold penalty is a few service times, not an absolute quarantine:
        # a warm replica with a long queue still overflows onto the cold one.
        warm = ReplicaServer("warm", ready_at=0.0)
        for i in range(100):
            warm.submit(float(i), 2.0)  # ~100 s of backlog
        cold = ReplicaServer("cold", ready_at=95.0)
        policy = make_routing_policy("recovery-aware")
        assert policy.select("d", [warm, cold], now=100.0, cost=(2.0, 1.0)) is cold


class TestAutoscalerCapacityLoss:
    def test_hpa_reacts_to_crash_induced_capacity_loss(self, plan):
        # Crash storm under autoscaling: the run must stay deterministic and
        # the HPA must re-grow the crashed deployments (final >= initial).
        pattern = TrafficPattern.constant(25.0, duration_s=300.0)
        result = ServingEngine(
            plan, seed=0, faults="crashes@0:rate=1.0"
        ).run(pattern)
        assert result.faults_injected > 0
        for series in result.replica_counts.values():
            assert series[-1] >= 1
