"""Tests for the discrete-event serving engine and its façade parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.planner import ElasticRecPlanner
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import microbenchmark
from repro.serving.engine import EventKind, ServingEngine
from repro.serving.simulator import ServingSimulator
from repro.serving.traffic import TrafficPattern

# summary() of the pre-engine (seed) simulator for the reference run below,
# captured at the commit that introduced the engine.  The engine must keep
# reproducing it exactly: same seed + same plan => byte-identical summaries.
SEED_MICRO_SUMMARY = {
    "peak_memory_gb": 10.710795916,
    "mean_latency_ms": 112.74081316455475,
    "p95_latency_ms": 156.50787061395022,
    "sla_violation_fraction": 0.0,
    "total_queries": 6031.0,
}


@pytest.fixture(scope="module")
def plan():
    cluster = cpu_only_cluster(num_nodes=4)
    return ElasticRecPlanner(cluster).plan(microbenchmark(num_tables=2), target_qps=30.0)


@pytest.fixture(scope="module")
def pattern():
    return TrafficPattern.constant(25.0, duration_s=240.0)


class TestEventKinds:
    def test_same_timestamp_priorities(self):
        # Completions resolve before arrivals; the control-plane tick, the
        # reconcile pass and the sample point run after traffic, in order.
        assert (
            EventKind.COMPLETION
            < EventKind.ARRIVAL
            < EventKind.AUTOSCALE
            < EventKind.RECONCILE
            < EventKind.SAMPLE
        )


class TestDeterminism:
    def test_engine_reproduces_seed_simulator_summary(self, plan, pattern):
        result = ServingEngine(plan, autoscale=False, seed=0).run(pattern)
        assert repr(result.summary()) == repr(SEED_MICRO_SUMMARY)

    def test_facade_and_engine_are_byte_identical(self, plan, pattern):
        facade = ServingSimulator(plan, autoscale=False, seed=0).run(pattern)
        engine = ServingEngine(plan, autoscale=False, seed=0).run(pattern)
        assert repr(facade.summary()) == repr(engine.summary())
        for name in ("sample_times", "target_qps", "achieved_qps", "memory_gb",
                     "p95_latency_ms"):
            assert getattr(facade, name).tobytes() == getattr(engine, name).tobytes()

    def test_repeated_runs_identical(self, plan, pattern):
        first = ServingEngine(plan, autoscale=False, seed=7).run(pattern)
        second = ServingEngine(plan, autoscale=False, seed=7).run(pattern)
        assert repr(first.summary()) == repr(second.summary())

    def test_power_of_two_deterministic_per_seed(self, plan, pattern):
        first = ServingEngine(plan, routing="power-of-two", autoscale=False, seed=5).run(pattern)
        second = ServingEngine(plan, routing="power-of-two", autoscale=False, seed=5).run(pattern)
        assert repr(first.summary()) == repr(second.summary())


class TestEngineBehaviour:
    def test_autoscaling_still_tracks_load(self, plan):
        steps = TrafficPattern.from_steps([(0, 20), (120, 60)], duration_s=360)
        result = ServingEngine(plan, seed=1).run(steps)
        assert result.memory_gb[-1] > result.memory_gb[0]
        assert np.mean(result.achieved_qps[-4:]) == pytest.approx(60.0, rel=0.15)

    def test_completion_events_with_least_outstanding(self, plan, pattern):
        result = ServingEngine(
            plan, routing="least-outstanding", autoscale=False, seed=0
        ).run(pattern)
        assert np.mean(result.achieved_qps[4:]) == pytest.approx(25.0, rel=0.1)
        assert result.sla_violation_fraction() < 0.05

    def test_ready_only_drops_queries_while_cold(self, plan):
        short = TrafficPattern.constant(20.0, duration_s=120.0)
        cold = ServingEngine(
            plan, routing="ready-only", warm_start=False, autoscale=False, seed=0
        ).run(short)
        warm = ServingEngine(
            plan, routing="ready-only", warm_start=True, autoscale=False, seed=0
        ).run(short)
        # Dropped queries are charged 2x SLA, so the cold start must show more
        # violations than the warm one.
        assert cold.sla_violation_fraction() > warm.sla_violation_fraction()

    def test_routing_recorded_in_result(self, plan, pattern):
        result = ServingEngine(plan, routing="round-robin", autoscale=False, seed=0).run(pattern)
        assert result.routing == "round-robin"

    def test_invalid_sample_interval(self, plan):
        with pytest.raises(ValueError):
            ServingEngine(plan, sample_interval_s=0.0)

    def test_target_series_uses_clamped_rate(self, plan):
        # Duration that is not a multiple of the sample interval: the last
        # boundary overshoots duration_s and reads the clamped final rate.
        odd = TrafficPattern.constant(10.0, duration_s=100.0)
        result = ServingEngine(plan, autoscale=False, sample_interval_s=15.0, seed=0).run(odd)
        assert result.sample_times[-1] > odd.duration_s
        assert result.target_qps[-1] == 10.0


class TestQueryCosts:
    def test_homogeneous_compat_kwargs_reproduce_seed_summary(self, plan, pattern):
        # The compatibility contract: homogeneous cost model + batch size one
        # is bit-identical with the pre-cost-model engine.
        result = ServingEngine(
            plan, autoscale=False, seed=0, cost_model="homogeneous", max_batch=1
        ).run(pattern)
        assert repr(result.summary()) == repr(SEED_MICRO_SUMMARY)
        assert result.cost_model == "homogeneous"
        assert result.max_batch == 1

    def test_skewed_costs_change_the_tail_not_the_arrivals(self, plan, pattern):
        hom = ServingEngine(plan, autoscale=False, seed=0).run(pattern)
        skew = ServingEngine(plan, autoscale=False, seed=0, cost_model="skewed").run(pattern)
        # The arrival process is untouched (dedicated cost seed stream)...
        assert skew.tracker.num_samples == hom.tracker.num_samples
        # ...but per-query service times now spread around the planner mean.
        assert skew.overall_p95_latency_ms != hom.overall_p95_latency_ms
        assert skew.cost_model == "skewed"

    def test_skewed_runs_deterministic_per_seed(self, plan, pattern):
        runs = [
            ServingEngine(plan, autoscale=False, seed=4, cost_model="skewed").run(pattern)
            for _ in range(2)
        ]
        assert repr(runs[0].summary()) == repr(runs[1].summary())

    def test_cost_weighted_routing_sustains_load(self, plan, pattern):
        result = ServingEngine(
            plan,
            routing="cost-weighted",
            autoscale=False,
            seed=0,
            cost_model="skewed",
            max_batch=4,
        ).run(pattern)
        assert result.routing == "cost-weighted"
        assert np.mean(result.achieved_qps[4:]) == pytest.approx(25.0, rel=0.1)

    def test_unknown_cost_model_rejected(self, plan):
        with pytest.raises(ValueError, match="cost model"):
            ServingEngine(plan, cost_model="zipfian")


class TestBatching:
    def test_batch_occupancy_recorded_per_deployment(self, plan, pattern):
        result = ServingEngine(plan, autoscale=False, seed=0, max_batch=4).run(pattern)
        assert set(result.batch_occupancy) == {d.name for d in plan.deployments}
        for series in result.batch_occupancy.values():
            assert series.shape == result.sample_times.shape
        assert result.max_batch == 4

    def test_unbatched_occupancy_never_exceeds_one(self, plan, pattern):
        result = ServingEngine(plan, autoscale=False, seed=0).run(pattern)
        for series in result.batch_occupancy.values():
            assert np.all(series <= 1.0)

    def test_batching_absorbs_overload(self, plan):
        heavy = TrafficPattern.constant(40.0, duration_s=180.0)
        unbatched = ServingEngine(plan, autoscale=False, seed=0).run(heavy)
        batched = ServingEngine(plan, autoscale=False, seed=0, max_batch=8).run(heavy)
        # Sub-linear batch scaling buys real capacity under pressure...
        assert batched.sla_violation_fraction() < unbatched.sla_violation_fraction()
        # ...because backlogged queries actually coalesce.
        assert max(series.max() for series in batched.batch_occupancy.values()) > 1.5

    def test_invalid_max_batch_rejected(self, plan):
        with pytest.raises(ValueError):
            ServingEngine(plan, max_batch=0)
        with pytest.raises(ValueError):
            ServingEngine(plan, batch_window_s=-0.1)


class TestRejectedQueryMetrics:
    def test_rejections_are_visible_to_the_autoscaler(self, plan):
        # A cold ready-only cluster drops every query until startup finishes;
        # those rejections must land in the interval metrics the HPA reads.
        short = TrafficPattern.constant(20.0, duration_s=120.0)
        engine = ServingEngine(
            plan, routing="ready-only", warm_start=False, autoscale=False, seed=0
        )
        engine.run(short)
        metrics = engine.cluster.metrics
        for deployment in plan.deployments:
            samples = metrics.samples(f"{deployment.name}/queries")
            assert samples and samples[0].value > 0
        # The dropped queries carry their 2x-SLA penalty into the latency
        # metric, so the overload is impossible for the HPA to miss.
        dense = next(d for d in plan.deployments if d.role == "dense")
        latency = metrics.samples(f"{dense.name}/latency_s")
        assert latency and latency[0].value >= 2.0 * plan.cluster.sla_s


class TestVectorisedSeries:
    def test_achieved_qps_counts_window_completions(self, plan, pattern):
        result = ServingEngine(plan, autoscale=False, seed=0).run(pattern)
        completions = np.sort(result.tracker.completion_times)
        for index in (0, result.sample_times.size // 2, result.sample_times.size - 1):
            end = result.sample_times[index]
            start = end - 15.0
            count = np.searchsorted(completions, end) - np.searchsorted(completions, start)
            assert result.achieved_qps[index] == pytest.approx(count / 15.0)

    def test_p95_series_matches_masked_reference(self, plan, pattern):
        result = ServingEngine(plan, autoscale=False, seed=0).run(pattern)
        completions = result.tracker.completion_times
        latencies = result.tracker.latencies_s * 1000.0
        window = 30.0
        for index in (1, result.sample_times.size // 2, result.sample_times.size - 1):
            end = result.sample_times[index]
            mask = (completions > end - window) & (completions <= end)
            expected = float(np.percentile(latencies[mask], 95)) if mask.any() else 0.0
            assert result.p95_latency_ms[index] == pytest.approx(expected)
