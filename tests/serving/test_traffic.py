"""Tests for traffic patterns and arrival generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.traffic import TrafficPattern, TrafficPhase, paper_dynamic_pattern


class TestTrafficPattern:
    def test_constant(self):
        pattern = TrafficPattern.constant(50.0, duration_s=100.0)
        assert pattern.rate_at(0.0) == 50.0
        assert pattern.rate_at(99.9) == 50.0
        assert pattern.peak_rate == 50.0
        assert pattern.expected_queries() == pytest.approx(5000.0)

    def test_steps(self):
        pattern = TrafficPattern.from_steps([(0, 10), (50, 30), (80, 5)], duration_s=100)
        assert pattern.rate_at(0) == 10
        assert pattern.rate_at(49.9) == 10
        assert pattern.rate_at(50) == 30
        assert pattern.rate_at(90) == 5
        assert pattern.peak_rate == 30
        assert pattern.expected_queries() == pytest.approx(10 * 50 + 30 * 30 + 5 * 20)

    def test_rate_at_negative_raises(self):
        pattern = TrafficPattern.constant(10, 100)
        with pytest.raises(ValueError):
            pattern.rate_at(-1)

    def test_rate_at_clamps_past_the_end(self):
        pattern = TrafficPattern.from_steps([(0, 10), (50, 30)], duration_s=100)
        assert pattern.rate_at(101) == 30
        assert pattern.rate_at(1e9) == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficPattern(phases=(), duration_s=10)
        with pytest.raises(ValueError):
            TrafficPattern.from_steps([(5, 10)], duration_s=100)
        with pytest.raises(ValueError):
            TrafficPattern.from_steps([(0, 10), (0, 20)], duration_s=100)
        with pytest.raises(ValueError):
            TrafficPattern.from_steps([(0, 10), (50, 20)], duration_s=50)
        with pytest.raises(ValueError):
            TrafficPhase(start_s=-1, rate_qps=10)
        with pytest.raises(ValueError):
            TrafficPhase(start_s=0, rate_qps=-10)

    def test_arrivals_are_sorted_and_bounded(self, rng):
        pattern = TrafficPattern.from_steps([(0, 20), (50, 80)], duration_s=100)
        arrivals = pattern.arrivals(rng)
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals.min() >= 0 and arrivals.max() <= 100

    def test_arrival_count_close_to_expected(self, rng):
        pattern = TrafficPattern.constant(100.0, duration_s=200.0)
        arrivals = pattern.arrivals(rng)
        assert arrivals.size == pytest.approx(pattern.expected_queries(), rel=0.05)

    def test_zero_rate_phase_produces_no_arrivals(self, rng):
        pattern = TrafficPattern.from_steps([(0, 0.0)], duration_s=100)
        assert pattern.arrivals(rng).size == 0


class TestPaperDynamicPattern:
    def test_shape(self):
        pattern = paper_dynamic_pattern(base_qps=50, peak_qps=250, duration_s=1800)
        assert pattern.rate_at(0) == 50
        assert pattern.rate_at(5 * 60) == pytest.approx(90.0)
        assert pattern.rate_at(20 * 60) == pytest.approx(250.0)
        # Traffic drops back down at minute 24.
        assert pattern.rate_at(25 * 60) < 120
        assert pattern.peak_rate == pytest.approx(250.0)

    def test_scaled_duration_keeps_shape(self):
        pattern = paper_dynamic_pattern(base_qps=10, peak_qps=50, duration_s=900)
        assert pattern.rate_at(0) == 10
        assert pattern.rate_at(899) < 50
        assert pattern.peak_rate == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            paper_dynamic_pattern(base_qps=100, peak_qps=50)


class TestRateAtExactBoundaries:
    """Exact window/phase boundaries of ``rate_at`` (no off-by-one drift)."""

    @pytest.fixture()
    def stepped(self) -> TrafficPattern:
        return TrafficPattern.from_steps([(0.0, 10.0), (60.0, 20.0)], duration_s=120.0)

    def test_phase_start_boundary_belongs_to_the_new_phase(self, stepped):
        # A phase owns its start instant: [start, next_start).
        assert stepped.rate_at(60.0) == 20.0
        assert stepped.rate_at(59.999999) == 10.0

    def test_t_equal_to_duration_reads_the_final_rate(self, stepped):
        assert stepped.rate_at(stepped.duration_s) == 20.0

    def test_past_duration_clamps_to_the_final_rate(self, stepped):
        # Sample grids may overshoot duration_s (engine boundary arithmetic);
        # the clamp keeps them on the final phase instead of raising.
        assert stepped.rate_at(stepped.duration_s + 1e-9) == 20.0
        assert stepped.rate_at(stepped.duration_s + 1e6) == 20.0

    def test_time_zero_reads_the_first_phase(self, stepped):
        assert stepped.rate_at(0.0) == 10.0

    def test_negative_time_rejected(self, stepped):
        with pytest.raises(ValueError):
            stepped.rate_at(-1e-9)

    def test_boundary_exactness_with_float_phase_starts(self):
        # Phase starts produced by float arithmetic (the scenario builders'
        # arange grids) must stay exact at their own boundaries.
        starts = [i * 0.1 for i in range(5)]
        pattern = TrafficPattern.from_steps(
            [(start, float(i)) for i, start in enumerate(starts)], duration_s=1.0
        )
        for i, start in enumerate(starts):
            assert pattern.rate_at(start) == float(i)
