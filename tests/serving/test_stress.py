"""Tests for replica stress testing (QPS_max discovery)."""

from __future__ import annotations

import pytest

from repro.serving.stress import find_qps_max


class TestFindQPSMax:
    def test_qps_max_below_saturation(self):
        result = find_qps_max(service_time_s=0.05, duration_s=60.0)
        ideal = 1.0 / 0.05
        assert 0.3 * ideal <= result.qps_max <= ideal

    def test_latency_knee_is_monotone_in_rate(self):
        result = find_qps_max(service_time_s=0.05, duration_s=60.0, num_steps=8)
        p95 = list(result.p95_latencies_s)
        # Tail latency at the highest tested rate must exceed the lowest one's.
        assert p95[-1] > p95[0]
        assert result.knee_latency_s == pytest.approx(3 * 0.05)

    def test_faster_service_supports_higher_qps(self):
        slow = find_qps_max(service_time_s=0.1, duration_s=40.0)
        fast = find_qps_max(service_time_s=0.02, duration_s=40.0)
        assert fast.qps_max > slow.qps_max

    def test_deterministic_for_seed(self):
        a = find_qps_max(0.05, duration_s=30.0, seed=3)
        b = find_qps_max(0.05, duration_s=30.0, seed=3)
        assert a.qps_max == b.qps_max

    def test_validation(self):
        with pytest.raises(ValueError):
            find_qps_max(0.0)
        with pytest.raises(ValueError):
            find_qps_max(0.05, knee_factor=1.0)
        with pytest.raises(ValueError):
            find_qps_max(0.05, num_steps=1)


class TestFindQPSMaxEdgeCases:
    def test_knee_at_the_first_probe_reports_the_lowest_rate(self):
        # With a knee barely above the service time even the lightest probe
        # exceeds it (~30% of arrivals queue), so the fallback is rates[0].
        result = find_qps_max(
            service_time_s=0.5, knee_factor=1.0001, duration_s=120.0, seed=0
        )
        assert result.qps_max == result.tested_rates[0]
        assert all(p95 > result.knee_latency_s for p95 in result.p95_latencies_s)

    def test_ramp_is_monotone_and_saturates_past_the_knee(self):
        result = find_qps_max(service_time_s=0.05, duration_s=90.0, num_steps=10)
        rates = list(result.tested_rates)
        assert len(rates) == 10
        assert all(b > a for a, b in zip(rates, rates[1:]))
        assert result.qps_max in rates
        # The ramp deliberately overshoots saturation (1.2x the ideal rate),
        # so the final probe must sit beyond the knee.
        assert result.p95_latencies_s[-1] > result.knee_latency_s
        assert rates[-1] == pytest.approx(1.2 / 0.05)

    def test_zero_traffic_probes_report_the_bare_service_time(self):
        # A duration so short that every probe draws zero arrivals: each p95
        # degenerates to the service time, which always sits below the knee.
        result = find_qps_max(service_time_s=0.05, duration_s=1e-9, seed=0)
        assert all(p95 == pytest.approx(0.05) for p95 in result.p95_latencies_s)
        assert result.qps_max == result.tested_rates[-1]

    def test_zero_rate_pattern_generates_no_arrivals(self):
        import numpy as np

        from repro.serving.traffic import TrafficPattern

        arrivals = TrafficPattern.constant(0.0, 60.0).arrivals(np.random.default_rng(0))
        assert arrivals.size == 0
