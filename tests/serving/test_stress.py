"""Tests for replica stress testing (QPS_max discovery)."""

from __future__ import annotations

import pytest

from repro.serving.stress import find_qps_max


class TestFindQPSMax:
    def test_qps_max_below_saturation(self):
        result = find_qps_max(service_time_s=0.05, duration_s=60.0)
        ideal = 1.0 / 0.05
        assert 0.3 * ideal <= result.qps_max <= ideal

    def test_latency_knee_is_monotone_in_rate(self):
        result = find_qps_max(service_time_s=0.05, duration_s=60.0, num_steps=8)
        p95 = list(result.p95_latencies_s)
        # Tail latency at the highest tested rate must exceed the lowest one's.
        assert p95[-1] > p95[0]
        assert result.knee_latency_s == pytest.approx(3 * 0.05)

    def test_faster_service_supports_higher_qps(self):
        slow = find_qps_max(service_time_s=0.1, duration_s=40.0)
        fast = find_qps_max(service_time_s=0.02, duration_s=40.0)
        assert fast.qps_max > slow.qps_max

    def test_deterministic_for_seed(self):
        a = find_qps_max(0.05, duration_s=30.0, seed=3)
        b = find_qps_max(0.05, duration_s=30.0, seed=3)
        assert a.qps_max == b.qps_max

    def test_validation(self):
        with pytest.raises(ValueError):
            find_qps_max(0.0)
        with pytest.raises(ValueError):
            find_qps_max(0.05, knee_factor=1.0)
        with pytest.raises(ValueError):
            find_qps_max(0.05, num_steps=1)
