"""Edge-case tests for the latency bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.latency import LatencyTracker


class TestEmptyTracker:
    def test_no_samples(self):
        tracker = LatencyTracker()
        assert tracker.num_samples == 0
        assert tracker.completion_times.size == 0
        assert tracker.latencies_s.size == 0

    def test_percentile_and_mean_raise(self):
        tracker = LatencyTracker()
        with pytest.raises(ValueError, match="no latency samples"):
            tracker.percentile(95.0)
        with pytest.raises(ValueError, match="no latency samples"):
            tracker.mean()

    def test_sla_violation_fraction_is_zero(self):
        assert LatencyTracker().sla_violation_fraction(0.4) == 0.0

    def test_windowed_reports_empty_buckets(self):
        points = LatencyTracker().windowed(duration_s=120.0, bucket_s=60.0)
        assert [p.time_s for p in points] == [0.0, 60.0]
        assert all(p.completions == 0 for p in points)
        assert all(p.p50_ms == p.p95_ms == p.p99_ms == p.mean_ms == 0.0 for p in points)


class TestSingleSample:
    def test_every_percentile_is_the_sample(self):
        tracker = LatencyTracker()
        tracker.record(completion_time=10.0, latency_s=0.25)
        for percentile in (0.1, 50.0, 95.0, 99.0, 100.0):
            assert tracker.percentile(percentile) == pytest.approx(0.25)
        assert tracker.mean() == pytest.approx(0.25)

    def test_windowed_single_sample(self):
        tracker = LatencyTracker()
        tracker.record(completion_time=30.0, latency_s=0.1)
        points = tracker.windowed(duration_s=60.0, bucket_s=60.0)
        assert len(points) == 1
        assert points[0].completions == 1
        assert points[0].p50_ms == pytest.approx(100.0)
        assert points[0].p95_ms == pytest.approx(100.0)

    def test_sla_boundary_is_not_a_violation(self):
        tracker = LatencyTracker()
        tracker.record(completion_time=1.0, latency_s=0.4)
        # Strictly-greater comparison: exactly at the SLA is compliant.
        assert tracker.sla_violation_fraction(0.4) == 0.0
        assert tracker.sla_violation_fraction(0.39999) == 1.0


class TestWindowBoundaries:
    def test_completion_exactly_on_bucket_edge_lands_in_next_bucket(self):
        tracker = LatencyTracker()
        tracker.record(completion_time=60.0, latency_s=0.2)
        points = tracker.windowed(duration_s=120.0, bucket_s=60.0)
        # Buckets are [start, end): a completion at exactly 60.0 belongs to
        # the second bucket, not the first.
        assert points[0].completions == 0
        assert points[1].completions == 1

    def test_completion_at_time_zero_lands_in_first_bucket(self):
        tracker = LatencyTracker()
        tracker.record(completion_time=0.0, latency_s=0.05)
        points = tracker.windowed(duration_s=60.0, bucket_s=60.0)
        assert points[0].completions == 1

    def test_completion_at_duration_end_falls_outside_every_bucket(self):
        tracker = LatencyTracker()
        tracker.record(completion_time=120.0, latency_s=0.05)
        points = tracker.windowed(duration_s=120.0, bucket_s=60.0)
        assert sum(p.completions for p in points) == 0

    def test_mixed_boundary_and_interior_samples(self):
        tracker = LatencyTracker()
        for completion, latency in [(0.0, 0.1), (59.999, 0.2), (60.0, 0.3), (119.0, 0.4)]:
            tracker.record(completion, latency)
        points = tracker.windowed(duration_s=120.0, bucket_s=60.0)
        assert points[0].completions == 2
        assert points[1].completions == 2
        assert points[1].mean_ms == pytest.approx(350.0)

    def test_windowed_rejects_non_positive_buckets(self):
        tracker = LatencyTracker()
        with pytest.raises(ValueError):
            tracker.windowed(duration_s=0.0)
        with pytest.raises(ValueError):
            tracker.windowed(duration_s=60.0, bucket_s=0.0)

    def test_record_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencyTracker().record(1.0, -0.1)

    def test_completion_arrays_preserve_insertion_order(self):
        tracker = LatencyTracker()
        tracker.record(5.0, 0.2)
        tracker.record(3.0, 0.1)
        assert np.array_equal(tracker.completion_times, np.array([5.0, 3.0]))
        assert np.array_equal(tracker.latencies_s, np.array([0.2, 0.1]))
