"""Property-based invariants for drift × replan × fault × routing mixes.

The online re-planning layer (drift detector, shard-copy migration, cutover)
must preserve the engine's core invariants for *every* configuration it
accepts — including a re-plan firing while a node drain is in progress:

* conservation — completions + rejections + drops == arrivals;
* monotonicity — the event loop pops events (REPLAN included) in
  non-decreasing timestamp order;
* determinism — the same seed yields a byte-identical result digest.

Hypothesis draws the configurations; ``derandomize=True`` keeps CI stable.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.planner import ElasticRecPlanner  # noqa: E402
from repro.hardware.specs import cpu_only_cluster  # noqa: E402
from repro.model.configs import microbenchmark  # noqa: E402
from repro.serving.engine import EventKind, ServingEngine  # noqa: E402
from repro.serving.routing import routing_policy_names  # noqa: E402
from repro.serving.scenarios import build_scenario, scenario_names  # noqa: E402

_PLAN = ElasticRecPlanner(cpu_only_cluster(num_nodes=4)).plan(
    microbenchmark(num_tables=2), target_qps=30.0
)

_DRIFT_SPECS = [
    "none",
    "step@20:to=0.2",
    "linear@10+40:to=0.1",
    "oscillate@0+60:to=0.3",
    "linear@5+30:to=0.95,from=0.2",
]

_REPLAN_SPECS = [
    "none",
    "sla@1.2:patience=1,cooldown=10,max=2",
    "sla@1.05:patience=2,cooldown=5,max=3,bandwidth=4",
    "sla@4.0:patience=3",
]

_FAULT_SPECS = [
    "none",
    "crash@20:policy=drop;crash@45:policy=drop",
    "drain@30+40:node=0",
    "straggler@15+30:factor=6;degrade@50+20:factor=3",
]

_CONFIGS = st.tuples(
    st.sampled_from(scenario_names()),
    st.sampled_from(routing_policy_names()),
    st.sampled_from(_DRIFT_SPECS),
    st.sampled_from(_REPLAN_SPECS),
    st.sampled_from(_FAULT_SPECS),
    st.integers(min_value=0, max_value=2**16),
)

_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run(scenario, routing, drift, replan, faults, seed, on_event=None):
    pattern = build_scenario(scenario, 8.0, 24.0, 90.0, seed=seed)
    engine = ServingEngine(
        _PLAN,
        routing=routing,
        seed=seed,
        cost_model="skewed",
        faults=faults,
        drift=drift,
        replan=replan,
    )
    return engine.run(pattern, on_event=on_event)


class TestConservation:
    @given(config=_CONFIGS)
    @settings(**_SETTINGS)
    def test_completions_rejections_and_drops_partition_arrivals(self, config):
        result = _run(*config)
        arrivals = result.tracker.num_samples
        assert (
            result.completed_queries + result.rejected_queries + result.dropped_queries
            == arrivals
        )
        assert result.completed_queries >= 0
        assert 0.0 <= result.availability_fraction <= 1.0
        assert result.replans_applied >= 0
        for series in result.availability.values():
            assert series.min() >= 0.0 and series.max() <= 1.0


class TestMonotonicity:
    @given(config=_CONFIGS)
    @settings(**_SETTINGS)
    def test_event_timestamps_never_move_backwards(self, config):
        times: list[float] = []
        kinds: list[int] = []
        result = _run(
            *config, on_event=lambda now, kind: (times.append(now), kinds.append(kind))
        )
        assert times, "the run popped no events"
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert {EventKind(k) for k in kinds} <= set(EventKind)
        assert (result.tracker.latencies_s >= 0.0).all()


class TestSeedDeterminism:
    @given(config=_CONFIGS)
    @settings(**_SETTINGS)
    def test_same_seed_means_identical_digest(self, config):
        assert _run(*config).digest() == _run(*config).digest()


class TestReplanFiresMidDrain:
    """A hair-trigger detector under an overload drift must actually fire
    while a node drain is removing replicas — the invariants have to survive
    a migration racing a fault window."""

    _ARGS = (
        "constant",
        "least-work",
        "linear@5+20:to=0.05",
        "sla@1.01:patience=1,cooldown=1,max=3",
        "drain@30+40:node=0",
        7,
    )

    def test_replan_fires_and_conserves_queries(self):
        result = _run(*self._ARGS)
        assert result.replans_applied >= 1
        arrivals = result.tracker.num_samples
        assert (
            result.completed_queries + result.rejected_queries + result.dropped_queries
            == arrivals
        )

    def test_replan_mid_drain_is_deterministic(self):
        assert _run(*self._ARGS).digest() == _run(*self._ARGS).digest()
