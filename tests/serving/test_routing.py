"""Tests for the pluggable replica-routing policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.planner import ElasticRecPlanner
from repro.hardware.specs import cpu_only_cluster
from repro.model.configs import microbenchmark
from repro.serving.engine import ServingEngine
from repro.serving.replica_server import ReplicaServer
from repro.serving.routing import (
    ROUTING_POLICIES,
    CostWeightedPolicy,
    LeastOutstandingPolicy,
    LeastWorkPolicy,
    PowerOfTwoPolicy,
    ReadyOnlyPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    make_routing_policy,
    routing_policy_names,
)
from repro.serving.traffic import TrafficPattern


def _servers(n: int, ready_at: float = 0.0) -> list[ReplicaServer]:
    return [ReplicaServer(f"r{i}", ready_at=ready_at) for i in range(n)]


class TestRegistry:
    def test_all_policies_registered(self):
        assert routing_policy_names() == [
            "least-work",
            "round-robin",
            "power-of-two",
            "ready-only",
            "least-outstanding",
            "cost-weighted",
            "recovery-aware",
        ]

    def test_make_by_name_and_passthrough(self):
        policy = make_routing_policy("round-robin")
        assert isinstance(policy, RoundRobinPolicy)
        assert make_routing_policy(policy) is policy

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_routing_policy("random-walk")

    def test_names_match_classes(self):
        for name, cls in ROUTING_POLICIES.items():
            assert cls.name == name
            assert issubclass(cls, RoutingPolicy)


class TestLeastWork:
    def test_picks_emptiest_queue(self):
        servers = _servers(3)
        servers[0].submit(0.0, 5.0)
        servers[1].submit(0.0, 1.0)
        policy = LeastWorkPolicy()
        assert policy.select("d", servers, now=2.0) is servers[2]

    def test_prefers_ready_replicas(self):
        idle_but_starting = ReplicaServer("starting", ready_at=100.0)
        busy_but_ready = ReplicaServer("ready")
        busy_but_ready.submit(0.0, 10.0)
        policy = LeastWorkPolicy()
        assert policy.select("d", [idle_but_starting, busy_but_ready], 1.0) is busy_but_ready

    def test_falls_back_to_starting_replicas(self):
        starting = _servers(2, ready_at=50.0)
        policy = LeastWorkPolicy()
        assert policy.select("d", starting, now=1.0) is starting[0]

    def test_empty_pool(self):
        assert LeastWorkPolicy().select("d", [], 0.0) is None


class TestCostWeighted:
    def test_degenerates_to_least_work_without_a_hint(self):
        servers = _servers(3)
        servers[0].submit(0.0, 5.0)
        servers[1].submit(0.0, 1.0)
        assert CostWeightedPolicy().select("d", servers, now=2.0) is servers[2]

    def test_routes_by_predicted_completion(self):
        servers = _servers(2)
        servers[0].submit(0.0, 1.0)
        policy = CostWeightedPolicy()
        # Both idle by now=5: tie on completion, first replica wins.
        assert policy.select("d", servers, 5.0, cost=(1.0, 1.0)) is servers[0]
        # Replica 0 backlogged: the prediction routes around it.
        servers[0].submit(5.0, 10.0)
        assert policy.select("d", servers, 6.0, cost=(1.0, 1.0)) is servers[1]

    def test_prefers_a_joinable_forming_batch(self):
        from repro.hardware.perf_model import BatchLatencyModel

        model = BatchLatencyModel(
            kind="embedding", batch_exponent=0.85, overhead_fraction=0.2
        )
        batching = ReplicaServer("batching", max_batch=4, batch_model=model)
        batching.submit(0.0, 1.0)
        batching.submit(0.5, 1.0)  # forming batch starts service at 1.0
        loaded = ReplicaServer("loaded", batch_model=model)
        loaded.submit(0.0, 1.9)
        # Least-work sees drain times 2.0 vs 1.9 and picks the loaded
        # replica; the batch-aware prediction knows a cheap query can join
        # the forming batch (completing at 2.24, vs 2.34 queued behind the
        # loaded replica).
        assert LeastWorkPolicy().select("d", [batching, loaded], 0.7) is loaded
        policy = CostWeightedPolicy()
        assert policy.select("d", [batching, loaded], 0.7, cost=(1.0, 0.3)) is batching

    def test_empty_pool(self):
        assert CostWeightedPolicy().select("d", [], 0.0, cost=(1.0, 1.0)) is None


class TestRoundRobin:
    def test_cycles_per_deployment(self):
        servers = _servers(3)
        policy = RoundRobinPolicy()
        picks = [policy.select("d", servers, 0.0) for _ in range(4)]
        assert picks == [servers[0], servers[1], servers[2], servers[0]]

    def test_independent_cursors(self):
        a, b = _servers(2)
        policy = RoundRobinPolicy()
        assert policy.select("d1", [a, b], 0.0) is a
        assert policy.select("d2", [a, b], 0.0) is a
        assert policy.select("d1", [a, b], 0.0) is b

    def test_reset_restarts_cursors(self):
        servers = _servers(2)
        policy = RoundRobinPolicy()
        policy.select("d", servers, 0.0)
        policy.reset(np.random.default_rng(0))
        assert policy.select("d", servers, 0.0) is servers[0]


class TestPowerOfTwo:
    def test_single_replica(self):
        servers = _servers(1)
        policy = PowerOfTwoPolicy(rng=np.random.default_rng(0))
        assert policy.select("d", servers, 0.0) is servers[0]

    def test_prefers_less_loaded_of_the_sampled_pair(self):
        servers = _servers(2)
        servers[0].submit(0.0, 100.0)
        policy = PowerOfTwoPolicy(rng=np.random.default_rng(0))
        # With two replicas both are always sampled, so the idle one wins.
        for _ in range(10):
            assert policy.select("d", servers, 0.0) is servers[1]

    def test_deterministic_after_reset(self):
        servers = _servers(8)
        policy = PowerOfTwoPolicy()
        policy.reset(np.random.default_rng(42))
        first = [policy.select("d", servers, 0.0).name for _ in range(20)]
        policy.reset(np.random.default_rng(42))
        second = [policy.select("d", servers, 0.0).name for _ in range(20)]
        assert first == second


class TestReadyOnly:
    def test_drops_when_nothing_ready(self):
        policy = ReadyOnlyPolicy()
        assert policy.select("d", _servers(3, ready_at=100.0), now=1.0) is None

    def test_routes_least_work_among_ready(self):
        ready = _servers(2)
        ready[0].submit(0.0, 5.0)
        starting = ReplicaServer("s", ready_at=100.0)
        policy = ReadyOnlyPolicy()
        assert policy.select("d", ready + [starting], now=1.0) is ready[1]


class TestLeastOutstanding:
    def test_tracks_in_flight_counts(self):
        servers = _servers(2)
        policy = LeastOutstandingPolicy()
        assert policy.needs_completion_events
        first = policy.select("d", servers, 0.0)
        policy.on_submit("d", first)
        assert policy.select("d", servers, 0.0) is servers[1]
        policy.on_submit("d", servers[1])
        policy.on_complete("d", first.name)
        assert policy.select("d", servers, 0.0) is first

    def test_reset_clears_counts(self):
        servers = _servers(2)
        policy = LeastOutstandingPolicy()
        policy.on_submit("d", servers[0])
        policy.reset(np.random.default_rng(0))
        assert policy.select("d", servers, 0.0) is servers[0]


class TestPoliciesUnderIdenticalArrivals:
    """Same plan, same seed (hence identical arrivals) across policies."""

    @pytest.fixture(scope="class")
    def plan(self):
        cluster = cpu_only_cluster(num_nodes=4)
        return ElasticRecPlanner(cluster).plan(microbenchmark(num_tables=2), target_qps=30.0)

    @pytest.fixture(scope="class")
    def results(self, plan):
        pattern = TrafficPattern.constant(25.0, duration_s=240.0)
        out = {}
        for name in routing_policy_names():
            engine = ServingEngine(plan, routing=name, autoscale=False, seed=0)
            out[name] = engine.run(pattern)
        return out

    def test_identical_arrivals_across_policies(self, results):
        counts = {r.tracker.num_samples for r in results.values()}
        assert len(counts) == 1

    def test_all_policies_serve_the_load(self, results):
        for name, result in results.items():
            assert np.mean(result.achieved_qps[4:]) == pytest.approx(25.0, rel=0.1), name

    def test_result_records_routing_name(self, results):
        for name, result in results.items():
            assert result.routing == name

    def test_load_aware_beats_round_robin_tail(self, results):
        # Round-robin ignores queue depth, so its tail latency cannot beat
        # least-work under the same arrivals (ties only in the unloaded limit).
        assert (
            results["least-work"].overall_p95_latency_ms
            <= results["round-robin"].overall_p95_latency_ms * 1.05
        )
