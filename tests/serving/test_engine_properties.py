"""Property-based engine invariants across random scenario/routing/fault mixes.

Three invariants must hold for *every* configuration the engine accepts, not
just the hand-picked ones in the example-based tests:

* conservation — completions + rejections + drops == arrivals;
* monotonicity — the event loop pops events in non-decreasing timestamp
  order, and every recorded completion happens at or after time zero with a
  non-negative latency;
* determinism — the same seed yields a byte-identical result digest.

Hypothesis draws the configurations; ``derandomize=True`` keeps CI stable
(the same example set runs every time).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.planner import ElasticRecPlanner  # noqa: E402
from repro.hardware.specs import cpu_only_cluster  # noqa: E402
from repro.model.configs import microbenchmark  # noqa: E402
from repro.serving.engine import EventKind, ServingEngine  # noqa: E402
from repro.serving.faults import fault_scenario_names  # noqa: E402
from repro.serving.routing import routing_policy_names  # noqa: E402
from repro.serving.scenarios import build_scenario, scenario_names  # noqa: E402

_PLAN = ElasticRecPlanner(cpu_only_cluster(num_nodes=4)).plan(
    microbenchmark(num_tables=2), target_qps=30.0
)

_FAULT_SPECS = fault_scenario_names() + [
    "crash@20:policy=drop;crash@45:policy=drop",
    "drain@30+40:node=0",
    "straggler@15+30:factor=6;degrade@50+20:factor=3",
    "crashes@0:rate=2.0,policy=drop",
]

_CONFIGS = st.tuples(
    st.sampled_from(scenario_names()),
    st.sampled_from(routing_policy_names()),
    st.sampled_from(_FAULT_SPECS),
    st.integers(min_value=0, max_value=2**16),
)

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run(scenario, routing, faults, seed, on_event=None):
    pattern = build_scenario(scenario, 8.0, 24.0, 90.0, seed=seed)
    engine = ServingEngine(_PLAN, routing=routing, seed=seed, faults=faults)
    return engine.run(pattern, on_event=on_event)


class TestConservation:
    @given(config=_CONFIGS)
    @settings(**_SETTINGS)
    def test_completions_rejections_and_drops_partition_arrivals(self, config):
        result = _run(*config)
        arrivals = result.tracker.num_samples
        assert (
            result.completed_queries + result.rejected_queries + result.dropped_queries
            == arrivals
        )
        assert result.completed_queries >= 0
        assert 0.0 <= result.availability_fraction <= 1.0
        for series in result.availability.values():
            assert series.min() >= 0.0 and series.max() <= 1.0
        for series in result.requeues.values():
            assert series.min() >= 0


class TestMonotonicity:
    @given(config=_CONFIGS)
    @settings(**_SETTINGS)
    def test_event_timestamps_never_move_backwards(self, config):
        times: list[float] = []
        kinds: list[int] = []
        result = _run(*config, on_event=lambda now, kind: (times.append(now), kinds.append(kind)))
        assert times, "the run popped no events"
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert {EventKind(k) for k in kinds} <= set(EventKind)
        # Recorded completions are physical: non-negative latency, and the
        # sample grid the series were drawn on is strictly increasing.
        assert (result.tracker.latencies_s >= 0.0).all()
        sample_times = result.sample_times
        assert all(b > a for a, b in zip(sample_times, sample_times[1:]))


_CACHE_CONFIGS = st.tuples(
    st.sampled_from(scenario_names()),
    st.sampled_from(routing_policy_names()),
    st.sampled_from(_FAULT_SPECS),
    st.integers(min_value=0, max_value=2**16),
    st.sampled_from((0.25, 4.0, 64.0)),
)


def _run_cached(scenario, routing, faults, seed, cache_mb):
    pattern = build_scenario(scenario, 8.0, 24.0, 90.0, seed=seed)
    engine = ServingEngine(
        _PLAN,
        routing=routing,
        seed=seed,
        faults=faults,
        cost_model="skewed",
        cache_mb=cache_mb,
    )
    return engine.run(pattern)


class TestCachedInvariants:
    """The engine invariants must survive per-replica caches — including the
    cold restart a crash replacement goes through (every fault spec here
    crashes or drains replicas mid-run)."""

    @given(config=_CACHE_CONFIGS)
    @settings(**{**_SETTINGS, "max_examples": 10})
    def test_conservation_and_bounded_hit_rates_with_caches_on(self, config):
        result = _run_cached(*config)
        arrivals = result.tracker.num_samples
        assert (
            result.completed_queries + result.rejected_queries + result.dropped_queries
            == arrivals
        )
        assert result.cache_hit_rate, "cached run recorded no hit-rate series"
        for series in result.cache_hit_rate.values():
            assert series.min() >= 0.0 and series.max() <= 1.0

    @given(config=_CACHE_CONFIGS)
    @settings(**{**_SETTINGS, "max_examples": 10})
    def test_same_seed_means_identical_digest_with_caches_on(self, config):
        assert _run_cached(*config).digest() == _run_cached(*config).digest()


class TestSeedDeterminism:
    @given(config=_CONFIGS)
    @settings(**_SETTINGS)
    def test_same_seed_means_identical_digest(self, config):
        assert _run(*config).digest() == _run(*config).digest()

    @given(
        scenario=st.sampled_from(scenario_names()),
        routing=st.sampled_from(routing_policy_names()),
    )
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_fault_free_spec_never_perturbs_the_run(self, scenario, routing):
        # "none" and a script whose events all land past the run end must
        # both be byte-identical with a fault-unaware engine run.
        baseline = _run(scenario, routing, None, 11).digest()
        assert _run(scenario, routing, "none", 11).digest() == baseline
        assert _run(scenario, routing, "crash@99999", 11).digest() == baseline
