"""Unit tests for the replan policy grammar and the threshold-tier detector.

The detector's boundary semantics are load-bearing for determinism: a p95
sitting *exactly* at ``threshold * sla`` must never fire (breaches are
strict), idle intervals reset the patience streak, the cooldown preserves
the streak, and the fire cap is hard.
"""

from __future__ import annotations

import pytest

from repro.serving.replanner import (
    DriftDetector,
    ReplanPolicy,
    make_replan_policy,
    parse_replan_spec,
    validate_replan_spec,
)


class TestParseReplanSpec:
    def test_threshold_only_gets_defaults(self):
        policy = parse_replan_spec("sla@1.5")
        assert policy == ReplanPolicy(
            threshold=1.5, patience=3, cooldown_s=120.0, max_replans=1,
            copy_gb_per_s=1.0,
        )

    def test_every_parameter_parses(self):
        policy = parse_replan_spec("sla@2.0:patience=5,cooldown=60,max=4,bandwidth=8")
        assert policy.threshold == 2.0
        assert policy.patience == 5
        assert policy.cooldown_s == 60.0
        assert policy.max_replans == 4
        assert policy.copy_gb_per_s == 8.0

    @pytest.mark.parametrize(
        "spec,fragment",
        [
            ("", "empty spec"),
            ("sla", "missing '@<threshold>'"),
            ("slo@1.5", "unknown replan trigger"),
            ("sla@", "bad threshold"),
            ("sla@abc", "bad threshold"),
            ("sla@1.5:patience", "bad parameter"),
            ("sla@1.5:verve=3", "unknown parameter"),
            ("sla@1.5:patience=x", "bad patience"),
            ("sla@0", "threshold must be positive"),
            ("sla@1.5:patience=0", "patience must be at least 1"),
            ("sla@1.5:max=0", "max must be at least 1"),
            ("sla@1.5:bandwidth=0", "bandwidth must be positive"),
            ("sla@1.5:cooldown=-1", "cooldown must be non-negative"),
        ],
    )
    def test_malformed_specs_raise_one_line_hints(self, spec, fragment):
        with pytest.raises(ValueError) as excinfo:
            parse_replan_spec(spec)
        message = str(excinfo.value)
        assert fragment in message
        assert "\n" not in message

    def test_make_replan_policy_resolution(self):
        assert make_replan_policy(None) is None
        assert make_replan_policy("none") is None
        assert make_replan_policy("") is None
        policy = ReplanPolicy(threshold=2.0)
        assert make_replan_policy(policy) is policy
        assert make_replan_policy("sla@2.0").threshold == 2.0

    def test_validate_accepts_off_and_rejects_garbage(self):
        validate_replan_spec(None)
        validate_replan_spec("none")
        with pytest.raises(ValueError):
            validate_replan_spec("sla@nope")


class TestDriftDetector:
    def _detector(self, **kwargs) -> DriftDetector:
        defaults = dict(threshold=1.5, patience=2, cooldown_s=10.0, max_replans=2)
        defaults.update(kwargs)
        return DriftDetector(ReplanPolicy(**defaults), sla_s=0.1)

    def test_exactly_at_threshold_never_fires(self):
        detector = self._detector(patience=1)
        # threshold_s == 1.5 * 0.1 == 0.15: an exact hit is not a breach.
        for tick in range(10):
            assert detector.observe(float(tick), detector.threshold_s) is False
        assert detector.fires == 0

    def test_strictly_above_threshold_fires_after_patience(self):
        detector = self._detector()
        above = detector.threshold_s * 1.0001
        assert detector.observe(0.0, above) is False  # streak 1 < patience 2
        assert detector.observe(1.0, above) is True
        assert detector.fires == 1

    def test_idle_interval_resets_the_streak(self):
        detector = self._detector()
        above = detector.threshold_s + 0.01
        assert detector.observe(0.0, above) is False
        assert detector.observe(1.0, None) is False  # idle: streak resets
        assert detector.observe(2.0, above) is False  # streak back to 1
        assert detector.observe(3.0, above) is True

    def test_cooldown_keeps_the_streak_and_defers_the_fire(self):
        detector = self._detector(patience=1, cooldown_s=10.0)
        above = detector.threshold_s + 0.01
        assert detector.observe(0.0, above) is True
        assert detector.observe(5.0, above) is False  # inside cooldown
        assert detector.observe(10.0, above) is True  # first sample past it
        assert detector.fires == 2

    def test_max_replans_is_a_hard_cap(self):
        detector = self._detector(patience=1, cooldown_s=0.0, max_replans=2)
        above = detector.threshold_s + 0.01
        fires = [detector.observe(float(tick), above) for tick in range(10)]
        assert sum(fires) == 2
        assert detector.fires == 2

    def test_detector_rejects_nonpositive_sla(self):
        with pytest.raises(ValueError):
            DriftDetector(ReplanPolicy(), sla_s=0.0)
