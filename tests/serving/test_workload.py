"""Tests for the per-query cost models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.distributions import UniformDistribution, ZipfDistribution
from repro.model.configs import microbenchmark
from repro.serving.workload import (
    HomogeneousCostModel,
    QueryCostModel,
    SkewedCostModel,
    cost_model_names,
    make_cost_model,
    resolve_cost_model_name,
)

ROWS = 100_000
POOLING = 64


def _skewed(locality: float, **kwargs) -> SkewedCostModel:
    return SkewedCostModel(
        ZipfDistribution.from_locality(ROWS, locality), POOLING, **kwargs
    )


class TestHomogeneous:
    def test_all_multipliers_exactly_one(self):
        out = HomogeneousCostModel().sample(1000, np.random.default_rng(0))
        assert out.shape == (1000,)
        assert np.all(out == 1.0)

    def test_never_touches_the_rng(self):
        rng = np.random.default_rng(42)
        HomogeneousCostModel().sample(1000, rng)
        # The next draw equals a fresh generator's first draw.
        assert rng.random() == np.random.default_rng(42).random()

    def test_is_homogeneous_flag(self):
        assert HomogeneousCostModel().is_homogeneous
        assert not _skewed(0.9).is_homogeneous

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            HomogeneousCostModel().sample(-1, np.random.default_rng(0))


class TestSkewed:
    def test_deterministic_for_same_seed(self):
        model = _skewed(0.9)
        first = model.sample(5000, np.random.default_rng(7))
        second = model.sample(5000, np.random.default_rng(7))
        assert first.tobytes() == second.tobytes()

    def test_multipliers_positive_with_mean_near_one(self):
        out = _skewed(0.9).sample(20_000, np.random.default_rng(0))
        assert np.all(out > 0)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_higher_locality_widens_the_spread(self):
        rng = np.random.default_rng(0)
        low = _skewed(0.10).sample(20_000, np.random.default_rng(0))
        high = _skewed(0.90).sample(20_000, rng)
        assert np.std(high) > 2.0 * np.std(low)

    def test_uniform_distribution_is_nearly_homogeneous(self):
        model = SkewedCostModel(
            UniformDistribution(ROWS), POOLING, pooling_spread=0.0
        )
        out = model.sample(10_000, np.random.default_rng(0))
        # No skew and no pooling spread: only coalescing noise remains.
        assert np.std(out) < 0.05

    def test_pooling_spread_defaults_to_locality(self):
        assert _skewed(0.9).pooling_spread == pytest.approx(0.9, abs=0.01)
        assert _skewed(0.9, pooling_spread=0.3).pooling_spread == 0.3

    def test_profile_gathers_bounded_by_pooling(self):
        gathers = _skewed(0.5).profile_gathers(np.random.default_rng(0))
        assert gathers.shape == (2048,)
        assert np.all(gathers > 0)
        assert np.all(gathers <= POOLING)

    def test_invalid_parameters_rejected(self):
        dist = UniformDistribution(ROWS)
        with pytest.raises(ValueError):
            SkewedCostModel(dist, pooling=0)
        with pytest.raises(ValueError):
            SkewedCostModel(dist, POOLING, num_profiles=0)
        with pytest.raises(ValueError):
            SkewedCostModel(dist, POOLING, hot_fraction=0.0)
        with pytest.raises(ValueError):
            SkewedCostModel(dist, POOLING, hot_cost_fraction=1.5)
        with pytest.raises(ValueError):
            SkewedCostModel(dist, POOLING, pooling_spread=-0.1)


class TestRegistry:
    def test_names(self):
        assert cost_model_names() == ["homogeneous", "skewed"]

    def test_resolve_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="homogeneous"):
            resolve_cost_model_name("zipfian")

    def test_make_homogeneous_without_workload(self):
        model = make_cost_model("homogeneous")
        assert isinstance(model, HomogeneousCostModel)

    def test_make_skewed_derives_from_workload(self):
        model = make_cost_model("skewed", microbenchmark(num_tables=2))
        assert isinstance(model, SkewedCostModel)
        assert model.pooling == microbenchmark(num_tables=2).embedding.pooling

    def test_make_skewed_requires_workload(self):
        with pytest.raises(ValueError, match="workload"):
            make_cost_model("skewed")

    def test_instance_passthrough(self):
        model = _skewed(0.5)
        assert make_cost_model(model) is model

    def test_base_class_sample_not_implemented(self):
        with pytest.raises(NotImplementedError):
            QueryCostModel().sample(1, np.random.default_rng(0))
