"""Tests for the per-query cost models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.distributions import UniformDistribution, ZipfDistribution
from repro.model.configs import microbenchmark
from repro.serving.workload import (
    HomogeneousCostModel,
    QueryCostModel,
    SkewedCostModel,
    cost_model_names,
    make_cost_model,
    resolve_cost_model_name,
)

ROWS = 100_000
POOLING = 64


def _skewed(locality: float, **kwargs) -> SkewedCostModel:
    return SkewedCostModel(
        ZipfDistribution.from_locality(ROWS, locality), POOLING, **kwargs
    )


class TestHomogeneous:
    def test_all_multipliers_exactly_one(self):
        out = HomogeneousCostModel().sample(1000, np.random.default_rng(0))
        assert out.shape == (1000,)
        assert np.all(out == 1.0)

    def test_never_touches_the_rng(self):
        rng = np.random.default_rng(42)
        HomogeneousCostModel().sample(1000, rng)
        # The next draw equals a fresh generator's first draw.
        assert rng.random() == np.random.default_rng(42).random()

    def test_is_homogeneous_flag(self):
        assert HomogeneousCostModel().is_homogeneous
        assert not _skewed(0.9).is_homogeneous

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            HomogeneousCostModel().sample(-1, np.random.default_rng(0))


class TestSkewed:
    def test_deterministic_for_same_seed(self):
        model = _skewed(0.9)
        first = model.sample(5000, np.random.default_rng(7))
        second = model.sample(5000, np.random.default_rng(7))
        assert first.tobytes() == second.tobytes()

    def test_multipliers_positive_with_mean_near_one(self):
        out = _skewed(0.9).sample(20_000, np.random.default_rng(0))
        assert np.all(out > 0)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_higher_locality_widens_the_spread(self):
        rng = np.random.default_rng(0)
        low = _skewed(0.10).sample(20_000, np.random.default_rng(0))
        high = _skewed(0.90).sample(20_000, rng)
        assert np.std(high) > 2.0 * np.std(low)

    def test_uniform_distribution_is_nearly_homogeneous(self):
        model = SkewedCostModel(
            UniformDistribution(ROWS), POOLING, pooling_spread=0.0
        )
        out = model.sample(10_000, np.random.default_rng(0))
        # No skew and no pooling spread: only coalescing noise remains.
        assert np.std(out) < 0.05

    def test_pooling_spread_defaults_to_locality(self):
        assert _skewed(0.9).pooling_spread == pytest.approx(0.9, abs=0.01)
        assert _skewed(0.9, pooling_spread=0.3).pooling_spread == 0.3

    def test_profile_gathers_bounded_by_pooling(self):
        gathers = _skewed(0.5).profile_gathers(np.random.default_rng(0))
        assert gathers.shape == (2048,)
        assert np.all(gathers > 0)
        assert np.all(gathers <= POOLING)

    def test_empty_sample_never_touches_the_rng(self):
        # Regression: sampling zero queries must not perturb the stream, so
        # a zero-arrival run stays bit-exact with one that skips sampling.
        model = _skewed(0.9)
        rng = np.random.default_rng(42)
        out = model.sample(0, rng)
        assert out.shape == (0,)
        fresh = np.random.default_rng(42)
        assert model.sample(5000, rng).tobytes() == model.sample(5000, fresh).tobytes()

    def test_empty_sample_with_gathers_never_touches_the_rng(self):
        model = _skewed(0.9)
        rng = np.random.default_rng(42)
        multipliers, hot, cold = model.sample_with_gathers(0, rng)
        assert multipliers.shape == hot.shape == cold.shape == (0,)
        assert rng.random() == np.random.default_rng(42).random()

    def test_sample_with_gathers_matches_sample_stream(self):
        # The split-aware variant must consume the RNG identically, so a
        # cached run prices the same multipliers as an uncached one.
        model = _skewed(0.9)
        plain = model.sample(5000, np.random.default_rng(7))
        multipliers, hot, cold = model.sample_with_gathers(
            5000, np.random.default_rng(7)
        )
        assert plain.tobytes() == multipliers.tobytes()
        assert np.all(hot >= 0) and np.all(cold >= 0)
        assert np.all(hot + cold > 0)

    def test_gather_splits_sum_to_profile_gathers(self):
        model = _skewed(0.5)
        hot, cold = model.profile_splits(np.random.default_rng(0))
        gathers = model.profile_gathers(np.random.default_rng(0))
        np.testing.assert_allclose(
            cold + model.hot_cost_fraction * hot, gathers, rtol=1e-12
        )

    def test_supports_gather_splits_flags(self):
        assert _skewed(0.5).supports_gather_splits
        assert not HomogeneousCostModel().supports_gather_splits
        with pytest.raises(NotImplementedError, match="homogeneous"):
            HomogeneousCostModel().sample_with_gathers(8, np.random.default_rng(0))

    def test_invalid_parameters_rejected(self):
        dist = UniformDistribution(ROWS)
        with pytest.raises(ValueError):
            SkewedCostModel(dist, pooling=0)
        with pytest.raises(ValueError):
            SkewedCostModel(dist, POOLING, num_profiles=0)
        with pytest.raises(ValueError):
            SkewedCostModel(dist, POOLING, hot_fraction=0.0)
        with pytest.raises(ValueError):
            SkewedCostModel(dist, POOLING, hot_cost_fraction=1.5)
        with pytest.raises(ValueError):
            SkewedCostModel(dist, POOLING, pooling_spread=-0.1)


class TestRegistry:
    def test_names(self):
        assert cost_model_names() == ["homogeneous", "skewed"]

    def test_resolve_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="homogeneous"):
            resolve_cost_model_name("zipfian")

    def test_make_homogeneous_without_workload(self):
        model = make_cost_model("homogeneous")
        assert isinstance(model, HomogeneousCostModel)

    def test_make_skewed_derives_from_workload(self):
        model = make_cost_model("skewed", microbenchmark(num_tables=2))
        assert isinstance(model, SkewedCostModel)
        assert model.pooling == microbenchmark(num_tables=2).embedding.pooling

    def test_make_skewed_requires_workload(self):
        with pytest.raises(ValueError, match="workload"):
            make_cost_model("skewed")

    def test_instance_passthrough(self):
        model = _skewed(0.5)
        assert make_cost_model(model) is model

    def test_make_skewed_forwards_tuning_knobs(self):
        workload = microbenchmark(num_tables=2)
        model = make_cost_model(
            "skewed",
            workload,
            num_profiles=64,
            hot_fraction=0.02,
            hot_cost_fraction=0.5,
            pooling_spread=0.1,
        )
        assert model.num_profiles == 64
        assert model.hot_fraction == 0.02
        assert model.hot_cost_fraction == 0.5
        assert model.pooling_spread == 0.1

    def test_homogeneous_rejects_skew_knobs(self):
        with pytest.raises(ValueError, match="--cost-model skewed"):
            make_cost_model("homogeneous", hot_fraction=0.02)

    def test_instance_rejects_overrides(self):
        with pytest.raises(ValueError, match="constructor"):
            make_cost_model(_skewed(0.5), num_profiles=64)

    def test_base_class_sample_not_implemented(self):
        with pytest.raises(NotImplementedError):
            QueryCostModel().sample(1, np.random.default_rng(0))
